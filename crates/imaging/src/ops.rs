//! Native-Rust image operations — the baselines the SciQL versions are
//! checked against (and benchmarked against).

use crate::image::GreyImage;

/// Intensity inversion: `255 - v`.
pub fn invert(img: &GreyImage) -> GreyImage {
    GreyImage {
        width: img.width,
        height: img.height,
        pixels: img.pixels.iter().map(|&p| 255 - p).collect(),
    }
}

/// Edge detection as the demo defines it: "the differences in colour
/// intensities of each pixel and its upper and left neighbouring pixels".
/// Border pixels (no upper/left neighbour) are 0.
pub fn edges(img: &GreyImage) -> GreyImage {
    GreyImage::from_fn(img.width, img.height, |x, y| {
        let v = img.get(x, y);
        match (
            img.get_checked(x as i64 - 1, y as i64),
            img.get_checked(x as i64, y as i64 - 1),
        ) {
            (Some(left), Some(up)) => (v - left).abs() + (v - up).abs(),
            _ => 0,
        }
    })
}

/// 3×3 mean smoothing; at the borders only in-range neighbours
/// participate (matching SciQL tiling, where out-of-range cells are
/// ignored by AVG). Result is rounded to the nearest integer.
pub fn smooth(img: &GreyImage) -> GreyImage {
    GreyImage::from_fn(img.width, img.height, |x, y| {
        let mut sum = 0i64;
        let mut cnt = 0i64;
        for dx in -1i64..=1 {
            for dy in -1i64..=1 {
                if let Some(v) = img.get_checked(x as i64 + dx, y as i64 + dy) {
                    sum += i64::from(v);
                    cnt += 1;
                }
            }
        }
        (sum as f64 / cnt as f64).round() as i32
    })
}

/// Resolution reduction by 2: each output pixel is the rounded average of
/// its 2×2 source block (partial blocks at odd borders use what exists).
pub fn reduce(img: &GreyImage) -> GreyImage {
    let w = img.width.div_ceil(2);
    let h = img.height.div_ceil(2);
    GreyImage::from_fn(w, h, |x, y| {
        let mut sum = 0i64;
        let mut cnt = 0i64;
        for dx in 0..2 {
            for dy in 0..2 {
                if let Some(v) = img.get_checked((2 * x + dx) as i64, (2 * y + dy) as i64) {
                    sum += i64::from(v);
                    cnt += 1;
                }
            }
        }
        (sum as f64 / cnt as f64).round() as i32
    })
}

/// Rotate 90° clockwise: `out(x, y) = in(y, H_in − 1 − x)` with
/// `out` sized `height × width`.
pub fn rotate90(img: &GreyImage) -> GreyImage {
    GreyImage::from_fn(img.height, img.width, |x, y| img.get(y, img.height - 1 - x))
}

/// Zoom-in = slab selection `[x0, x1) × [y0, y1)` (the demo's "selecting
/// only the necessary part of the data").
pub fn zoom(img: &GreyImage, x0: usize, x1: usize, y0: usize, y1: usize) -> GreyImage {
    GreyImage::from_fn(x1 - x0, y1 - y0, |x, y| img.get(x0 + x, y0 + y))
}

/// Brighten by `delta`, clamped to 255.
pub fn brighten(img: &GreyImage, delta: i32) -> GreyImage {
    GreyImage {
        width: img.width,
        height: img.height,
        pixels: img.pixels.iter().map(|&p| (p + delta).min(255)).collect(),
    }
}

/// Water filter: intensities below `level` become 0.
pub fn filter_water(img: &GreyImage, level: i32) -> GreyImage {
    GreyImage {
        width: img.width,
        height: img.height,
        pixels: img
            .pixels
            .iter()
            .map(|&p| if p < level { 0 } else { p })
            .collect(),
    }
}

/// Morphological erosion: 3×3 neighbourhood minimum (in-range cells
/// only). Shrinks bright regions; a classic extension the demo audience
/// could request.
pub fn erode(img: &GreyImage) -> GreyImage {
    neighbourhood_extreme(img, true)
}

/// Morphological dilation: 3×3 neighbourhood maximum.
pub fn dilate(img: &GreyImage) -> GreyImage {
    neighbourhood_extreme(img, false)
}

fn neighbourhood_extreme(img: &GreyImage, min: bool) -> GreyImage {
    GreyImage::from_fn(img.width, img.height, |x, y| {
        let mut best: Option<i32> = None;
        for dx in -1i64..=1 {
            for dy in -1i64..=1 {
                if let Some(v) = img.get_checked(x as i64 + dx, y as i64 + dy) {
                    best = Some(match best {
                        None => v,
                        Some(b) => {
                            if min {
                                b.min(v)
                            } else {
                                b.max(v)
                            }
                        }
                    });
                }
            }
        }
        best.unwrap_or(0)
    })
}

/// Intensity histogram with the given bin width; returns
/// `(bin_index, count)` sorted by bin.
pub fn histogram(img: &GreyImage, bin_width: i32) -> Vec<(i32, usize)> {
    let mut counts = std::collections::BTreeMap::new();
    for &p in &img.pixels {
        *counts.entry(p / bin_width).or_insert(0usize) += 1;
    }
    counts.into_iter().collect()
}

/// Areas of interest via a 0/1 mask image: pixels where the mask is 1, as
/// `(x, y, v)` triples in cell order.
pub fn mask_select(img: &GreyImage, mask: &GreyImage) -> Vec<(usize, usize, i32)> {
    assert_eq!((img.width, img.height), (mask.width, mask.height));
    img.iter_pixels()
        .filter(|&(x, y, _)| mask.get(x, y) == 1)
        .collect()
}

/// Areas of interest via rectangular bounding boxes `[x0,x1)×[y0,y1)`.
pub fn bbox_select(
    img: &GreyImage,
    boxes: &[(usize, usize, usize, usize)],
) -> Vec<(usize, usize, i32)> {
    img.iter_pixels()
        .filter(|&(x, y, _)| {
            boxes
                .iter()
                .any(|&(x0, x1, y0, y1)| x >= x0 && x < x1 && y >= y0 && y < y1)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> GreyImage {
        GreyImage::from_fn(4, 4, |x, y| (x * 16 + y * 4) as i32)
    }

    #[test]
    fn invert_is_involution() {
        let img = ramp();
        assert_eq!(invert(&invert(&img)), img);
        assert_eq!(invert(&img).get(0, 0), 255);
    }

    #[test]
    fn edges_flat_image_is_zero() {
        let flat = GreyImage::from_fn(5, 5, |_, _| 100);
        assert!(edges(&flat).pixels.iter().all(|&p| p == 0));
    }

    #[test]
    fn edges_detect_a_step() {
        let step = GreyImage::from_fn(4, 4, |x, _| if x < 2 { 0 } else { 100 });
        let e = edges(&step);
        assert_eq!(e.get(2, 1), 100, "vertical boundary at x=2");
        assert_eq!(e.get(1, 1), 0, "flat region");
        assert_eq!(e.get(0, 0), 0, "border defined as 0");
    }

    #[test]
    fn smooth_preserves_flat_and_rounds() {
        let flat = GreyImage::from_fn(5, 5, |_, _| 77);
        assert_eq!(smooth(&flat), flat);
        // single bright pixel spreads
        let mut img = GreyImage::new(3, 3);
        img.set(1, 1, 90);
        let s = smooth(&img);
        assert_eq!(s.get(0, 0), 23, "90/4 = 22.5 → 23 (corner has 4 cells)");
        assert_eq!(s.get(1, 1), 10, "90/9 = 10");
    }

    #[test]
    fn reduce_halves_dimensions() {
        let img = ramp();
        let r = reduce(&img);
        assert_eq!((r.width, r.height), (2, 2));
        // block (0,0): pixels (0,0)=0,(0,1)=4,(1,0)=16,(1,1)=20 → 10
        assert_eq!(r.get(0, 0), 10);
        let odd = GreyImage::from_fn(3, 3, |_, _| 8);
        let r = reduce(&odd);
        assert_eq!((r.width, r.height), (2, 2));
        assert_eq!(r.get(1, 1), 8, "partial block still averages to 8");
    }

    #[test]
    fn rotate_four_times_is_identity() {
        let img = ramp();
        let r = rotate90(&rotate90(&rotate90(&rotate90(&img))));
        assert_eq!(r, img);
        let rect = GreyImage::from_fn(4, 2, |x, y| (x + 10 * y) as i32);
        let rot = rotate90(&rect);
        assert_eq!((rot.width, rot.height), (2, 4));
        // out(0,0) = in(0, H-1-0) = in(0,1) = 10
        assert_eq!(rot.get(0, 0), 10);
    }

    #[test]
    fn zoom_crops() {
        let img = ramp();
        let z = zoom(&img, 1, 3, 2, 4);
        assert_eq!((z.width, z.height), (2, 2));
        assert_eq!(z.get(0, 0), img.get(1, 2));
    }

    #[test]
    fn brighten_clamps() {
        let img = GreyImage::from_fn(2, 1, |x, _| if x == 0 { 250 } else { 10 });
        let b = brighten(&img, 40);
        assert_eq!(b.pixels, vec![255, 50]);
    }

    #[test]
    fn water_filter_zeroes_low() {
        let img = GreyImage::from_fn(2, 1, |x, _| if x == 0 { 30 } else { 200 });
        let f = filter_water(&img, 70);
        assert_eq!(f.pixels, vec![0, 200]);
    }

    #[test]
    fn histogram_totals_match() {
        let img = ramp();
        let h = histogram(&img, 16);
        let total: usize = h.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 16);
        assert_eq!(h[0], (0, 4), "intensities 0,4,8,12 in bin 0");
    }

    #[test]
    fn mask_and_bbox_select() {
        let img = ramp();
        let mut mask = GreyImage::new(4, 4);
        mask.set(1, 1, 1);
        mask.set(2, 3, 1);
        let sel = mask_select(&img, &mask);
        assert_eq!(sel.len(), 2);
        assert!(sel.contains(&(1, 1, img.get(1, 1))));

        let sel = bbox_select(&img, &[(0, 2, 0, 2), (3, 4, 3, 4)]);
        assert_eq!(sel.len(), 5);
        assert!(sel.contains(&(3, 3, img.get(3, 3))));
    }
}
