//! `sys.*` system views: the engine's introspection surface, exposed
//! as ordinary relational tables.
//!
//! Following the paper's design — SciQL/MonetDB keeps catalog and
//! runtime state queryable through the query language itself — every
//! view here is a [`TableDef`] whose name lives in the reserved `sys.`
//! schema. The *definitions* are static (this module); the *contents*
//! are synthesized as BATs at scan time by the execution layer, so the
//! views compose with WHERE / ORDER BY / aggregates and flow over
//! every transport unchanged.
//!
//! [`Catalog::get`](crate::Catalog::get) falls back to these
//! definitions for any `sys.`-prefixed lookup, and
//! [`Catalog::create`](crate::Catalog::create) rejects user objects in
//! the reserved schema.

use gdk::ScalarType;
use std::sync::OnceLock;

use crate::schema::{ColumnMeta, SchemaObject, TableDef};

/// Is this name inside the reserved `sys.` schema?
pub fn is_sys_name(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    lower.starts_with("sys.") || lower == "sys"
}

fn col(name: &str, ty: ScalarType) -> ColumnMeta {
    ColumnMeta {
        name: name.to_owned(),
        ty,
        default: None,
    }
}

fn table(name: &str, cols: Vec<ColumnMeta>) -> SchemaObject {
    SchemaObject::Table(TableDef {
        name: name.to_owned(),
        columns: cols,
    })
}

/// Every system view definition, in name order.
///
/// | view | one row per |
/// |------|-------------|
/// | `sys.metrics` | registry counter/gauge (name, kind, value, help) |
/// | `sys.histograms` | latency histogram bucket (cumulative) |
/// | `sys.sessions` | live session (id, peer, queries, bytes, uptime) |
/// | `sys.query_log` | recently executed statement |
/// | `sys.tables` | catalog object |
/// | `sys.columns` | column/dimension of a catalog object |
/// | `sys.tiles` | storage tile with its zone-map entry |
/// | `sys.wal` | the vault (position, appends, fsyncs, generation) |
/// | `sys.replication` | live replication link (role, peer, positions, lag) |
pub fn definitions() -> &'static [SchemaObject] {
    static DEFS: OnceLock<Vec<SchemaObject>> = OnceLock::new();
    DEFS.get_or_init(|| {
        vec![
            table(
                "sys.metrics",
                vec![
                    col("name", ScalarType::Str),
                    col("kind", ScalarType::Str),
                    col("value", ScalarType::Lng),
                    col("help", ScalarType::Str),
                ],
            ),
            table(
                "sys.histograms",
                vec![
                    col("name", ScalarType::Str),
                    col("bucket_le_ns", ScalarType::Lng),
                    col("count", ScalarType::Lng),
                ],
            ),
            table(
                "sys.sessions",
                vec![
                    col("id", ScalarType::Lng),
                    col("peer", ScalarType::Str),
                    col("queries", ScalarType::Lng),
                    col("bytes_in", ScalarType::Lng),
                    col("bytes_out", ScalarType::Lng),
                    col("uptime_ns", ScalarType::Lng),
                ],
            ),
            table(
                "sys.query_log",
                vec![
                    col("id", ScalarType::Lng),
                    col("session", ScalarType::Lng),
                    col("kind", ScalarType::Str),
                    col("text", ScalarType::Str),
                    col("started_us", ScalarType::Lng),
                    col("wall_ns", ScalarType::Lng),
                    col("rows", ScalarType::Lng),
                    col("plan_cache_hit", ScalarType::Bit),
                    col("tiles_skipped", ScalarType::Lng),
                    col("slow", ScalarType::Bit),
                    col("error", ScalarType::Str),
                ],
            ),
            table(
                "sys.tables",
                vec![
                    col("name", ScalarType::Str),
                    col("kind", ScalarType::Str),
                    col("columns", ScalarType::Lng),
                ],
            ),
            table(
                "sys.columns",
                vec![
                    col("table_name", ScalarType::Str),
                    col("column_name", ScalarType::Str),
                    col("type", ScalarType::Str),
                    col("dimensional", ScalarType::Bit),
                    col("position", ScalarType::Lng),
                ],
            ),
            table(
                "sys.tiles",
                vec![
                    col("object", ScalarType::Str),
                    col("column", ScalarType::Str),
                    col("tile", ScalarType::Lng),
                    col("rows", ScalarType::Lng),
                    col("nils", ScalarType::Lng),
                    col("min", ScalarType::Dbl),
                    col("max", ScalarType::Dbl),
                ],
            ),
            table(
                "sys.wal",
                vec![
                    col("position", ScalarType::Lng),
                    col("appends", ScalarType::Lng),
                    col("fsyncs", ScalarType::Lng),
                    col("generation", ScalarType::Lng),
                ],
            ),
            table(
                "sys.replication",
                vec![
                    col("role", ScalarType::Str),
                    col("peer", ScalarType::Str),
                    col("generation", ScalarType::Lng),
                    col("shipped", ScalarType::Lng),
                    col("applied", ScalarType::Lng),
                    col("durable", ScalarType::Lng),
                    col("lag_bytes", ScalarType::Lng),
                ],
            ),
        ]
    })
}

/// Look up a system view definition by (case-insensitive) name.
pub fn get(name: &str) -> Option<&'static SchemaObject> {
    definitions()
        .iter()
        .find(|d| d.name().eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sys_names_resolve() {
        assert!(get("sys.metrics").is_some());
        assert!(get("SYS.Metrics").is_some());
        assert!(get("sys.nope").is_none());
        assert!(is_sys_name("sys.metrics"));
        assert!(is_sys_name("SYS.ANYTHING"));
        assert!(!is_sys_name("system_table"));
    }

    #[test]
    fn views_are_tables_with_columns() {
        for d in definitions() {
            let SchemaObject::Table(t) = d else {
                panic!("system views must be tables");
            };
            assert!(t.name.starts_with("sys."));
            assert!(!t.columns.is_empty());
        }
    }
}
