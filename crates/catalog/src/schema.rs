//! Schema objects: tables, arrays, dimensions, attributes.

use gdk::{ScalarType, Value};
use std::collections::BTreeMap;
use std::fmt;

/// Errors raised by catalog operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// Object already exists.
    AlreadyExists(String),
    /// Object not found.
    NotFound(String),
    /// Structurally invalid definition.
    Invalid(String),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::AlreadyExists(n) => write!(f, "object {n:?} already exists"),
            CatalogError::NotFound(n) => write!(f, "object {n:?} does not exist"),
            CatalogError::Invalid(m) => write!(f, "invalid definition: {m}"),
        }
    }
}

impl std::error::Error for CatalogError {}

/// A concrete (fixed) dimension range `[start : step : stop)`.
///
/// "The interval `[start, stop)` is right-open. A dimension is fixed if all
/// three expressions of its dimension range are specified by literal
/// values; otherwise, it is unbounded" (§2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DimSpec {
    /// First dimension value.
    pub start: i64,
    /// Step between consecutive values (non-zero).
    pub step: i64,
    /// Exclusive stop.
    pub stop: i64,
}

impl DimSpec {
    /// Create a spec, validating the step.
    pub fn new(start: i64, step: i64, stop: i64) -> Result<Self, CatalogError> {
        if step == 0 {
            return Err(CatalogError::Invalid(
                "dimension step must be non-zero".into(),
            ));
        }
        Ok(DimSpec { start, step, stop })
    }

    /// Number of valid dimension values.
    pub fn len(&self) -> usize {
        gdk::bat::series_len(self.start, self.step, self.stop)
    }

    /// True when the range is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th dimension value.
    pub fn value_at(&self, i: usize) -> i64 {
        self.start + self.step * i as i64
    }

    /// The position of dimension value `v`, if `v` is on the grid.
    pub fn index_of(&self, v: i64) -> Option<usize> {
        let d = v.checked_sub(self.start)?;
        if d % self.step != 0 {
            return None;
        }
        let i = d / self.step;
        if i < 0 || i as usize >= self.len() {
            None
        } else {
            Some(i as usize)
        }
    }

    /// Iterate all dimension values in order.
    pub fn values(&self) -> impl Iterator<Item = i64> + '_ {
        (0..self.len()).map(move |i| self.value_at(i))
    }
}

/// One array dimension: a named direction with an optional fixed range.
#[derive(Debug, Clone, PartialEq)]
pub struct DimensionDef {
    /// Dimension name (e.g. `x`, `y`, `time`).
    pub name: String,
    /// Value type (integral).
    pub ty: ScalarType,
    /// Fixed range, or `None` for an unbounded dimension.
    pub range: Option<DimSpec>,
}

/// A non-dimensional column (table column or array cell attribute).
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnMeta {
    /// Column name.
    pub name: String,
    /// Value type.
    pub ty: ScalarType,
    /// DEFAULT value; for arrays, "omitting the default implies a NULL"
    /// (§2).
    pub default: Option<Value>,
}

/// A relational table definition.
#[derive(Debug, Clone, PartialEq)]
pub struct TableDef {
    /// Table name.
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<ColumnMeta>,
}

impl TableDef {
    /// Position of a column by (case-insensitive) name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }
}

/// An array definition: dimensions plus cell attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayDef {
    /// Array name.
    pub name: String,
    /// Dimensions in declaration order. The first dimension varies slowest
    /// in the cell order (Fig 3 row-major layout).
    pub dims: Vec<DimensionDef>,
    /// Cell attributes in declaration order.
    pub attrs: Vec<ColumnMeta>,
}

impl ArrayDef {
    /// Is every dimension fixed?
    pub fn is_fixed(&self) -> bool {
        self.dims.iter().all(|d| d.range.is_some())
    }

    /// Total number of cells (fixed arrays only).
    pub fn cell_count(&self) -> Option<usize> {
        self.dims
            .iter()
            .map(|d| d.range.map(|r| r.len()))
            .try_fold(1usize, |acc, l| l.and_then(|l| acc.checked_mul(l)))
    }

    /// Dimension index by name.
    pub fn dim_index(&self, name: &str) -> Option<usize> {
        self.dims
            .iter()
            .position(|d| d.name.eq_ignore_ascii_case(name))
    }

    /// Attribute index by name.
    pub fn attr_index(&self, name: &str) -> Option<usize> {
        self.attrs
            .iter()
            .position(|a| a.name.eq_ignore_ascii_case(name))
    }

    /// Linear cell position of the given dimension values (row-major,
    /// first dimension slowest), if all are on-grid.
    pub fn position_of(&self, coords: &[i64]) -> Option<usize> {
        if coords.len() != self.dims.len() {
            return None;
        }
        let mut pos = 0usize;
        for (d, &c) in self.dims.iter().zip(coords) {
            let r = d.range?;
            let i = r.index_of(c)?;
            pos = pos * r.len() + i;
        }
        Some(pos)
    }

    /// Dimension values at a linear cell position.
    pub fn coords_of(&self, mut pos: usize) -> Option<Vec<i64>> {
        let mut out = vec![0i64; self.dims.len()];
        for (k, d) in self.dims.iter().enumerate().rev() {
            let r = d.range?;
            let n = r.len();
            if n == 0 {
                return None;
            }
            out[k] = r.value_at(pos % n);
            pos /= n;
        }
        if pos == 0 {
            Some(out)
        } else {
            None
        }
    }

    /// The `(N, M)` repetition factors of dimension `k` for
    /// `array.series` (paper §3): `N` = product of the sizes of the faster
    /// dimensions, `M` = product of the sizes of the slower dimensions.
    pub fn series_factors(&self, k: usize) -> Option<(usize, usize)> {
        let sizes: Option<Vec<usize>> =
            self.dims.iter().map(|d| d.range.map(|r| r.len())).collect();
        let sizes = sizes?;
        if k >= sizes.len() {
            return None;
        }
        let n = sizes[k + 1..].iter().product();
        let m = sizes[..k].iter().product();
        Some((n, m))
    }
}

/// A named schema object.
#[derive(Debug, Clone, PartialEq)]
pub enum SchemaObject {
    /// A relational table.
    Table(TableDef),
    /// A SciQL array.
    Array(ArrayDef),
}

impl SchemaObject {
    /// Object name.
    pub fn name(&self) -> &str {
        match self {
            SchemaObject::Table(t) => &t.name,
            SchemaObject::Array(a) => &a.name,
        }
    }
}

/// The catalog: named schema objects. Name matching is case-insensitive
/// (SQL identifiers fold).
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    objects: BTreeMap<String, SchemaObject>,
    version: u64,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    fn key(name: &str) -> String {
        name.to_ascii_lowercase()
    }

    /// Register an object. Names in the reserved `sys.` schema are
    /// rejected — they belong to the built-in system views.
    pub fn create(&mut self, obj: SchemaObject) -> Result<(), CatalogError> {
        if crate::sysview::is_sys_name(obj.name()) {
            return Err(CatalogError::Invalid(format!(
                "{:?} is in the reserved sys schema",
                obj.name()
            )));
        }
        let key = Self::key(obj.name());
        if self.objects.contains_key(&key) {
            return Err(CatalogError::AlreadyExists(obj.name().to_owned()));
        }
        self.objects.insert(key, obj);
        self.version += 1;
        Ok(())
    }

    /// Drop an object.
    pub fn drop_object(&mut self, name: &str) -> Result<SchemaObject, CatalogError> {
        let obj = self
            .objects
            .remove(&Self::key(name))
            .ok_or_else(|| CatalogError::NotFound(name.to_owned()))?;
        self.version += 1;
        Ok(obj)
    }

    /// A counter bumped by every successful schema change (create, drop,
    /// dimension alteration) — lets callers detect "did anything change?"
    /// without diffing object lists.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Look up an object. Names in the reserved `sys.` schema fall
    /// back to the built-in system view definitions
    /// ([`crate::sysview`]), so `SELECT … FROM sys.metrics` binds like
    /// any table scan.
    pub fn get(&self, name: &str) -> Result<&SchemaObject, CatalogError> {
        if let Some(obj) = self.objects.get(&Self::key(name)) {
            return Ok(obj);
        }
        if let Some(view) = crate::sysview::get(name) {
            return Ok(view);
        }
        Err(CatalogError::NotFound(name.to_owned()))
    }

    /// Look up an array specifically.
    pub fn get_array(&self, name: &str) -> Result<&ArrayDef, CatalogError> {
        match self.get(name)? {
            SchemaObject::Array(a) => Ok(a),
            SchemaObject::Table(_) => Err(CatalogError::Invalid(format!(
                "{name:?} is a table, not an array"
            ))),
        }
    }

    /// Look up a table specifically.
    pub fn get_table(&self, name: &str) -> Result<&TableDef, CatalogError> {
        match self.get(name)? {
            SchemaObject::Table(t) => Ok(t),
            SchemaObject::Array(_) => Err(CatalogError::Invalid(format!(
                "{name:?} is an array, not a table"
            ))),
        }
    }

    /// Replace the range of one dimension (ALTER ARRAY … SET RANGE).
    pub fn alter_dimension(
        &mut self,
        array: &str,
        dim: &str,
        range: DimSpec,
    ) -> Result<(), CatalogError> {
        let obj = self
            .objects
            .get_mut(&Self::key(array))
            .ok_or_else(|| CatalogError::NotFound(array.to_owned()))?;
        let SchemaObject::Array(a) = obj else {
            return Err(CatalogError::Invalid(format!("{array:?} is not an array")));
        };
        let k = a
            .dim_index(dim)
            .ok_or_else(|| CatalogError::NotFound(format!("{array}.{dim}")))?;
        a.dims[k].range = Some(range);
        self.version += 1;
        Ok(())
    }

    /// Iterate objects in name order.
    pub fn iter(&self) -> impl Iterator<Item = &SchemaObject> {
        self.objects.values()
    }

    /// True when the object exists.
    pub fn contains(&self, name: &str) -> bool {
        self.objects.contains_key(&Self::key(name))
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True when the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> ArrayDef {
        ArrayDef {
            name: "matrix".into(),
            dims: vec![
                DimensionDef {
                    name: "x".into(),
                    ty: ScalarType::Int,
                    range: Some(DimSpec::new(0, 1, 4).unwrap()),
                },
                DimensionDef {
                    name: "y".into(),
                    ty: ScalarType::Int,
                    range: Some(DimSpec::new(0, 1, 4).unwrap()),
                },
            ],
            attrs: vec![ColumnMeta {
                name: "v".into(),
                ty: ScalarType::Int,
                default: Some(Value::Int(0)),
            }],
        }
    }

    #[test]
    fn dimspec_basics() {
        let d = DimSpec::new(0, 1, 4).unwrap();
        assert_eq!(d.len(), 4);
        assert_eq!(d.index_of(2), Some(2));
        assert_eq!(d.index_of(4), None, "stop is exclusive");
        assert_eq!(d.index_of(-1), None);
        assert!(DimSpec::new(0, 0, 4).is_err());

        let s = DimSpec::new(0, 2, 7).unwrap();
        assert_eq!(s.len(), 4);
        assert_eq!(s.values().collect::<Vec<_>>(), vec![0, 2, 4, 6]);
        assert_eq!(s.index_of(3), None, "off-grid value");
        assert_eq!(s.index_of(6), Some(3));

        let neg = DimSpec::new(-1, 1, 5).unwrap();
        assert_eq!(neg.len(), 6);
        assert_eq!(neg.index_of(-1), Some(0));
    }

    #[test]
    fn row_major_positions_match_fig3() {
        let a = matrix();
        assert_eq!(a.cell_count(), Some(16));
        // Fig 3: position = x*4 + y.
        assert_eq!(a.position_of(&[0, 0]), Some(0));
        assert_eq!(a.position_of(&[0, 3]), Some(3));
        assert_eq!(a.position_of(&[1, 0]), Some(4));
        assert_eq!(a.position_of(&[3, 3]), Some(15));
        assert_eq!(a.position_of(&[4, 0]), None);
        assert_eq!(a.coords_of(7), Some(vec![1, 3]));
        assert_eq!(a.coords_of(16), None);
    }

    #[test]
    fn series_factors_match_fig3() {
        let a = matrix();
        // x: series(0,1,4,4,1) — N=4, M=1; y: series(0,1,4,1,4) — N=1, M=4.
        assert_eq!(a.series_factors(0), Some((4, 1)));
        assert_eq!(a.series_factors(1), Some((1, 4)));
        assert_eq!(a.series_factors(2), None);
    }

    #[test]
    fn catalog_crud() {
        let mut c = Catalog::new();
        c.create(SchemaObject::Array(matrix())).unwrap();
        assert!(c.contains("MATRIX"), "case-insensitive");
        assert!(c.create(SchemaObject::Array(matrix())).is_err());
        assert!(c.get_array("matrix").is_ok());
        assert!(c.get_table("matrix").is_err());
        assert!(c.get("nope").is_err());
        c.drop_object("Matrix").unwrap();
        assert!(c.is_empty());
    }

    #[test]
    fn alter_dimension_updates_range() {
        let mut c = Catalog::new();
        c.create(SchemaObject::Array(matrix())).unwrap();
        c.alter_dimension("matrix", "x", DimSpec::new(-1, 1, 5).unwrap())
            .unwrap();
        let a = c.get_array("matrix").unwrap();
        assert_eq!(a.dims[0].range.unwrap().len(), 6);
        assert!(c
            .alter_dimension("matrix", "zz", DimSpec::new(0, 1, 2).unwrap())
            .is_err());
    }

    #[test]
    fn unbounded_array_has_no_cell_count() {
        let mut a = matrix();
        a.dims[1].range = None;
        assert!(!a.is_fixed());
        assert_eq!(a.cell_count(), None);
        assert_eq!(a.position_of(&[0, 0]), None);
    }

    #[test]
    fn three_dimensional_positions() {
        let a = ArrayDef {
            name: "cube".into(),
            dims: (0..3)
                .map(|i| DimensionDef {
                    name: format!("d{i}"),
                    ty: ScalarType::Int,
                    range: Some(DimSpec::new(0, 1, 3).unwrap()),
                })
                .collect(),
            attrs: vec![],
        };
        assert_eq!(a.cell_count(), Some(27));
        assert_eq!(a.position_of(&[1, 2, 0]), Some(9 + 2 * 3));
        assert_eq!(a.series_factors(0), Some((9, 1)));
        assert_eq!(a.series_factors(1), Some((3, 3)));
        assert_eq!(a.series_factors(2), Some((1, 9)));
        for p in 0..27 {
            let c = a.coords_of(p).unwrap();
            assert_eq!(a.position_of(&c), Some(p), "roundtrip {p}");
        }
    }
}
