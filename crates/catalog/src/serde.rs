//! Binary (de)serialization of schema objects for the durable vault.
//!
//! The catalog snapshot written by `sciql-store` persists every
//! [`SchemaObject`] — array `DIMENSION[lo:step:hi]` specs, attribute
//! defaults and table column lists — in a compact tagged format built on
//! the primitive helpers of [`gdk::codec`]. The container framing
//! (magic, version, checksum) belongs to the snapshot file, not to the
//! individual objects encoded here.

use crate::schema::{ArrayDef, ColumnMeta, DimSpec, DimensionDef, SchemaObject, TableDef};
use gdk::codec::{
    decode_value, encode_value, put_i64, put_str, put_u32, put_u8, type_from_tag, type_tag,
    CodecError, CodecResult, Reader,
};

const TAG_TABLE: u8 = 0;
const TAG_ARRAY: u8 = 1;

fn encode_column_meta(c: &ColumnMeta, out: &mut Vec<u8>) {
    put_str(out, &c.name);
    put_u8(out, type_tag(c.ty));
    match &c.default {
        None => put_u8(out, 0),
        Some(v) => {
            put_u8(out, 1);
            encode_value(v, out);
        }
    }
}

fn decode_column_meta(r: &mut Reader<'_>) -> CodecResult<ColumnMeta> {
    let name = r.str()?;
    let ty = type_from_tag(r.u8()?)?;
    let default = match r.u8()? {
        0 => None,
        1 => Some(decode_value(r)?),
        other => return Err(CodecError::Invalid(format!("bad default flag {other}"))),
    };
    Ok(ColumnMeta { name, ty, default })
}

fn encode_dimension(d: &DimensionDef, out: &mut Vec<u8>) {
    put_str(out, &d.name);
    put_u8(out, type_tag(d.ty));
    match &d.range {
        None => put_u8(out, 0),
        Some(r) => {
            put_u8(out, 1);
            put_i64(out, r.start);
            put_i64(out, r.step);
            put_i64(out, r.stop);
        }
    }
}

fn decode_dimension(r: &mut Reader<'_>) -> CodecResult<DimensionDef> {
    let name = r.str()?;
    let ty = type_from_tag(r.u8()?)?;
    let range = match r.u8()? {
        0 => None,
        1 => {
            let (start, step, stop) = (r.i64()?, r.i64()?, r.i64()?);
            Some(DimSpec::new(start, step, stop).map_err(|e| CodecError::Invalid(e.to_string()))?)
        }
        other => return Err(CodecError::Invalid(format!("bad range flag {other}"))),
    };
    Ok(DimensionDef { name, ty, range })
}

/// Encode one schema object.
pub fn encode_object(obj: &SchemaObject, out: &mut Vec<u8>) {
    match obj {
        SchemaObject::Table(t) => {
            put_u8(out, TAG_TABLE);
            put_str(out, &t.name);
            put_u32(out, t.columns.len() as u32);
            for c in &t.columns {
                encode_column_meta(c, out);
            }
        }
        SchemaObject::Array(a) => {
            put_u8(out, TAG_ARRAY);
            put_str(out, &a.name);
            put_u32(out, a.dims.len() as u32);
            for d in &a.dims {
                encode_dimension(d, out);
            }
            put_u32(out, a.attrs.len() as u32);
            for c in &a.attrs {
                encode_column_meta(c, out);
            }
        }
    }
}

/// Decode one schema object.
pub fn decode_object(r: &mut Reader<'_>) -> CodecResult<SchemaObject> {
    match r.u8()? {
        TAG_TABLE => {
            let name = r.str()?;
            let n = r.u32()? as usize;
            let mut columns = Vec::with_capacity(n);
            for _ in 0..n {
                columns.push(decode_column_meta(r)?);
            }
            Ok(SchemaObject::Table(TableDef { name, columns }))
        }
        TAG_ARRAY => {
            let name = r.str()?;
            let nd = r.u32()? as usize;
            let mut dims = Vec::with_capacity(nd);
            for _ in 0..nd {
                dims.push(decode_dimension(r)?);
            }
            let na = r.u32()? as usize;
            let mut attrs = Vec::with_capacity(na);
            for _ in 0..na {
                attrs.push(decode_column_meta(r)?);
            }
            Ok(SchemaObject::Array(ArrayDef { name, dims, attrs }))
        }
        other => Err(CodecError::Invalid(format!("unknown object tag {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdk::{ScalarType, Value};

    fn roundtrip(obj: &SchemaObject) {
        let mut bytes = Vec::new();
        encode_object(obj, &mut bytes);
        let mut r = Reader::new(&bytes);
        let back = decode_object(&mut r).expect("decode");
        assert_eq!(&back, obj);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn table_roundtrip() {
        roundtrip(&SchemaObject::Table(TableDef {
            name: "obs".into(),
            columns: vec![
                ColumnMeta {
                    name: "sid".into(),
                    ty: ScalarType::Int,
                    default: None,
                },
                ColumnMeta {
                    name: "label".into(),
                    ty: ScalarType::Str,
                    default: Some(Value::Str("it's".into())),
                },
            ],
        }));
    }

    #[test]
    fn array_roundtrip_fixed_and_unbounded() {
        roundtrip(&SchemaObject::Array(ArrayDef {
            name: "matrix".into(),
            dims: vec![
                DimensionDef {
                    name: "x".into(),
                    ty: ScalarType::Int,
                    range: Some(DimSpec::new(-1, 1, 5).unwrap()),
                },
                DimensionDef {
                    name: "t".into(),
                    ty: ScalarType::Lng,
                    range: None,
                },
            ],
            attrs: vec![
                ColumnMeta {
                    name: "v".into(),
                    ty: ScalarType::Int,
                    default: Some(Value::Int(0)),
                },
                ColumnMeta {
                    name: "w".into(),
                    ty: ScalarType::Dbl,
                    default: None,
                },
            ],
        }));
    }

    #[test]
    fn garbage_rejected() {
        let mut r = Reader::new(&[7, 0, 0]);
        assert!(decode_object(&mut r).is_err());
    }
}
