//! # sciql-catalog — schema catalog for tables and arrays
//!
//! The SQL/SciQL catalog (Fig 2 of the paper): named schema objects, where
//! an *array* differs from a *table* by carrying named, range-constrained
//! dimensions. "All cells covered by an array's dimensions always exist
//! conceptually, while in a table tuples only exist after an explicit
//! insertion" (§1).

#![warn(missing_docs)]

pub mod schema;
pub mod serde;
pub mod sysview;

pub use schema::{
    ArrayDef, Catalog, CatalogError, ColumnMeta, DimSpec, DimensionDef, SchemaObject, TableDef,
};
