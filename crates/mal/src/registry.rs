//! Primitive registry: maps `module.function` to Rust implementations.

use crate::interp::MalValue;
use crate::{MalError, Result};
use std::collections::HashMap;

/// A MAL primitive: takes evaluated arguments, returns result values.
pub type PrimFn = Box<dyn Fn(&[MalValue]) -> Result<Vec<MalValue>> + Send + Sync>;

/// Registry of primitives keyed by `(module, function)`.
#[derive(Default)]
pub struct Registry {
    prims: HashMap<(String, String), PrimFn>,
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a primitive. Re-registration replaces (used by tests to
    /// stub primitives).
    pub fn register(
        &mut self,
        module: &str,
        function: &str,
        f: impl Fn(&[MalValue]) -> Result<Vec<MalValue>> + Send + Sync + 'static,
    ) {
        self.prims
            .insert((module.to_owned(), function.to_owned()), Box::new(f));
    }

    /// Look up a primitive.
    pub fn lookup(&self, module: &str, function: &str) -> Result<&PrimFn> {
        self.prims
            .get(&(module.to_owned(), function.to_owned()))
            .ok_or_else(|| MalError::msg(format!("unknown MAL primitive {module}.{function}")))
    }

    /// Number of registered primitives.
    pub fn len(&self) -> usize {
        self.prims.len()
    }

    /// True when no primitives are registered.
    pub fn is_empty(&self) -> bool {
        self.prims.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdk::Value;

    #[test]
    fn register_and_lookup() {
        let mut r = Registry::new();
        assert!(r.is_empty());
        r.register("m", "f", |_args| Ok(vec![MalValue::Scalar(Value::Int(1))]));
        assert_eq!(r.len(), 1);
        let f = r.lookup("m", "f").unwrap();
        let out = f(&[]).unwrap();
        assert!(matches!(out[0], MalValue::Scalar(Value::Int(1))));
        assert!(r.lookup("m", "missing").is_err());
    }
}
