//! Primitive registry: maps `module.function` to Rust implementations.

use crate::interp::MalValue;
use crate::{MalError, Result};
use gdk::ParConfig;
use std::cell::Cell;
use std::collections::HashMap;

/// Per-instruction execution context handed to every primitive: the
/// parallel-driver configuration plus a channel for reporting how many
/// worker threads the kernel actually used (collected into
/// [`crate::interp::ExecStats`]).
#[derive(Debug)]
pub struct ExecCtx {
    /// Parallel kernel configuration for this instruction. Instructions
    /// the code generator did not mark parallel-safe receive
    /// [`ParConfig::serial`].
    pub par: ParConfig,
    threads_used: Cell<usize>,
    avoided_intermediates: Cell<usize>,
    avoided_bytes: Cell<usize>,
    tiles_skipped: Cell<usize>,
}

impl ExecCtx {
    /// Context with the given parallel configuration.
    pub fn new(par: ParConfig) -> Self {
        ExecCtx {
            par,
            threads_used: Cell::new(1),
            avoided_intermediates: Cell::new(0),
            avoided_bytes: Cell::new(0),
            tiles_skipped: Cell::new(0),
        }
    }

    /// Context that forces serial execution.
    pub fn serial() -> Self {
        ExecCtx::new(ParConfig::serial())
    }

    /// Record that a kernel ran with `k` worker threads.
    pub fn note_threads(&self, k: usize) {
        self.threads_used.set(self.threads_used.get().max(k));
    }

    /// Worker threads used by the instruction executed under this
    /// context (1 when everything ran serially).
    pub fn threads_used(&self) -> usize {
        self.threads_used.get()
    }

    /// Record that a fused kernel skipped materialising `intermediates`
    /// intermediate results totalling roughly `bytes` bytes (candidate
    /// lists, projected payload BATs). Collected into
    /// [`crate::interp::ExecStats`].
    pub fn note_avoided(&self, intermediates: usize, bytes: usize) {
        self.avoided_intermediates
            .set(self.avoided_intermediates.get() + intermediates);
        self.avoided_bytes.set(self.avoided_bytes.get() + bytes);
    }

    /// `(intermediates, bytes)` this instruction avoided materialising.
    pub fn avoided(&self) -> (usize, usize) {
        (self.avoided_intermediates.get(), self.avoided_bytes.get())
    }

    /// Record that a selection consulted a zone map and skipped `n`
    /// tiles without scanning them.
    pub fn note_tiles_skipped(&self, n: usize) {
        self.tiles_skipped.set(self.tiles_skipped.get() + n);
    }

    /// Tiles skipped by zone-map consultation under this context.
    pub fn tiles_skipped(&self) -> usize {
        self.tiles_skipped.get()
    }
}

impl Default for ExecCtx {
    fn default() -> Self {
        ExecCtx::serial()
    }
}

/// A MAL primitive: takes evaluated arguments and the execution context,
/// returns result values.
pub type PrimFn = Box<dyn Fn(&[MalValue], &ExecCtx) -> Result<Vec<MalValue>> + Send + Sync>;

/// Registry of primitives keyed by `(module, function)`.
#[derive(Default)]
pub struct Registry {
    prims: HashMap<(String, String), PrimFn>,
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a primitive. Re-registration replaces (used by tests to
    /// stub primitives).
    pub fn register(
        &mut self,
        module: &str,
        function: &str,
        f: impl Fn(&[MalValue], &ExecCtx) -> Result<Vec<MalValue>> + Send + Sync + 'static,
    ) {
        self.prims
            .insert((module.to_owned(), function.to_owned()), Box::new(f));
    }

    /// Look up a primitive.
    pub fn lookup(&self, module: &str, function: &str) -> Result<&PrimFn> {
        self.prims
            .get(&(module.to_owned(), function.to_owned()))
            .ok_or_else(|| MalError::msg(format!("unknown MAL primitive {module}.{function}")))
    }

    /// Number of registered primitives.
    pub fn len(&self) -> usize {
        self.prims.len()
    }

    /// True when no primitives are registered.
    pub fn is_empty(&self) -> bool {
        self.prims.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdk::Value;

    #[test]
    fn register_and_lookup() {
        let mut r = Registry::new();
        assert!(r.is_empty());
        r.register("m", "f", |_args, _ctx| {
            Ok(vec![MalValue::Scalar(Value::Int(1))])
        });
        assert_eq!(r.len(), 1);
        let f = r.lookup("m", "f").unwrap();
        let out = f(&[], &ExecCtx::serial()).unwrap();
        assert!(matches!(out[0], MalValue::Scalar(Value::Int(1))));
        assert!(r.lookup("m", "missing").is_err());
    }

    #[test]
    fn ctx_reports_threads() {
        let ctx = ExecCtx::new(ParConfig::with_threads(4));
        assert_eq!(ctx.threads_used(), 1);
        ctx.note_threads(3);
        ctx.note_threads(2);
        assert_eq!(ctx.threads_used(), 3);
        assert_eq!(ExecCtx::serial().par.threads, 1);
    }
}
