//! The MAL interpreter.
//!
//! Executes a [`Program`] instruction by instruction against the primitive
//! [`Registry`]. Stored BATs enter a program through `sql.bind` instructions
//! resolved by a caller-provided [`Binder`] (the engine's catalog adapter).
//!
//! Shared values are `Arc`-counted so BAT-level instructions marked
//! parallel-safe by the code generator can fan out across the slice
//! drivers in [`gdk::par`] without copying columns; [`ExecStats`] records
//! the worker-thread count of every executed instruction.

use crate::ir::{Arg, Instr, Program, VarId};
use crate::registry::{ExecCtx, Registry};
use crate::{MalError, Result};
use gdk::group::Groups;
use gdk::{Bat, Candidates, ParConfig, Value};
use sciql_obs::{SpanId, Tracer};
use std::sync::Arc;

/// A runtime MAL value.
#[derive(Debug, Clone)]
pub enum MalValue {
    /// Scalar.
    Scalar(Value),
    /// BAT (shared; operators never mutate their inputs).
    Bat(Arc<Bat>),
    /// Candidate list.
    Cand(Arc<Candidates>),
    /// Grouping descriptor.
    Grp(Arc<Groups>),
}

impl MalValue {
    /// Wrap a BAT.
    pub fn bat(b: Bat) -> Self {
        MalValue::Bat(Arc::new(b))
    }
    /// Wrap a candidate list.
    pub fn cand(c: Candidates) -> Self {
        MalValue::Cand(Arc::new(c))
    }
    /// Wrap a grouping.
    pub fn grp(g: Groups) -> Self {
        MalValue::Grp(Arc::new(g))
    }
    /// Expect a scalar.
    pub fn as_scalar(&self) -> Result<&Value> {
        match self {
            MalValue::Scalar(v) => Ok(v),
            other => Err(MalError::msg(format!(
                "expected scalar, got {}",
                other.kind()
            ))),
        }
    }
    /// Expect a BAT.
    pub fn as_bat(&self) -> Result<&Arc<Bat>> {
        match self {
            MalValue::Bat(b) => Ok(b),
            other => Err(MalError::msg(format!("expected BAT, got {}", other.kind()))),
        }
    }
    /// Expect a candidate list.
    pub fn as_cand(&self) -> Result<&Arc<Candidates>> {
        match self {
            MalValue::Cand(c) => Ok(c),
            other => Err(MalError::msg(format!(
                "expected candidate list, got {}",
                other.kind()
            ))),
        }
    }
    /// Expect a grouping.
    pub fn as_grp(&self) -> Result<&Arc<Groups>> {
        match self {
            MalValue::Grp(g) => Ok(g),
            other => Err(MalError::msg(format!(
                "expected groups, got {}",
                other.kind()
            ))),
        }
    }
    /// Human-readable kind tag.
    pub fn kind(&self) -> &'static str {
        match self {
            MalValue::Scalar(_) => "scalar",
            MalValue::Bat(_) => "bat",
            MalValue::Cand(_) => "candidates",
            MalValue::Grp(_) => "groups",
        }
    }
}

/// Resolves `sql.bind(object, column)` to stored columns.
pub trait Binder {
    /// Return the named stored column.
    fn bind(&self, object: &str, column: &str) -> Result<MalValue>;
}

/// A binder with no stored objects (programs using `sql.bind` fail).
pub struct EmptyBinder;

impl Binder for EmptyBinder {
    fn bind(&self, object: &str, column: &str) -> Result<MalValue> {
        Err(MalError::msg(format!(
            "no storage bound: cannot resolve {object}.{column}"
        )))
    }
}

/// Execution statistics (used by the optimizer-ablation experiment and
/// the parallelism benchmarks).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ExecStats {
    /// Instructions executed.
    pub instructions: usize,
    /// Total tuples produced into result BATs (rough work measure).
    pub tuples_produced: usize,
    /// Instructions that actually ran with more than one worker thread.
    pub par_instructions: usize,
    /// Largest worker-thread count any instruction used.
    pub max_threads: usize,
    /// 1 when this execution reused a cached compiled plan (prepared
    /// statement re-execution that skipped parse + bind + optimise);
    /// 0 when the plan was compiled for this execution. Set by the
    /// engine's prepared-statement executor, not the interpreter itself.
    pub plan_cache_hits: usize,
    /// Intermediate results (candidate lists, projected BATs) the fused
    /// kernels skipped materialising.
    pub intermediates_avoided: usize,
    /// Approximate bytes those intermediates would have occupied.
    pub bytes_not_materialized: usize,
    /// Column tiles that zone-map consultation let selections skip
    /// without scanning (see [`gdk::zonemap`]).
    pub tiles_skipped: usize,
    /// Per executed instruction: qualified primitive name and the number
    /// of worker threads its kernel used (1 = serial).
    pub per_instr_threads: Vec<(String, usize)>,
}

/// Per-instruction outcome: output values, worker-thread count,
/// `(intermediates avoided, their bytes)`, and tiles skipped by zone
/// maps.
type InstrOutcome = (Vec<MalValue>, usize, (usize, usize), usize);

/// The interpreter.
pub struct Interpreter<'a> {
    registry: &'a Registry,
    binder: &'a dyn Binder,
    par: ParConfig,
}

impl<'a> Interpreter<'a> {
    /// New serial interpreter over a primitive registry and a storage
    /// binder.
    pub fn new(registry: &'a Registry, binder: &'a dyn Binder) -> Self {
        Self::with_config(registry, binder, ParConfig::serial())
    }

    /// Interpreter that dispatches parallel-safe BAT instructions through
    /// the [`gdk::par`] slice driver with the given configuration.
    pub fn with_config(registry: &'a Registry, binder: &'a dyn Binder, par: ParConfig) -> Self {
        Interpreter {
            registry,
            binder,
            par,
        }
    }

    /// Run the program, returning its labelled result columns.
    pub fn run(&self, prog: &Program) -> Result<Vec<(String, MalValue)>> {
        self.run_with_stats(prog).map(|(r, _)| r)
    }

    /// Run the program with bound parameter values filling its
    /// [`Arg::Param`] slots.
    pub fn run_with_params(
        &self,
        prog: &Program,
        params: &[Value],
    ) -> Result<Vec<(String, MalValue)>> {
        self.run_with_stats_params(prog, params).map(|(r, _)| r)
    }

    /// Run the program and report execution statistics.
    pub fn run_with_stats(&self, prog: &Program) -> Result<(Vec<(String, MalValue)>, ExecStats)> {
        self.run_with_stats_params(prog, &[])
    }

    /// [`Interpreter::run_with_stats`] with bound parameter values. Each
    /// value is coerced to its slot's declared type (`Program::params`)
    /// up front, so a parameterised plan executes exactly like the same
    /// plan with inlined constants.
    pub fn run_with_stats_params(
        &self,
        prog: &Program,
        params: &[Value],
    ) -> Result<(Vec<(String, MalValue)>, ExecStats)> {
        self.run_traced(prog, params, &mut Tracer::off(), SpanId::ROOT)
    }

    /// [`Interpreter::run_with_stats_params`] with a span per executed
    /// instruction recorded under `parent`, annotated with the kernel's
    /// worker-thread count and with tuples produced, tiles skipped and
    /// intermediates avoided when non-zero. With a disabled tracer the
    /// per-instruction cost is one predictable branch.
    pub fn run_traced(
        &self,
        prog: &Program,
        params: &[Value],
        tracer: &mut Tracer,
        parent: SpanId,
    ) -> Result<(Vec<(String, MalValue)>, ExecStats)> {
        let params = coerce_params(prog, params)?;
        let mut env: Vec<Option<MalValue>> = vec![None; prog.vars.len()];
        let mut stats = ExecStats::default();
        for (idx, ins) in prog.instrs.iter().enumerate() {
            let sp = if tracer.is_on() {
                tracer.open(parent, &format!("[{idx:02}] {}", ins.qualified()))
            } else {
                SpanId::ROOT
            };
            let (outs, threads, (avoided, avoided_bytes), tiles_skipped) =
                self.exec_instr(prog, ins, &env, &params)?;
            stats.instructions += 1;
            stats.max_threads = stats.max_threads.max(threads);
            if threads > 1 {
                stats.par_instructions += 1;
            }
            stats.intermediates_avoided += avoided;
            stats.bytes_not_materialized += avoided_bytes;
            stats.tiles_skipped += tiles_skipped;
            stats.per_instr_threads.push((ins.qualified(), threads));
            if outs.len() != ins.results.len() {
                return Err(MalError::msg(format!(
                    "{} returned {} results, expected {}",
                    ins.qualified(),
                    outs.len(),
                    ins.results.len()
                )));
            }
            let mut tuples = 0usize;
            for (rid, val) in ins.results.iter().zip(outs) {
                if let MalValue::Bat(b) = &val {
                    tuples += b.len();
                }
                env[*rid] = Some(val);
            }
            stats.tuples_produced += tuples;
            if tracer.is_on() {
                tracer.note(sp, "threads", threads as u64);
                if tuples > 0 {
                    tracer.note(sp, "tuples", tuples as u64);
                }
                if tiles_skipped > 0 {
                    tracer.note(sp, "tiles_skipped", tiles_skipped as u64);
                }
                if avoided > 0 {
                    tracer.note(sp, "intermediates_avoided", avoided as u64);
                    tracer.note(sp, "bytes_not_materialized", avoided_bytes as u64);
                }
                tracer.close(sp);
            }
        }
        let mut results = Vec::with_capacity(prog.results.len());
        for (label, vid) in &prog.results {
            let v = env[*vid]
                .clone()
                .ok_or_else(|| MalError::msg(format!("result variable {vid} never assigned")))?;
            results.push((label.clone(), v));
        }
        Ok((results, stats))
    }

    fn exec_instr(
        &self,
        prog: &Program,
        ins: &Instr,
        env: &[Option<MalValue>],
        params: &[Value],
    ) -> Result<InstrOutcome> {
        let mut args: Vec<MalValue> = Vec::with_capacity(ins.args.len());
        for a in &ins.args {
            match a {
                Arg::Const(v) => args.push(MalValue::Scalar(v.clone())),
                Arg::Param(k) => args.push(MalValue::Scalar(
                    params
                        .get(*k)
                        .cloned()
                        .ok_or_else(|| MalError::unbound_param(*k, params.len()))?,
                )),
                Arg::Var(vid) => args.push(env[*vid].clone().ok_or_else(|| {
                    MalError::msg(format!(
                        "variable {} used before assignment in {}",
                        prog.vars[*vid].name,
                        ins.qualified()
                    ))
                })?),
            }
        }
        // sql.bind is special: routed to the storage binder.
        if ins.module == "sql" && ins.function == "bind" {
            let obj = args
                .first()
                .ok_or_else(|| MalError::msg("sql.bind needs (object, column)"))?
                .as_scalar()?
                .clone();
            let col = args
                .get(1)
                .ok_or_else(|| MalError::msg("sql.bind needs (object, column)"))?
                .as_scalar()?
                .clone();
            let (Value::Str(obj), Value::Str(col)) = (obj, col) else {
                return Err(MalError::msg("sql.bind arguments must be strings"));
            };
            return Ok((vec![self.binder.bind(&obj, &col)?], 1, (0, 0), 0));
        }
        let prim = self.registry.lookup(&ins.module, &ins.function)?;
        // Only instructions the code generator marked parallel-safe see
        // the parallel configuration; everything else runs serially.
        let ctx = if ins.parallel_ok {
            ExecCtx::new(self.par)
        } else {
            // Serial execution still honours the session's zone-skip
            // switch: skipping is a candidate restriction, not a
            // parallelism concern.
            ExecCtx::new(ParConfig {
                zone_skip: self.par.zone_skip,
                ..ParConfig::serial()
            })
        };
        let outs =
            prim(&args, &ctx).map_err(|e| MalError::msg(format!("{}: {e}", ins.qualified())))?;
        Ok((outs, ctx.threads_used(), ctx.avoided(), ctx.tiles_skipped()))
    }
}

/// Coerce the caller's bound values to the program's declared slot
/// types. Fails when the program declares a slot past the end of
/// `params` (unbound parameter) or a value cannot be cast to its slot
/// type. Extra trailing values are tolerated (the program simply does
/// not read them). The slot count comes from `Program::params`, which
/// the code generator maintains for every emitted `Arg::Param` — no
/// per-execution instruction scan on the cached-plan hot path; a
/// hand-built program with an undeclared slot still fails cleanly at
/// the referencing instruction.
fn coerce_params(prog: &Program, params: &[Value]) -> Result<Vec<Value>> {
    let needed = prog.params.len();
    if params.len() < needed {
        return Err(MalError::unbound_param(needed - 1, params.len()));
    }
    params
        .iter()
        .enumerate()
        .map(|(k, v)| match prog.params.get(k).copied().flatten() {
            Some(ty) => v
                .cast(ty)
                .ok_or_else(|| MalError::BadParam(k, format!("{v} is not a valid {ty}"))),
            None => Ok(v.clone()),
        })
        .collect()
}

/// Convenience: variable id type re-export for callers.
pub type ResultVar = VarId;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Arg, MalType, Program};
    use crate::registry::Registry;
    use gdk::ScalarType;

    fn reg() -> Registry {
        crate::prims::default_registry()
    }

    #[test]
    fn run_series_program() {
        let mut p = Program::new("t");
        let x = p.emit(
            "array",
            "series",
            vec![
                Arg::Const(Value::Int(0)),
                Arg::Const(Value::Int(1)),
                Arg::Const(Value::Int(4)),
                Arg::Const(Value::Lng(4)),
                Arg::Const(Value::Lng(1)),
            ],
            MalType::Bat(ScalarType::Int),
        );
        p.add_result("x", x);
        let r = reg();
        let interp = Interpreter::new(&r, &EmptyBinder);
        let out = interp.run(&p).unwrap();
        assert_eq!(out.len(), 1);
        let b = out[0].1.as_bat().unwrap();
        assert_eq!(b.len(), 16);
    }

    #[test]
    fn unassigned_variable_is_error() {
        let mut p = Program::new("bad");
        let v = p.new_var(MalType::Bat(ScalarType::Int));
        let r2 = p.emit(
            "aggr",
            "count",
            vec![Arg::Var(v)],
            MalType::Scalar(ScalarType::Lng),
        );
        p.add_result("n", r2);
        let r = reg();
        let interp = Interpreter::new(&r, &EmptyBinder);
        assert!(interp.run(&p).is_err());
    }

    #[test]
    fn bind_without_storage_fails() {
        let mut p = Program::new("b");
        let v = p.emit(
            "sql",
            "bind",
            vec![
                Arg::Const(Value::Str("m".into())),
                Arg::Const(Value::Str("v".into())),
            ],
            MalType::Bat(ScalarType::Int),
        );
        p.add_result("v", v);
        let r = reg();
        let interp = Interpreter::new(&r, &EmptyBinder);
        let err = interp.run(&p).unwrap_err();
        assert!(err.to_string().contains("m.v"), "{err}");
    }

    #[test]
    fn failing_primitive_mid_program_reports_instruction() {
        // Division by zero inside a longer program: the error names the
        // offending primitive and nothing is returned.
        let mut p = Program::new("boom");
        let a = p.emit(
            "array",
            "filler",
            vec![Arg::Const(Value::Lng(4)), Arg::Const(Value::Int(8))],
            MalType::Bat(ScalarType::Int),
        );
        let d = p.emit(
            "batcalc",
            "div",
            vec![Arg::Var(a), Arg::Const(Value::Int(0))],
            MalType::Bat(ScalarType::Int),
        );
        let s = p.emit(
            "aggr",
            "sum",
            vec![Arg::Var(d)],
            MalType::Scalar(ScalarType::Lng),
        );
        p.add_result("total", s);
        let r = reg();
        let interp = Interpreter::new(&r, &EmptyBinder);
        let err = interp.run(&p).unwrap_err();
        assert!(err.to_string().contains("batcalc.div"), "{err}");
        assert!(err.to_string().contains("division by zero"), "{err}");
    }

    #[test]
    fn wrong_result_arity_detected() {
        // algebra.join returns two results; declaring one must fail.
        let mut p = Program::new("arity");
        let a = p.emit(
            "array",
            "filler",
            vec![Arg::Const(Value::Lng(2)), Arg::Const(Value::Int(1))],
            MalType::Bat(ScalarType::Int),
        );
        let one = p.emit(
            "algebra",
            "join",
            vec![Arg::Var(a), Arg::Var(a)],
            MalType::Bat(ScalarType::OidT),
        );
        p.add_result("l", one);
        let r = reg();
        let interp = Interpreter::new(&r, &EmptyBinder);
        let err = interp.run(&p).unwrap_err();
        assert!(err.to_string().contains("2 results"), "{err}");
    }

    #[test]
    fn unknown_primitive_is_a_clean_error() {
        let mut p = Program::new("nope");
        let v = p.emit("voodoo", "conjure", vec![], MalType::Any);
        p.add_result("v", v);
        let r = reg();
        let interp = Interpreter::new(&r, &EmptyBinder);
        let err = interp.run(&p).unwrap_err();
        assert!(err.to_string().contains("voodoo.conjure"), "{err}");
    }

    #[test]
    fn type_confusion_is_a_clean_error() {
        // Passing a candidate list where a BAT is expected.
        let mut p = Program::new("ty");
        let c = p.emit(
            "algebra",
            "densecand",
            vec![Arg::Const(Value::Lng(0)), Arg::Const(Value::Lng(3))],
            MalType::Cand,
        );
        let s = p.emit(
            "aggr",
            "sum",
            vec![Arg::Var(c)],
            MalType::Scalar(ScalarType::Lng),
        );
        p.add_result("s", s);
        let r = reg();
        let interp = Interpreter::new(&r, &EmptyBinder);
        let err = interp.run(&p).unwrap_err();
        assert!(err.to_string().contains("expected BAT"), "{err}");
    }

    #[test]
    fn params_fill_slots_per_execution() {
        // filler(?0, ?1) summed: the same compiled program runs with
        // different count/value bindings, no recompilation.
        let mut p = Program::new("par");
        let x = p.emit(
            "array",
            "filler",
            vec![Arg::Param(0), Arg::Param(1)],
            MalType::Bat(ScalarType::Int),
        );
        let s = p.emit(
            "aggr",
            "sum",
            vec![Arg::Var(x)],
            MalType::Scalar(ScalarType::Lng),
        );
        p.add_result("s", s);
        p.declare_param(0, Some(ScalarType::Lng));
        p.declare_param(1, Some(ScalarType::Int));
        let r = reg();
        let interp = Interpreter::new(&r, &EmptyBinder);
        let sum = |params: &[Value]| {
            interp.run_with_params(&p, params).unwrap()[0]
                .1
                .as_scalar()
                .unwrap()
                .as_i64()
                .unwrap()
        };
        assert_eq!(sum(&[Value::Lng(4), Value::Int(8)]), 32);
        assert_eq!(sum(&[Value::Lng(3), Value::Int(5)]), 15);
        // Typed coercion: an int binds into the lng slot.
        assert_eq!(sum(&[Value::Int(4), Value::Int(8)]), 32);
        // Unbound: clear error naming the slot.
        let err = interp.run(&p).unwrap_err();
        assert!(err.to_string().contains("parameter 2"), "{err}");
        // Uncastable: also a clear error.
        let err = interp
            .run_with_params(&p, &[Value::Str("x".into()), Value::Int(1)])
            .unwrap_err();
        assert!(err.to_string().contains("cannot bind"), "{err}");
    }

    #[test]
    fn stats_count_instructions() {
        let mut p = Program::new("s");
        let x = p.emit(
            "array",
            "filler",
            vec![Arg::Const(Value::Lng(10)), Arg::Const(Value::Int(7))],
            MalType::Bat(ScalarType::Int),
        );
        p.add_result("x", x);
        let r = reg();
        let interp = Interpreter::new(&r, &EmptyBinder);
        let (_, stats) = interp.run_with_stats(&p).unwrap();
        assert_eq!(stats.instructions, 1);
        assert_eq!(stats.tuples_produced, 10);
    }
}
