//! `algebra.*` — selections, projections, joins, slices, sorting.

use crate::interp::MalValue;
use crate::registry::{ExecCtx, Registry};
use crate::{MalError, Result};
use gdk::arith::CmpOp;
use gdk::candidates::Candidates;
use gdk::{join, project, select, sort, zonemap, Bat, Value};
use std::sync::Arc;

pub(crate) fn cmp_from_str(s: &str) -> Result<CmpOp> {
    Ok(match s {
        "==" | "=" => CmpOp::Eq,
        "!=" | "<>" => CmpOp::Ne,
        "<" => CmpOp::Lt,
        "<=" => CmpOp::Le,
        ">" => CmpOp::Gt,
        ">=" => CmpOp::Ge,
        _ => return Err(MalError::msg(format!("unknown comparison operator {s:?}"))),
    })
}

fn opt_cand(args: &[MalValue], i: usize) -> Result<Option<std::sync::Arc<Candidates>>> {
    match args.get(i) {
        Some(MalValue::Cand(c)) => Ok(Some(c.clone())),
        Some(other) => Err(MalError::msg(format!(
            "argument {i} must be a candidate list, got {}",
            other.kind()
        ))),
        None => Ok(None),
    }
}

fn as_bool(v: &Value, what: &str) -> Result<bool> {
    v.as_bool()
        .ok_or_else(|| MalError::msg(format!("{what} must be a boolean")))
}

/// Consult `b`'s zone map and narrow an unrestricted theta-selection to
/// the tiles that may hold qualifying rows. Only fires when no explicit
/// candidate list restricts the scan already and the session has
/// zone-skipping enabled; results are identical either way.
pub(crate) fn zone_restrict_theta(
    ctx: &ExecCtx,
    b: &Bat,
    cand: Option<Arc<Candidates>>,
    val: &Value,
    op: CmpOp,
) -> Option<Arc<Candidates>> {
    if cand.is_none() && ctx.par.zone_skip {
        if let Some((zc, skipped)) = zonemap::restrict_theta(b, val, op) {
            ctx.note_tiles_skipped(skipped);
            return Some(Arc::new(zc));
        }
    }
    cand
}

/// Range-predicate variant of [`zone_restrict_theta`].
#[allow(clippy::too_many_arguments)]
fn zone_restrict_range(
    ctx: &ExecCtx,
    b: &Bat,
    cand: Option<Arc<Candidates>>,
    lo: &Value,
    hi: &Value,
    li: bool,
    hi_incl: bool,
    anti: bool,
) -> Option<Arc<Candidates>> {
    if cand.is_none() && ctx.par.zone_skip {
        if let Some((zc, skipped)) = zonemap::restrict_range(b, lo, hi, li, hi_incl, anti) {
            ctx.note_tiles_skipped(skipped);
            return Some(Arc::new(zc));
        }
    }
    cand
}

/// Register the `algebra` module.
pub fn register(r: &mut Registry) {
    // algebra.thetaselect(b, [cand,] val, op:str) :cand
    r.register("algebra", "thetaselect", |args, ctx| {
        let b = args
            .first()
            .ok_or_else(|| MalError::msg("thetaselect: missing BAT"))?
            .as_bat()?;
        let (cand, val_i) = if args.len() == 4 {
            (opt_cand(args, 1)?, 2)
        } else if args.len() == 3 {
            (None, 1)
        } else {
            return Err(MalError::msg("thetaselect takes 3 or 4 arguments"));
        };
        let val = args[val_i].as_scalar()?;
        let Value::Str(op) = args[val_i + 1].as_scalar()? else {
            return Err(MalError::msg("thetaselect operator must be a string"));
        };
        let op = cmp_from_str(op)?;
        let cand = zone_restrict_theta(ctx, b, cand, val, op);
        let (c, threads) = gdk::par::thetaselect(b, cand.as_deref(), val, op, &ctx.par)?;
        ctx.note_threads(threads);
        Ok(vec![MalValue::cand(c)])
    });

    // algebra.select(b, [cand,] lo, hi, li:bit, hi_incl:bit, anti:bit) :cand
    r.register("algebra", "select", |args, ctx| {
        let b = args
            .first()
            .ok_or_else(|| MalError::msg("select: missing BAT"))?
            .as_bat()?;
        let (cand, base) = if args.len() == 7 {
            (opt_cand(args, 1)?, 2)
        } else if args.len() == 6 {
            (None, 1)
        } else {
            return Err(MalError::msg("select takes 6 or 7 arguments"));
        };
        let lo = args[base].as_scalar()?;
        let hi = args[base + 1].as_scalar()?;
        let li = as_bool(args[base + 2].as_scalar()?, "li")?;
        let hi_incl = as_bool(args[base + 3].as_scalar()?, "hi")?;
        let anti = as_bool(args[base + 4].as_scalar()?, "anti")?;
        let cand = zone_restrict_range(ctx, b, cand, lo, hi, li, hi_incl, anti);
        let (c, threads) =
            gdk::par::rangeselect(b, cand.as_deref(), lo, hi, li, hi_incl, anti, &ctx.par)?;
        ctx.note_threads(threads);
        Ok(vec![MalValue::cand(c)])
    });

    // algebra.selectnonnil(b [, cand]) :cand
    r.register("algebra", "selectnonnil", |args, _ctx| {
        let b = args
            .first()
            .ok_or_else(|| MalError::msg("selectnonnil: missing BAT"))?
            .as_bat()?;
        let cand = opt_cand(args, 1)?;
        Ok(vec![MalValue::cand(select::select_non_nil(
            b,
            cand.as_deref(),
        ))])
    });

    // algebra.selectnil(b [, cand]) :cand
    r.register("algebra", "selectnil", |args, _ctx| {
        let b = args
            .first()
            .ok_or_else(|| MalError::msg("selectnil: missing BAT"))?
            .as_bat()?;
        let cand = opt_cand(args, 1)?;
        Ok(vec![MalValue::cand(select::select_nil(b, cand.as_deref()))])
    });

    // algebra.maskselect(mask:bat[bit] [, cand]) :cand — bit mask to candidates
    r.register("algebra", "maskselect", |args, _ctx| {
        let m = args
            .first()
            .ok_or_else(|| MalError::msg("maskselect: missing mask"))?
            .as_bat()?;
        let cand = opt_cand(args, 1)?;
        Ok(vec![MalValue::cand(select::mask_to_cands(
            m,
            cand.as_deref(),
        )?)])
    });

    // algebra.selectproject(b, [cand,] val, op:str, payload) :bat — fused
    // thetaselect + projection: the candidate list is never materialised.
    // Emitted by the optimizer's select→project fusion pass.
    r.register("algebra", "selectproject", |args, ctx| {
        let b = args
            .first()
            .ok_or_else(|| MalError::msg("selectproject: missing BAT"))?
            .as_bat()?;
        let (cand, val_i) = if args.len() == 5 {
            (opt_cand(args, 1)?, 2)
        } else if args.len() == 4 {
            (None, 1)
        } else {
            return Err(MalError::msg("selectproject takes 4 or 5 arguments"));
        };
        let val = args[val_i].as_scalar()?;
        let Value::Str(op) = args[val_i + 1].as_scalar()? else {
            return Err(MalError::msg("selectproject operator must be a string"));
        };
        let op = cmp_from_str(op)?;
        let payload = args[val_i + 2].as_bat()?;
        let cand = zone_restrict_theta(ctx, b, cand, val, op);
        let (out, threads) =
            gdk::par::theta_select_project(b, cand.as_deref(), val, op, payload, &ctx.par)?;
        ctx.note_threads(threads);
        // The unfused pair would have materialised one candidate list of
        // the qualifying oids.
        ctx.note_avoided(1, out.len() * std::mem::size_of::<gdk::Oid>());
        Ok(vec![MalValue::bat(out)])
    });

    // algebra.projection(cand|oidbat, b) :bat
    r.register("algebra", "projection", |args, ctx| {
        if args.len() != 2 {
            return Err(MalError::msg("projection takes 2 arguments"));
        }
        let b = args[1].as_bat()?;
        match &args[0] {
            MalValue::Cand(c) => {
                let (p, threads) = gdk::par::project(c, b, &ctx.par)?;
                ctx.note_threads(threads);
                Ok(vec![MalValue::bat(p)])
            }
            MalValue::Bat(oids) => Ok(vec![MalValue::bat(project::project_oids(oids, b)?)]),
            other => Err(MalError::msg(format!(
                "projection head must be candidates or oid BAT, got {}",
                other.kind()
            ))),
        }
    });

    // algebra.join(l, r [, lcand, rcand]) :(bat[oid], bat[oid])
    r.register("algebra", "join", |args, _ctx| {
        let l = args
            .first()
            .ok_or_else(|| MalError::msg("join: missing left"))?
            .as_bat()?;
        let rr = args
            .get(1)
            .ok_or_else(|| MalError::msg("join: missing right"))?
            .as_bat()?;
        let lc = opt_cand(args, 2)?;
        let rc = opt_cand(args, 3)?;
        let j = join::hashjoin(l, rr, lc.as_deref(), rc.as_deref())?;
        Ok(vec![
            MalValue::bat(Bat::from_oids(j.left)),
            MalValue::bat(Bat::from_oids(j.right)),
        ])
    });

    // algebra.joinn(l1, r1, l2, r2, …) :(bat[oid], bat[oid]) — multi-key
    // equi-join on aligned (left, right) key pairs.
    r.register("algebra", "joinn", |args, _ctx| {
        if args.is_empty() || args.len() % 2 != 0 {
            return Err(MalError::msg("joinn takes (lkey, rkey) pairs"));
        }
        let k = args.len() / 2;
        let mut lkeys = Vec::with_capacity(k);
        let mut rkeys = Vec::with_capacity(k);
        for i in 0..k {
            lkeys.push(args[2 * i].as_bat()?.as_ref());
            rkeys.push(args[2 * i + 1].as_bat()?.as_ref());
        }
        let j = join::hashjoin_multi(&lkeys, &rkeys)?;
        Ok(vec![
            MalValue::bat(Bat::from_oids(j.left)),
            MalValue::bat(Bat::from_oids(j.right)),
        ])
    });

    // algebra.leftjoin(l, r [, lcand, rcand])
    r.register("algebra", "leftjoin", |args, _ctx| {
        let l = args
            .first()
            .ok_or_else(|| MalError::msg("leftjoin: missing left"))?
            .as_bat()?;
        let rr = args
            .get(1)
            .ok_or_else(|| MalError::msg("leftjoin: missing right"))?
            .as_bat()?;
        let lc = opt_cand(args, 2)?;
        let rc = opt_cand(args, 3)?;
        let j = join::leftjoin(l, rr, lc.as_deref(), rc.as_deref())?;
        Ok(vec![
            MalValue::bat(Bat::from_oids(j.left)),
            MalValue::bat(Bat::from_oids(j.right)),
        ])
    });

    // algebra.semijoin(l, r [, lcand, rcand]) :cand
    r.register("algebra", "semijoin", |args, _ctx| {
        let l = args
            .first()
            .ok_or_else(|| MalError::msg("semijoin: missing left"))?
            .as_bat()?;
        let rr = args
            .get(1)
            .ok_or_else(|| MalError::msg("semijoin: missing right"))?
            .as_bat()?;
        let lc = opt_cand(args, 2)?;
        let rc = opt_cand(args, 3)?;
        let c = join::semijoin(l, rr, lc.as_deref(), rc.as_deref())?;
        Ok(vec![MalValue::cand(c)])
    });

    // algebra.crossproduct(l, r [, lcand, rcand]) :(bat[oid], bat[oid])
    r.register("algebra", "crossproduct", |args, _ctx| {
        let l = args
            .first()
            .ok_or_else(|| MalError::msg("crossproduct: missing left"))?
            .as_bat()?;
        let rr = args
            .get(1)
            .ok_or_else(|| MalError::msg("crossproduct: missing right"))?
            .as_bat()?;
        let lc = opt_cand(args, 2)?;
        let rc = opt_cand(args, 3)?;
        let j = join::cross(l.len(), rr.len(), lc.as_deref(), rc.as_deref())?;
        Ok(vec![
            MalValue::bat(Bat::from_oids(j.left)),
            MalValue::bat(Bat::from_oids(j.right)),
        ])
    });

    // algebra.slice(b, lo:lng, hi:lng) :bat  (positions [lo, hi))
    r.register("algebra", "slice", |args, _ctx| {
        let b = args
            .first()
            .ok_or_else(|| MalError::msg("slice: missing BAT"))?
            .as_bat()?;
        let lo = args
            .get(1)
            .ok_or_else(|| MalError::msg("slice: missing lo"))?
            .as_scalar()?
            .as_i64()
            .ok_or_else(|| MalError::msg("slice lo must be integral"))?;
        let hi = args
            .get(2)
            .ok_or_else(|| MalError::msg("slice: missing hi"))?
            .as_scalar()?
            .as_i64()
            .ok_or_else(|| MalError::msg("slice hi must be integral"))?;
        let lo = usize::try_from(lo).map_err(|_| MalError::msg("slice lo must be >= 0"))?;
        let hi = usize::try_from(hi).map_err(|_| MalError::msg("slice hi must be >= 0"))?;
        Ok(vec![MalValue::bat(project::slice(b, lo, hi)?)])
    });

    // algebra.sort(b, desc:bit, nils_last:bit) :(bat, bat[oid] permutation)
    r.register("algebra", "sort", |args, _ctx| {
        let b = args
            .first()
            .ok_or_else(|| MalError::msg("sort: missing BAT"))?
            .as_bat()?;
        let desc = as_bool(
            args.get(1)
                .ok_or_else(|| MalError::msg("sort: missing desc flag"))?
                .as_scalar()?,
            "desc",
        )?;
        let nils_last = as_bool(
            args.get(2)
                .ok_or_else(|| MalError::msg("sort: missing nils_last flag"))?
                .as_scalar()?,
            "nils_last",
        )?;
        let perm = sort::sort_perm(
            b.len(),
            &[sort::SortKey {
                bat: b,
                desc,
                nils_last,
            }],
        )?;
        let sorted = sort::apply_perm(b, &perm)?;
        let perm_bat = Bat::from_oids(perm.into_iter().map(|p| p as gdk::Oid).collect());
        Ok(vec![MalValue::bat(sorted), MalValue::bat(perm_bat)])
    });

    // algebra.sortperm(key1, desc1:bit, key2, desc2, …) :bat[oid] — the
    // permutation ordering rows by the keys, most significant first
    // (ORDER BY kernel; nils sort first ascending, MonetDB-style).
    r.register("algebra", "sortperm", |args, _ctx| {
        if args.is_empty() || args.len() % 2 != 0 {
            return Err(MalError::msg("sortperm takes (key, desc) pairs"));
        }
        let nkeys = args.len() / 2;
        let mut keys = Vec::with_capacity(nkeys);
        for i in 0..nkeys {
            let bat = args[2 * i].as_bat()?;
            let desc = args[2 * i + 1]
                .as_scalar()?
                .as_bool()
                .ok_or_else(|| MalError::msg("sortperm desc flag must be boolean"))?;
            keys.push((bat, desc));
        }
        let len = keys[0].0.len();
        for (b, _) in &keys {
            if b.len() != len {
                return Err(MalError::msg("sortperm keys misaligned"));
            }
        }
        let sort_keys: Vec<sort::SortKey<'_>> = keys
            .iter()
            .map(|(b, desc)| sort::SortKey {
                bat: b,
                desc: *desc,
                nils_last: false,
            })
            .collect();
        let perm = sort::sort_perm(len, &sort_keys)?;
        Ok(vec![MalValue::bat(Bat::from_oids(
            perm.into_iter().map(|p| p as gdk::Oid).collect(),
        ))])
    });

    // algebra.count(b) — tuple count (including nils)
    r.register("algebra", "count", |args, _ctx| {
        let b = args
            .first()
            .ok_or_else(|| MalError::msg("count: missing BAT"))?
            .as_bat()?;
        Ok(vec![MalValue::Scalar(Value::Lng(b.len() as i64))])
    });

    // algebra.candlist(b:bat[oid]) — turn a sorted oid BAT into candidates
    r.register("algebra", "candlist", |args, _ctx| {
        let b = args
            .first()
            .ok_or_else(|| MalError::msg("candlist: missing BAT"))?
            .as_bat()?;
        let oids = b.as_oids().map(<[gdk::Oid]>::to_vec).unwrap_or_else(|| {
            b.iter_values()
                .filter_map(|v| v.as_i64().map(|x| x as gdk::Oid))
                .collect()
        });
        Ok(vec![MalValue::cand(Candidates::from_vec(oids))])
    });

    // algebra.densecand(first:lng, len:lng) — dense candidate range
    r.register("algebra", "densecand", |args, _ctx| {
        let first = args
            .first()
            .ok_or_else(|| MalError::msg("densecand: missing first"))?
            .as_scalar()?
            .as_i64()
            .ok_or_else(|| MalError::msg("densecand first must be integral"))?;
        let len = args
            .get(1)
            .ok_or_else(|| MalError::msg("densecand: missing len"))?
            .as_scalar()?
            .as_i64()
            .ok_or_else(|| MalError::msg("densecand len must be integral"))?;
        Ok(vec![MalValue::cand(Candidates::Dense {
            first: first as gdk::Oid,
            len: len as usize,
        })])
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prims::default_registry;

    fn call(module: &str, f: &str, args: &[MalValue]) -> Result<Vec<MalValue>> {
        let r = default_registry();
        let p = r.lookup(module, f)?;
        p(args, &crate::registry::ExecCtx::serial())
    }

    #[test]
    fn thetaselect_variants() {
        let b = MalValue::bat(Bat::from_ints(vec![3, 1, 4, 1, 5]));
        let out = call(
            "algebra",
            "thetaselect",
            &[
                b.clone(),
                MalValue::Scalar(Value::Int(1)),
                MalValue::Scalar(Value::Str("==".into())),
            ],
        )
        .unwrap();
        assert_eq!(out[0].as_cand().unwrap().to_vec(), vec![1, 3]);

        let cand = MalValue::cand(Candidates::from_vec(vec![0, 1, 2]));
        let out = call(
            "algebra",
            "thetaselect",
            &[
                b,
                cand,
                MalValue::Scalar(Value::Int(1)),
                MalValue::Scalar(Value::Str(">".into())),
            ],
        )
        .unwrap();
        assert_eq!(out[0].as_cand().unwrap().to_vec(), vec![0, 2]);
    }

    #[test]
    fn projection_and_join() {
        let b = MalValue::bat(Bat::from_ints(vec![10, 20, 30]));
        let c = MalValue::cand(Candidates::from_vec(vec![2, 0]));
        // from_vec sorts: [0, 2]
        let out = call("algebra", "projection", &[c, b.clone()]).unwrap();
        assert_eq!(out[0].as_bat().unwrap().as_ints().unwrap(), &[10, 30]);

        let l = MalValue::bat(Bat::from_ints(vec![20, 99]));
        let out = call("algebra", "join", &[l, b]).unwrap();
        assert_eq!(out[0].as_bat().unwrap().as_oids().unwrap(), &[0]);
        assert_eq!(out[1].as_bat().unwrap().as_oids().unwrap(), &[1]);
    }

    #[test]
    fn slice_sort_count() {
        let b = MalValue::bat(Bat::from_ints(vec![3, 1, 2]));
        let out = call(
            "algebra",
            "slice",
            &[
                b.clone(),
                MalValue::Scalar(Value::Lng(1)),
                MalValue::Scalar(Value::Lng(3)),
            ],
        )
        .unwrap();
        assert_eq!(out[0].as_bat().unwrap().as_ints().unwrap(), &[1, 2]);

        let out = call(
            "algebra",
            "sort",
            &[
                b.clone(),
                MalValue::Scalar(Value::Bit(false)),
                MalValue::Scalar(Value::Bit(false)),
            ],
        )
        .unwrap();
        assert_eq!(out[0].as_bat().unwrap().as_ints().unwrap(), &[1, 2, 3]);
        assert_eq!(out[1].as_bat().unwrap().as_oids().unwrap(), &[1, 2, 0]);

        let out = call("algebra", "count", &[b]).unwrap();
        assert!(matches!(out[0], MalValue::Scalar(Value::Lng(3))));
    }

    #[test]
    fn maskselect_and_densecand() {
        let m = MalValue::bat(Bat::from_bits(vec![Some(true), Some(false), Some(true)]));
        let out = call("algebra", "maskselect", &[m]).unwrap();
        assert_eq!(out[0].as_cand().unwrap().to_vec(), vec![0, 2]);

        let out = call(
            "algebra",
            "densecand",
            &[
                MalValue::Scalar(Value::Lng(5)),
                MalValue::Scalar(Value::Lng(3)),
            ],
        )
        .unwrap();
        assert_eq!(out[0].as_cand().unwrap().to_vec(), vec![5, 6, 7]);
    }

    #[test]
    fn crossproduct_sizes() {
        let l = MalValue::bat(Bat::from_ints(vec![1, 2]));
        let r2 = MalValue::bat(Bat::from_ints(vec![7, 8, 9]));
        let out = call("algebra", "crossproduct", &[l, r2]).unwrap();
        assert_eq!(out[0].as_bat().unwrap().len(), 6);
    }

    #[test]
    fn bad_arity_is_error() {
        let b = MalValue::bat(Bat::from_ints(vec![1]));
        assert!(call("algebra", "thetaselect", &[b]).is_err());
    }
}
