//! `array.*` — the two MAL primitives the SciQL paper adds (§3):
//!
//! ```text
//! command array.series(start:int, step:int, stop:int, N:int, M:int) :bat[:oid,:int]
//! pattern array.filler(cnt:lng, v:any_1) :bat[:oid,:any_1]
//! ```

use crate::interp::MalValue;
use crate::registry::Registry;
use crate::{MalError, Result};
use gdk::{Bat, Value};

fn arg_i64(args: &[MalValue], i: usize, what: &str) -> Result<i64> {
    args.get(i)
        .ok_or_else(|| MalError::msg(format!("missing argument {i} ({what})")))?
        .as_scalar()?
        .as_i64()
        .ok_or_else(|| MalError::msg(format!("argument {i} ({what}) must be integral")))
}

/// Register the `array` module.
pub fn register(r: &mut Registry) {
    r.register("array", "series", |args, _ctx| {
        if args.len() != 5 {
            return Err(MalError::msg(
                "array.series(start, step, stop, N, M) takes 5 arguments",
            ));
        }
        let start = arg_i64(args, 0, "start")?;
        let step = arg_i64(args, 1, "step")?;
        let stop = arg_i64(args, 2, "stop")?;
        let n = usize::try_from(arg_i64(args, 3, "N")?)
            .map_err(|_| MalError::msg("N must be non-negative"))?;
        let m = usize::try_from(arg_i64(args, 4, "M")?)
            .map_err(|_| MalError::msg("M must be non-negative"))?;
        Ok(vec![MalValue::bat(Bat::series(start, step, stop, n, m)?)])
    });

    r.register("array", "filler", |args, _ctx| {
        if args.len() != 2 {
            return Err(MalError::msg("array.filler(cnt, v) takes 2 arguments"));
        }
        let cnt = usize::try_from(arg_i64(args, 0, "cnt")?)
            .map_err(|_| MalError::msg("cnt must be non-negative"))?;
        let v = args[1].as_scalar()?;
        Ok(vec![MalValue::bat(Bat::filler(cnt, v)?)])
    });

    // array.shift(v, n_0, …, n_{k-1}, d_0, …, d_{k-1}) — positional shift of
    // an attribute BAT laid out in row-major cell order over a k-dimensional
    // array of shape (n_0, …, n_{k-1}). Output position p holds the value at
    // the cell displaced by (d_0, …, d_{k-1}); cells outside the array
    // dimension ranges come out nil, which is exactly the paper's rule that
    // out-of-range cells "are ignored by the aggregation functions".
    r.register("array", "shift", |args, _ctx| {
        if args.len() < 3 || (args.len() - 1) % 2 != 0 {
            return Err(MalError::msg(
                "array.shift(v, sizes…, deltas…) needs 1+2k arguments",
            ));
        }
        let k = (args.len() - 1) / 2;
        let v = args[0].as_bat()?;
        let mut sizes = Vec::with_capacity(k);
        let mut deltas = Vec::with_capacity(k);
        for i in 0..k {
            let n = arg_i64(args, 1 + i, "size")?;
            if n < 0 {
                return Err(MalError::msg("array.shift sizes must be non-negative"));
            }
            sizes.push(n as usize);
            deltas.push(arg_i64(args, 1 + k + i, "delta")?);
        }
        let total: usize = sizes.iter().product();
        if v.len() != total {
            return Err(MalError::msg(format!(
                "array.shift: BAT has {} tuples but shape implies {}",
                v.len(),
                total
            )));
        }
        Ok(vec![MalValue::bat(shift_bat(v, &sizes, &deltas)?)])
    });
}

/// Core of `array.shift`: row-major positional shift with nil padding.
///
/// The hot loop of tiling, so the common tail types take vectorised paths
/// that copy contiguous runs instead of boxing every cell.
pub fn shift_bat(v: &Bat, sizes: &[usize], deltas: &[i64]) -> crate::Result<Bat> {
    use gdk::types::{dbl_nil, INT_NIL, LNG_NIL};
    use gdk::ColumnData;
    match v.data() {
        ColumnData::Int(src) => Ok(Bat::from_ints(shift_typed(src, sizes, deltas, INT_NIL))),
        ColumnData::Lng(src) => Ok(Bat::from_lngs(shift_typed(src, sizes, deltas, LNG_NIL))),
        ColumnData::Dbl(src) => Ok(Bat::from_dbls(shift_typed(src, sizes, deltas, dbl_nil()))),
        _ => shift_generic(v, sizes, deltas),
    }
}

/// Typed shift: for each output cell, the source position is
/// `pos + Σ delta_i * stride_i` when every shifted coordinate stays in
/// range; runs along the innermost dimension are copied as slices.
fn shift_typed<T: Copy>(src: &[T], sizes: &[usize], deltas: &[i64], nil: T) -> Vec<T> {
    let total: usize = sizes.iter().product();
    let mut out = vec![nil; total];
    if total == 0 {
        return out;
    }
    let k = sizes.len();
    let mut strides = vec![1usize; k];
    for i in (0..k.saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * sizes[i + 1];
    }
    // Valid output range per dimension: coord + delta ∈ [0, size).
    let mut lo = vec![0i64; k];
    let mut hi = vec![0i64; k];
    for i in 0..k {
        lo[i] = (-deltas[i]).max(0);
        hi[i] = (sizes[i] as i64 - deltas[i]).min(sizes[i] as i64);
        if lo[i] >= hi[i] {
            return out; // nothing in range
        }
    }
    let flat_delta: i64 = deltas
        .iter()
        .zip(&strides)
        .map(|(&d, &s)| d * s as i64)
        .collect::<Vec<i64>>()
        .iter()
        .sum();
    // Iterate the outer dimensions over their valid windows; copy the
    // innermost run as one slice.
    let inner = k - 1;
    let run_lo = lo[inner] as usize;
    let run_len = (hi[inner] - lo[inner]) as usize;
    let mut coords: Vec<i64> = lo[..inner].to_vec();
    loop {
        let base: usize = coords
            .iter()
            .zip(&strides[..inner])
            .map(|(&c, &s)| c as usize * s)
            .sum::<usize>()
            + run_lo;
        let src_base = (base as i64 + flat_delta) as usize;
        out[base..base + run_len].copy_from_slice(&src[src_base..src_base + run_len]);
        // Odometer over the outer dims within [lo, hi).
        let mut i = inner;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            coords[i] += 1;
            if coords[i] < hi[i] {
                break;
            }
            coords[i] = lo[i];
        }
    }
}

fn shift_generic(v: &Bat, sizes: &[usize], deltas: &[i64]) -> crate::Result<Bat> {
    let total: usize = sizes.iter().product();
    let mut out = Bat::with_capacity(v.tail_type(), total);
    let mut strides = vec![1usize; sizes.len()];
    for i in (0..sizes.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * sizes[i + 1];
    }
    let mut coords = vec![0usize; sizes.len()];
    for _pos in 0..total {
        // Source coordinates = coords + deltas.
        let mut src = 0usize;
        let mut ok = true;
        for (i, &c) in coords.iter().enumerate() {
            let s = c as i64 + deltas[i];
            if s < 0 || s >= sizes[i] as i64 {
                ok = false;
                break;
            }
            src += s as usize * strides[i];
        }
        let val = if ok { v.get(src) } else { Value::Null };
        out.push(&val).map_err(crate::MalError::Gdk)?;
        // Increment odometer.
        for i in (0..coords.len()).rev() {
            coords[i] += 1;
            if coords[i] < sizes[i] {
                break;
            }
            coords[i] = 0;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prims::default_registry;
    use gdk::Value;

    #[test]
    fn series_primitive() {
        let r = default_registry();
        let f = r.lookup("array", "series").unwrap();
        let args: Vec<MalValue> = [0, 1, 4, 1, 4]
            .iter()
            .map(|&v| MalValue::Scalar(Value::Int(v)))
            .collect();
        let out = f(&args, &crate::registry::ExecCtx::serial()).unwrap();
        let b = out[0].as_bat().unwrap();
        assert_eq!(
            b.as_ints().unwrap(),
            &[0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3]
        );
    }

    #[test]
    fn filler_primitive() {
        let r = default_registry();
        let f = r.lookup("array", "filler").unwrap();
        let out = f(
            &[
                MalValue::Scalar(Value::Lng(3)),
                MalValue::Scalar(Value::Dbl(0.5)),
            ],
            &crate::registry::ExecCtx::serial(),
        )
        .unwrap();
        assert_eq!(
            out[0].as_bat().unwrap().as_dbls().unwrap(),
            &[0.5, 0.5, 0.5]
        );
    }

    #[test]
    fn shift_2d_neighbours() {
        // 3×3 array 0..9 in row-major order; shift by (-1, 0) = value of the
        // upper neighbour (x-1), nil on the first row.
        let v = Bat::from_ints((0..9).collect());
        let s = shift_bat(&v, &[3, 3], &[-1, 0]).unwrap();
        assert_eq!(
            s.to_values(),
            vec![
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Int(0),
                Value::Int(1),
                Value::Int(2),
                Value::Int(3),
                Value::Int(4),
                Value::Int(5),
            ]
        );
        // shift by (0, 1): right neighbour, nil on the last column.
        let s = shift_bat(&v, &[3, 3], &[0, 1]).unwrap();
        assert_eq!(
            s.to_values(),
            vec![
                Value::Int(1),
                Value::Int(2),
                Value::Null,
                Value::Int(4),
                Value::Int(5),
                Value::Null,
                Value::Int(7),
                Value::Int(8),
                Value::Null,
            ]
        );
    }

    #[test]
    fn shift_identity_and_1d() {
        let v = Bat::from_ints(vec![5, 6, 7]);
        let s = shift_bat(&v, &[3], &[0]).unwrap();
        assert_eq!(s.to_values(), v.to_values());
        let s = shift_bat(&v, &[3], &[2]).unwrap();
        assert_eq!(s.to_values(), vec![Value::Int(7), Value::Null, Value::Null]);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(48))]

        /// The vectorised typed shift must agree with the generic boxed
        /// path on arbitrary shapes, deltas and nil patterns.
        #[test]
        fn typed_shift_matches_generic(
            w in 1usize..6,
            h in 1usize..6,
            d in 1usize..4,
            dx in -6i64..6,
            dy in -6i64..6,
            dz in -4i64..4,
            nil_mask in proptest::collection::vec(proptest::bool::weighted(0.2), 0..200),
        ) {
            let total = w * h * d;
            let vals: Vec<Option<i32>> = (0..total)
                .map(|i| {
                    if nil_mask.get(i).copied().unwrap_or(false) {
                        None
                    } else {
                        Some(i as i32)
                    }
                })
                .collect();
            let b = Bat::from_opt_ints(vals);
            let sizes = [w, h, d];
            let deltas = [dx, dy, dz];
            let fast = shift_bat(&b, &sizes, &deltas).unwrap();
            let slow = shift_generic(&b, &sizes, &deltas).unwrap();
            proptest::prop_assert_eq!(fast.to_values(), slow.to_values());
        }
    }

    #[test]
    fn shift_primitive_checks_shape() {
        let r = default_registry();
        let f = r.lookup("array", "shift").unwrap();
        let v = MalValue::bat(Bat::from_ints(vec![1, 2, 3]));
        // shape 2×2 ≠ 3 tuples
        let args = [
            v,
            MalValue::Scalar(Value::Int(2)),
            MalValue::Scalar(Value::Int(2)),
            MalValue::Scalar(Value::Int(0)),
            MalValue::Scalar(Value::Int(0)),
        ];
        assert!(f(&args, &crate::registry::ExecCtx::serial()).is_err());
    }

    #[test]
    fn arity_errors() {
        let r = default_registry();
        let f = r.lookup("array", "series").unwrap();
        assert!(f(
            &[MalValue::Scalar(Value::Int(0))],
            &crate::registry::ExecCtx::serial()
        )
        .is_err());
        let f = r.lookup("array", "filler").unwrap();
        assert!(f(
            &[
                MalValue::Scalar(Value::Lng(-1)),
                MalValue::Scalar(Value::Int(0))
            ],
            &crate::registry::ExecCtx::serial()
        )
        .is_err());
    }
}
