//! `bat.*` and `language.*` — BAT construction, materialisation and the
//! alias pseudo-instruction used by the optimizer pipeline.

use crate::interp::MalValue;
use crate::registry::Registry;
use crate::MalError;
use gdk::{Bat, ScalarType, Value};

/// Register `bat` and `language`.
pub fn register(r: &mut Registry) {
    // bat.new(type:str) — empty BAT of the named type
    r.register("bat", "new", |args, _ctx| {
        let ty = match args.first() {
            Some(v) => match v.as_scalar()? {
                Value::Str(s) => ScalarType::from_sql_name(s)
                    .or(match s.as_str() {
                        "int" => Some(ScalarType::Int),
                        "lng" => Some(ScalarType::Lng),
                        "dbl" => Some(ScalarType::Dbl),
                        "str" => Some(ScalarType::Str),
                        "bit" => Some(ScalarType::Bit),
                        "oid" => Some(ScalarType::OidT),
                        _ => None,
                    })
                    .ok_or_else(|| MalError::msg(format!("unknown type name {s:?}")))?,
                other => {
                    return Err(MalError::msg(format!(
                        "bat.new type must be a string, got {other}"
                    )))
                }
            },
            None => return Err(MalError::msg("bat.new takes a type name")),
        };
        Ok(vec![MalValue::bat(Bat::new(ty))])
    });

    // bat.dense(seq:lng, len:lng) — void BAT
    r.register("bat", "dense", |args, _ctx| {
        let seq = args
            .first()
            .ok_or_else(|| MalError::msg("dense: missing seq"))?
            .as_scalar()?
            .as_i64()
            .ok_or_else(|| MalError::msg("dense seq must be integral"))?;
        let len = args
            .get(1)
            .ok_or_else(|| MalError::msg("dense: missing len"))?
            .as_scalar()?
            .as_i64()
            .ok_or_else(|| MalError::msg("dense len must be integral"))?;
        let seq = u64::try_from(seq).map_err(|_| MalError::msg("dense seq must be >= 0"))?;
        let len = usize::try_from(len).map_err(|_| MalError::msg("dense len must be >= 0"))?;
        Ok(vec![MalValue::bat(Bat::dense(seq, len))])
    });

    // bat.materialise(b) — void → explicit oids
    r.register("bat", "materialise", |args, _ctx| {
        let b = args
            .first()
            .ok_or_else(|| MalError::msg("materialise: missing BAT"))?
            .as_bat()?;
        Ok(vec![MalValue::bat(b.materialise())])
    });

    // bat.single(v) — one-tuple BAT holding a scalar
    r.register("bat", "single", |args, _ctx| {
        let v = args
            .first()
            .ok_or_else(|| MalError::msg("single: missing value"))?
            .as_scalar()?;
        let ty = v.scalar_type().unwrap_or(ScalarType::Int);
        let mut b = Bat::with_capacity(ty, 1);
        b.push(v).map_err(MalError::Gdk)?;
        Ok(vec![MalValue::bat(b)])
    });

    // language.pass(v) — identity (alias), used by optimizer rewrites
    r.register("language", "pass", |args, _ctx| {
        args.first()
            .cloned()
            .map(|v| vec![v])
            .ok_or_else(|| MalError::msg("pass: missing argument"))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prims::default_registry;

    #[test]
    fn new_and_single() {
        let r = default_registry();
        let out = r.lookup("bat", "new").unwrap()(
            &[MalValue::Scalar(Value::Str("int".into()))],
            &crate::registry::ExecCtx::serial(),
        )
        .unwrap();
        assert_eq!(out[0].as_bat().unwrap().len(), 0);
        assert_eq!(out[0].as_bat().unwrap().tail_type(), ScalarType::Int);

        let out = r.lookup("bat", "single").unwrap()(
            &[MalValue::Scalar(Value::Dbl(1.5))],
            &crate::registry::ExecCtx::serial(),
        )
        .unwrap();
        assert_eq!(out[0].as_bat().unwrap().as_dbls().unwrap(), &[1.5]);
    }

    #[test]
    fn dense_and_materialise() {
        let r = default_registry();
        let out = r.lookup("bat", "dense").unwrap()(
            &[
                MalValue::Scalar(Value::Lng(4)),
                MalValue::Scalar(Value::Lng(3)),
            ],
            &crate::registry::ExecCtx::serial(),
        )
        .unwrap();
        let m = r.lookup("bat", "materialise").unwrap()(&out, &crate::registry::ExecCtx::serial())
            .unwrap();
        assert_eq!(m[0].as_bat().unwrap().as_oids().unwrap(), &[4, 5, 6]);
    }

    #[test]
    fn pass_is_identity() {
        let r = default_registry();
        let out = r.lookup("language", "pass").unwrap()(
            &[MalValue::Scalar(Value::Int(9))],
            &crate::registry::ExecCtx::serial(),
        )
        .unwrap();
        assert!(matches!(out[0], MalValue::Scalar(Value::Int(9))));
    }

    #[test]
    fn unknown_type_name_errors() {
        let r = default_registry();
        assert!(r.lookup("bat", "new").unwrap()(
            &[MalValue::Scalar(Value::Str("quux".into()))],
            &crate::registry::ExecCtx::serial()
        )
        .is_err());
    }
}
