//! `group.*` and `aggr.*` — grouping and grouped aggregation.

use crate::interp::MalValue;
use crate::registry::Registry;
use crate::MalError;
use gdk::aggregate::AggFunc;

fn register_subagg(r: &mut Registry, name: &'static str, func: AggFunc) {
    // aggr.subX(vals:bat, groups:grp) :bat — one tuple per group.
    r.register("aggr", name, move |args, ctx| {
        if args.len() != 2 {
            return Err(MalError::msg("grouped aggregate takes (vals, groups)"));
        }
        let vals = args[0].as_bat()?;
        let g = args[1].as_grp()?;
        let (out, threads) = gdk::par::grouped(func, vals, g, &ctx.par)?;
        ctx.note_threads(threads);
        Ok(vec![MalValue::bat(out)])
    });
}

fn register_scalaragg(r: &mut Registry, name: &'static str, func: AggFunc) {
    // aggr.X(vals:bat [, cand]) :scalar — with a candidate list the
    // aggregate runs over the candidate positions directly (the
    // optimizer's candidate-propagation pass rewrites
    // `aggr.X(projection(cand, vals))` into this form, skipping the
    // projected intermediate).
    r.register("aggr", name, move |args, ctx| {
        let vals = args
            .first()
            .ok_or_else(|| MalError::msg("scalar aggregate takes (vals [, cand])"))?
            .as_bat()?;
        match args.len() {
            1 => {
                let (out, threads) = gdk::par::scalar(func, vals, &ctx.par)?;
                ctx.note_threads(threads);
                Ok(vec![MalValue::Scalar(out)])
            }
            2 => {
                let cand = args[1].as_cand()?;
                let (out, threads) = gdk::par::project_aggregate(func, vals, cand, &ctx.par)?;
                ctx.note_threads(threads);
                ctx.note_avoided(1, cand.len() * gdk::fused::elem_width(vals.tail_type()));
                Ok(vec![MalValue::Scalar(out)])
            }
            _ => Err(MalError::msg("scalar aggregate takes (vals [, cand])")),
        }
    });
}

/// `aggr.selectagg(func:str, payload, b, [cand,] val, op:str)` :scalar —
/// the fully fused select→project→aggregate: neither the candidate list
/// nor the projected payload BAT is materialised. Emitted by the
/// optimizer's select→aggregate fusion pass.
fn register_selectagg(r: &mut Registry) {
    r.register("aggr", "selectagg", |args, ctx| {
        let Some(MalValue::Scalar(gdk::Value::Str(fname))) = args.first() else {
            return Err(MalError::msg(
                "selectagg: first argument names the function",
            ));
        };
        let func = AggFunc::from_name(fname)
            .ok_or_else(|| MalError::msg(format!("selectagg: unknown aggregate {fname:?}")))?;
        let payload = args
            .get(1)
            .ok_or_else(|| MalError::msg("selectagg: missing payload"))?
            .as_bat()?;
        let b = args
            .get(2)
            .ok_or_else(|| MalError::msg("selectagg: missing selection BAT"))?
            .as_bat()?;
        let (cand, val_i) = if args.len() == 6 {
            (
                match &args[3] {
                    MalValue::Cand(c) => Some(c.clone()),
                    other => {
                        return Err(MalError::msg(format!(
                            "selectagg candidate must be a candidate list, got {}",
                            other.kind()
                        )))
                    }
                },
                4,
            )
        } else if args.len() == 5 {
            (None, 3)
        } else {
            return Err(MalError::msg("selectagg takes 5 or 6 arguments"));
        };
        let val = args[val_i].as_scalar()?;
        let gdk::Value::Str(opname) = args[val_i + 1].as_scalar()? else {
            return Err(MalError::msg("selectagg operator must be a string"));
        };
        let op = crate::prims::algebra::cmp_from_str(opname)?;
        let cand = crate::prims::algebra::zone_restrict_theta(ctx, b, cand, val, op);
        let (out, threads, selected) =
            gdk::par::theta_select_aggregate(func, payload, b, cand.as_deref(), val, op, &ctx.par)?;
        ctx.note_threads(threads);
        // The unfused chain would have materialised the candidate list
        // plus the projected payload BAT.
        ctx.note_avoided(
            2,
            selected
                * (std::mem::size_of::<gdk::Oid>() + gdk::fused::elem_width(payload.tail_type())),
        );
        Ok(vec![MalValue::Scalar(out)])
    });
}

/// Register `group` and `aggr`.
pub fn register(r: &mut Registry) {
    // group.group(b [, cand]) :grp
    r.register("group", "group", |args, ctx| {
        let b = args
            .first()
            .ok_or_else(|| MalError::msg("group: missing BAT"))?
            .as_bat()?;
        let cand = match args.get(1) {
            Some(MalValue::Cand(c)) => Some(c.clone()),
            None => None,
            Some(other) => {
                return Err(MalError::msg(format!(
                    "group candidate must be a candidate list, got {}",
                    other.kind()
                )))
            }
        };
        let (g, threads) = gdk::par::group_by(b, cand.as_deref(), None, &ctx.par)?;
        ctx.note_threads(threads);
        Ok(vec![MalValue::grp(g)])
    });

    // group.subgroup(b, prev:grp [, cand]) :grp — refine a grouping
    r.register("group", "subgroup", |args, ctx| {
        let b = args
            .first()
            .ok_or_else(|| MalError::msg("subgroup: missing BAT"))?
            .as_bat()?;
        let prev = args
            .get(1)
            .ok_or_else(|| MalError::msg("subgroup: missing previous grouping"))?
            .as_grp()?;
        let cand = match args.get(2) {
            Some(MalValue::Cand(c)) => Some(c.clone()),
            None => None,
            Some(other) => {
                return Err(MalError::msg(format!(
                    "subgroup candidate must be a candidate list, got {}",
                    other.kind()
                )))
            }
        };
        let (g, threads) = gdk::par::group_by(b, cand.as_deref(), Some(prev), &ctx.par)?;
        ctx.note_threads(threads);
        Ok(vec![MalValue::grp(g)])
    });

    // group.extents(g:grp) :bat[oid] — representative oid per group
    r.register("group", "extents", |args, _ctx| {
        let g = args
            .first()
            .ok_or_else(|| MalError::msg("extents: missing grouping"))?
            .as_grp()?;
        Ok(vec![MalValue::bat(gdk::Bat::from_oids(g.extents.clone()))])
    });

    // group.extentcand(g:grp) :cand — extents as candidate list
    r.register("group", "extentcand", |args, _ctx| {
        let g = args
            .first()
            .ok_or_else(|| MalError::msg("extentcand: missing grouping"))?
            .as_grp()?;
        Ok(vec![MalValue::cand(gdk::Candidates::from_vec(
            g.extents.clone(),
        ))])
    });

    register_subagg(r, "subsum", AggFunc::Sum);
    register_subagg(r, "subavg", AggFunc::Avg);
    register_subagg(r, "subcount", AggFunc::Count);
    register_subagg(r, "submin", AggFunc::Min);
    register_subagg(r, "submax", AggFunc::Max);
    register_scalaragg(r, "sum", AggFunc::Sum);
    register_scalaragg(r, "avg", AggFunc::Avg);
    register_scalaragg(r, "count", AggFunc::Count);
    register_scalaragg(r, "min", AggFunc::Min);
    register_scalaragg(r, "max", AggFunc::Max);
    register_selectagg(r);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prims::default_registry;
    use gdk::{Bat, Value};

    #[test]
    fn group_then_aggregate() {
        let r = default_registry();
        let keys = MalValue::bat(Bat::from_ints(vec![1, 2, 1]));
        let g = r.lookup("group", "group").unwrap()(&[keys], &crate::registry::ExecCtx::serial())
            .unwrap();
        let vals = MalValue::bat(Bat::from_ints(vec![10, 20, 30]));
        let s = r.lookup("aggr", "subsum").unwrap()(
            &[vals, g[0].clone()],
            &crate::registry::ExecCtx::serial(),
        )
        .unwrap();
        assert_eq!(s[0].as_bat().unwrap().as_lngs().unwrap(), &[40, 20]);
        let ext = r.lookup("group", "extents").unwrap()(
            &[g[0].clone()],
            &crate::registry::ExecCtx::serial(),
        )
        .unwrap();
        assert_eq!(ext[0].as_bat().unwrap().as_oids().unwrap(), &[0, 1]);
    }

    #[test]
    fn subgroup_refines() {
        let r = default_registry();
        let a = MalValue::bat(Bat::from_ints(vec![1, 1, 2]));
        let b = MalValue::bat(Bat::from_ints(vec![9, 8, 9]));
        let g1 =
            r.lookup("group", "group").unwrap()(&[a], &crate::registry::ExecCtx::serial()).unwrap();
        let g2 = r.lookup("group", "subgroup").unwrap()(
            &[b, g1[0].clone()],
            &crate::registry::ExecCtx::serial(),
        )
        .unwrap();
        assert_eq!(g2[0].as_grp().unwrap().ngroups, 3);
    }

    #[test]
    fn scalar_aggregates() {
        let r = default_registry();
        let vals = MalValue::bat(Bat::from_opt_ints(vec![Some(2), None, Some(4)]));
        let out = r.lookup("aggr", "avg").unwrap()(
            std::slice::from_ref(&vals),
            &crate::registry::ExecCtx::serial(),
        )
        .unwrap();
        assert!(matches!(out[0], MalValue::Scalar(Value::Dbl(v)) if v == 3.0));
        let out = r.lookup("aggr", "count").unwrap()(&[vals], &crate::registry::ExecCtx::serial())
            .unwrap();
        assert!(matches!(out[0], MalValue::Scalar(Value::Lng(2))));
    }
}
