//! The standard primitive library.
//!
//! Modules mirror MonetDB's MAL module layout:
//! * `array` — the two primitives the paper introduces (`series`, `filler`);
//! * `algebra` — selections, projections, joins, slicing, sorting;
//! * `group` / `aggr` — grouping and grouped aggregation;
//! * `batcalc` / `calc` — element-wise and scalar arithmetic;
//! * `bat` — BAT construction and (side-effecting) updates.

pub(crate) mod algebra;
mod array;
mod batcalc;
mod batmod;
mod grouping;

use crate::registry::Registry;

/// Build a registry containing the full standard library.
pub fn default_registry() -> Registry {
    let mut r = Registry::new();
    array::register(&mut r);
    algebra::register(&mut r);
    batcalc::register(&mut r);
    batmod::register(&mut r);
    grouping::register(&mut r);
    r
}

#[cfg(test)]
mod tests {
    #[test]
    fn registry_is_populated() {
        let r = super::default_registry();
        assert!(
            r.len() > 30,
            "expected a rich standard library, got {}",
            r.len()
        );
        assert!(r.lookup("array", "series").is_ok());
        assert!(r.lookup("array", "filler").is_ok());
        assert!(r.lookup("algebra", "thetaselect").is_ok());
        assert!(r.lookup("aggr", "subavg").is_ok());
        assert!(r.lookup("batcalc", "ifthenelse").is_ok());
    }
}
