//! `batcalc.*` and `calc.*` — element-wise and scalar arithmetic.
//!
//! Every binary operator accepts any mix of BAT and scalar operands
//! (`batcalc` broadcasts scalars), so the code generator does not need
//! distinct spellings.

use crate::interp::MalValue;
use crate::registry::Registry;
use crate::{MalError, Result};
use gdk::arith::{self, BinOp, CmpOp, Operand};
use gdk::{Bat, ScalarType, Value};

fn operand(v: &MalValue) -> Result<Operand<'_>> {
    match v {
        MalValue::Bat(b) => Ok(Operand::Col(b)),
        MalValue::Scalar(s) => Ok(Operand::Scalar(s)),
        other => Err(MalError::msg(format!(
            "arithmetic operand must be BAT or scalar, got {}",
            other.kind()
        ))),
    }
}

fn bin_args(args: &[MalValue]) -> Result<(Operand<'_>, Operand<'_>)> {
    if args.len() != 2 {
        return Err(MalError::msg("binary operator takes 2 arguments"));
    }
    Ok((operand(&args[0])?, operand(&args[1])?))
}

fn both_scalar(args: &[MalValue]) -> Option<(&Value, &Value)> {
    match (args.first(), args.get(1)) {
        (Some(MalValue::Scalar(a)), Some(MalValue::Scalar(b))) => Some((a, b)),
        _ => None,
    }
}

fn register_binop(r: &mut Registry, name: &'static str, op: BinOp) {
    r.register("batcalc", name, move |args, ctx| {
        if let Some((a, b)) = both_scalar(args) {
            return Ok(vec![MalValue::Scalar(arith::scalar_binop(op, a, b)?)]);
        }
        let (a, b) = bin_args(args)?;
        let (out, threads) = gdk::par::binop(op, a, b, &ctx.par)?;
        ctx.note_threads(threads);
        Ok(vec![MalValue::bat(out)])
    });
}

fn register_cmp(r: &mut Registry, name: &'static str, op: CmpOp) {
    r.register("batcalc", name, move |args, ctx| {
        if let Some((a, b)) = both_scalar(args) {
            let v = match a.sql_cmp(b) {
                None => Value::Null,
                Some(ord) => Value::Bit(match op {
                    CmpOp::Eq => ord == std::cmp::Ordering::Equal,
                    CmpOp::Ne => ord != std::cmp::Ordering::Equal,
                    CmpOp::Lt => ord == std::cmp::Ordering::Less,
                    CmpOp::Le => ord != std::cmp::Ordering::Greater,
                    CmpOp::Gt => ord == std::cmp::Ordering::Greater,
                    CmpOp::Ge => ord != std::cmp::Ordering::Less,
                }),
            };
            return Ok(vec![MalValue::Scalar(v)]);
        }
        let (a, b) = bin_args(args)?;
        let (out, threads) = gdk::par::cmpop(op, a, b, &ctx.par)?;
        ctx.note_threads(threads);
        Ok(vec![MalValue::bat(out)])
    });
}

fn register_cast(r: &mut Registry, name: &'static str, to: ScalarType) {
    r.register("batcalc", name, move |args, _ctx| match args.first() {
        Some(MalValue::Bat(b)) => Ok(vec![MalValue::bat(arith::cast_bat(b, to)?)]),
        Some(MalValue::Scalar(s)) => {
            let v = s
                .cast(to)
                .ok_or_else(|| MalError::msg(format!("cannot cast {s} to {to}")))?;
            Ok(vec![MalValue::Scalar(v)])
        }
        _ => Err(MalError::msg("cast takes one BAT or scalar argument")),
    });
}

/// Register the `batcalc` module.
pub fn register(r: &mut Registry) {
    register_binop(r, "add", BinOp::Add);
    register_binop(r, "sub", BinOp::Sub);
    register_binop(r, "mul", BinOp::Mul);
    register_binop(r, "div", BinOp::Div);
    register_binop(r, "mod", BinOp::Mod);
    register_cmp(r, "eq", CmpOp::Eq);
    register_cmp(r, "ne", CmpOp::Ne);
    register_cmp(r, "lt", CmpOp::Lt);
    register_cmp(r, "le", CmpOp::Le);
    register_cmp(r, "gt", CmpOp::Gt);
    register_cmp(r, "ge", CmpOp::Ge);
    register_cast(r, "int", ScalarType::Int);
    register_cast(r, "lng", ScalarType::Lng);
    register_cast(r, "dbl", ScalarType::Dbl);
    register_cast(r, "str", ScalarType::Str);
    register_cast(r, "bit", ScalarType::Bit);
    register_cast(r, "oid", ScalarType::OidT);

    r.register("batcalc", "and", |args, _ctx| {
        if args.len() != 2 {
            return Err(MalError::msg("and takes 2 arguments"));
        }
        Ok(vec![MalValue::bat(arith::and(
            args[0].as_bat()?,
            args[1].as_bat()?,
        )?)])
    });
    r.register("batcalc", "or", |args, _ctx| {
        if args.len() != 2 {
            return Err(MalError::msg("or takes 2 arguments"));
        }
        Ok(vec![MalValue::bat(arith::or(
            args[0].as_bat()?,
            args[1].as_bat()?,
        )?)])
    });
    r.register("batcalc", "not", |args, _ctx| {
        Ok(vec![MalValue::bat(arith::not(
            args.first()
                .ok_or_else(|| MalError::msg("not: missing argument"))?
                .as_bat()?,
        )?)])
    });
    r.register("batcalc", "isnil", |args, _ctx| {
        Ok(vec![MalValue::bat(arith::isnull(
            args.first()
                .ok_or_else(|| MalError::msg("isnil: missing argument"))?
                .as_bat()?,
        ))])
    });
    r.register("batcalc", "neg", |args, _ctx| match args.first() {
        Some(MalValue::Bat(b)) => Ok(vec![MalValue::bat(arith::neg(b)?)]),
        Some(MalValue::Scalar(s)) => {
            let v = arith::scalar_binop(BinOp::Sub, &Value::Int(0), s)?;
            Ok(vec![MalValue::Scalar(v)])
        }
        _ => Err(MalError::msg("neg takes one argument")),
    });
    r.register("batcalc", "abs", |args, _ctx| match args.first() {
        Some(MalValue::Bat(b)) => Ok(vec![MalValue::bat(arith::abs(b)?)]),
        Some(MalValue::Scalar(s)) => {
            let v = if s.is_null() {
                Value::Null
            } else {
                match s {
                    Value::Int(x) => Value::Int(x.abs()),
                    Value::Lng(x) => Value::Lng(x.abs()),
                    Value::Dbl(x) => Value::Dbl(x.abs()),
                    other => return Err(MalError::msg(format!("abs of non-numeric {other}"))),
                }
            };
            Ok(vec![MalValue::Scalar(v)])
        }
        _ => Err(MalError::msg("abs takes one argument")),
    });

    // batcalc.like(col:bat[str], pattern:str) — SQL LIKE mask
    // (nil-preserving; `%`/`_` wildcards, `\` escapes).
    r.register("batcalc", "like", |args, _ctx| {
        if args.len() != 2 {
            return Err(MalError::msg("like takes (column, pattern)"));
        }
        let b = args[0].as_bat()?;
        let pat = match args[1].as_scalar()? {
            Value::Str(s) => s.clone(),
            other => {
                return Err(MalError::msg(format!(
                    "like pattern must be a string, got {other}"
                )))
            }
        };
        Ok(vec![MalValue::bat(gdk::like::like(b, &pat)?)])
    });

    // batcalc.fill(template:bat, v) — constant column aligned with template.
    r.register("batcalc", "fill", |args, _ctx| {
        if args.len() != 2 {
            return Err(MalError::msg("fill takes (template, value)"));
        }
        let t = args[0].as_bat()?;
        let v = args[1].as_scalar()?;
        Ok(vec![MalValue::bat(Bat::filler(t.len(), v)?)])
    });

    // batcalc.ifthenelse(mask:bat[bit], then, else) — SQL CASE kernel.
    // `then`/`else` may be BATs (aligned) or scalars (broadcast); a nil
    // mask entry selects the else branch (CASE's unknown-is-false rule).
    r.register("batcalc", "ifthenelse", |args, _ctx| {
        if args.len() != 3 {
            return Err(MalError::msg("ifthenelse takes 3 arguments"));
        }
        let mask = args[0].as_bat()?;
        let bits = mask
            .as_bits()
            .ok_or_else(|| MalError::msg("ifthenelse mask must be a bit BAT"))?;
        let value_at = |arg: &MalValue, i: usize| -> Result<Value> {
            match arg {
                MalValue::Scalar(v) => Ok(v.clone()),
                MalValue::Bat(b) => {
                    if b.len() != bits.len() {
                        Err(MalError::msg("ifthenelse branch misaligned with mask"))
                    } else {
                        Ok(b.get(i))
                    }
                }
                other => Err(MalError::msg(format!(
                    "ifthenelse branch must be BAT or scalar, got {}",
                    other.kind()
                ))),
            }
        };
        // Determine output type from the branches.
        let branch_ty = |arg: &MalValue| -> Option<ScalarType> {
            match arg {
                MalValue::Scalar(v) => v.scalar_type(),
                MalValue::Bat(b) => Some(b.tail_type()),
                _ => None,
            }
        };
        let ty = match (branch_ty(&args[1]), branch_ty(&args[2])) {
            (Some(a), Some(b)) => a.promote(b).unwrap_or(a),
            (Some(a), None) | (None, Some(a)) => a,
            (None, None) => ScalarType::Int,
        };
        let mut out = Bat::with_capacity(ty, bits.len());
        for (i, &m) in bits.iter().enumerate() {
            let v = if m == 1 {
                value_at(&args[1], i)?
            } else {
                value_at(&args[2], i)?
            };
            out.push(&v)
                .map_err(|e| MalError::msg(format!("ifthenelse: {e}")))?;
        }
        Ok(vec![MalValue::bat(out)])
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prims::default_registry;

    fn call(f: &str, args: &[MalValue]) -> Result<Vec<MalValue>> {
        let r = default_registry();
        let p = r.lookup("batcalc", f)?;
        p(args, &crate::registry::ExecCtx::serial())
    }

    #[test]
    fn add_bat_scalar_and_scalar_scalar() {
        let b = MalValue::bat(Bat::from_ints(vec![1, 2]));
        let out = call("add", &[b, MalValue::Scalar(Value::Int(5))]).unwrap();
        assert_eq!(out[0].as_bat().unwrap().as_ints().unwrap(), &[6, 7]);

        let out = call(
            "add",
            &[
                MalValue::Scalar(Value::Int(2)),
                MalValue::Scalar(Value::Int(3)),
            ],
        )
        .unwrap();
        assert!(matches!(out[0], MalValue::Scalar(Value::Int(5))));
    }

    #[test]
    fn cmp_produces_bits() {
        let b = MalValue::bat(Bat::from_ints(vec![1, 5]));
        let out = call("gt", &[b, MalValue::Scalar(Value::Int(3))]).unwrap();
        assert_eq!(
            out[0].as_bat().unwrap().to_values(),
            vec![Value::Bit(false), Value::Bit(true)]
        );
        let out = call(
            "le",
            &[
                MalValue::Scalar(Value::Int(1)),
                MalValue::Scalar(Value::Int(1)),
            ],
        )
        .unwrap();
        assert!(matches!(out[0], MalValue::Scalar(Value::Bit(true))));
    }

    #[test]
    fn casts_bat_and_scalar() {
        let b = MalValue::bat(Bat::from_ints(vec![3]));
        let out = call("dbl", &[b]).unwrap();
        assert_eq!(out[0].as_bat().unwrap().as_dbls().unwrap(), &[3.0]);
        let out = call("str", &[MalValue::Scalar(Value::Int(7))]).unwrap();
        assert!(matches!(&out[0], MalValue::Scalar(Value::Str(s)) if s == "7"));
    }

    #[test]
    fn ifthenelse_broadcast() {
        let mask = MalValue::bat(Bat::from_bits(vec![Some(true), Some(false), None]));
        let out = call(
            "ifthenelse",
            &[
                mask,
                MalValue::Scalar(Value::Int(1)),
                MalValue::Scalar(Value::Int(0)),
            ],
        )
        .unwrap();
        assert_eq!(
            out[0].as_bat().unwrap().as_ints().unwrap(),
            &[1, 0, 0],
            "nil mask selects else branch"
        );
    }

    #[test]
    fn ifthenelse_bat_branches() {
        let mask = MalValue::bat(Bat::from_bits(vec![Some(true), Some(false)]));
        let t = MalValue::bat(Bat::from_ints(vec![10, 20]));
        let e = MalValue::bat(Bat::from_ints(vec![-10, -20]));
        let out = call("ifthenelse", &[mask, t, e]).unwrap();
        assert_eq!(out[0].as_bat().unwrap().as_ints().unwrap(), &[10, -20]);
    }

    #[test]
    fn ifthenelse_promotes_branch_types() {
        let mask = MalValue::bat(Bat::from_bits(vec![Some(true), Some(false)]));
        let out = call(
            "ifthenelse",
            &[
                mask,
                MalValue::Scalar(Value::Int(1)),
                MalValue::Scalar(Value::Dbl(0.5)),
            ],
        )
        .unwrap();
        assert_eq!(out[0].as_bat().unwrap().as_dbls().unwrap(), &[1.0, 0.5]);
    }

    #[test]
    fn neg_abs_scalar() {
        let out = call("neg", &[MalValue::Scalar(Value::Int(4))]).unwrap();
        assert!(matches!(out[0], MalValue::Scalar(Value::Int(-4))));
        let out = call("abs", &[MalValue::Scalar(Value::Dbl(-1.5))]).unwrap();
        assert!(matches!(out[0], MalValue::Scalar(Value::Dbl(v)) if v == 1.5));
    }

    #[test]
    fn boolean_ops() {
        let a = MalValue::bat(Bat::from_bits(vec![Some(true), Some(false)]));
        let b = MalValue::bat(Bat::from_bits(vec![Some(true), Some(true)]));
        let out = call("and", &[a.clone(), b]).unwrap();
        assert_eq!(
            out[0].as_bat().unwrap().to_values(),
            vec![Value::Bit(true), Value::Bit(false)]
        );
        let out = call("not", &[a]).unwrap();
        assert_eq!(
            out[0].as_bat().unwrap().to_values(),
            vec![Value::Bit(false), Value::Bit(true)]
        );
    }
}
