//! MAL program representation.
//!
//! A MAL program is a straight-line sequence of instructions in (near) SSA
//! form: each instruction calls a primitive `module.function(args…)` and
//! assigns its results to fresh variables. This mirrors the textual MAL of
//! MonetDB, which is "the target language for all MonetDB query compiler
//! front-ends" (paper §3).

use gdk::{ScalarType, Value};
use std::fmt;

/// Variable identifier within one program.
pub type VarId = usize;

/// Static type of a MAL variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MalType {
    /// A scalar of the given type.
    Scalar(ScalarType),
    /// A BAT with the given tail type (head is always void).
    Bat(ScalarType),
    /// A candidate list.
    Cand,
    /// A grouping descriptor (ids + extents).
    Groups,
    /// Unknown/any (used by generic primitives).
    Any,
}

impl fmt::Display for MalType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MalType::Scalar(t) => write!(f, ":{t}"),
            MalType::Bat(t) => write!(f, ":bat[:oid,:{t}]"),
            MalType::Cand => write!(f, ":bat[:oid,:oid]"),
            MalType::Groups => write!(f, ":group"),
            MalType::Any => write!(f, ":any"),
        }
    }
}

/// A declared variable.
#[derive(Debug, Clone, PartialEq)]
pub struct VarDecl {
    /// Display name (`X_12` style when generated).
    pub name: String,
    /// Static type.
    pub ty: MalType,
}

/// One instruction argument.
#[derive(Debug, Clone, PartialEq)]
pub enum Arg {
    /// Reference to a program variable.
    Var(VarId),
    /// Literal constant.
    Const(Value),
    /// Bind-parameter slot, filled per execution by the interpreter from
    /// the caller-supplied value list (`?`/`:name` placeholders compiled
    /// by the code generator). A program with `Param` arguments compiles
    /// once and re-executes with different values — no re-parse, no
    /// re-optimise.
    Param(usize),
}

/// One MAL instruction: `(r1, r2, …) := module.function(arg, …)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Instr {
    /// Result variables.
    pub results: Vec<VarId>,
    /// Primitive module, e.g. `algebra`, `batcalc`, `array`.
    pub module: String,
    /// Primitive name, e.g. `thetaselect`, `projection`, `series`.
    pub function: String,
    /// Arguments.
    pub args: Vec<Arg>,
    /// May the interpreter run this instruction through the parallel
    /// slice driver? Set at emission time (i.e. by the code generator)
    /// from [`parallel_safe`]; the interpreter hands instructions without
    /// the mark a serial execution context.
    pub parallel_ok: bool,
}

impl Instr {
    /// Fully-qualified primitive name.
    pub fn qualified(&self) -> String {
        format!("{}.{}", self.module, self.function)
    }
}

/// Is this primitive a pure BAT-level kernel with a slice-parallel
/// implementation behind it? (Eligibility only — the kernel still falls
/// back to serial for unsupported shapes or short inputs.)
pub fn parallel_safe(module: &str, function: &str) -> bool {
    matches!(
        (module, function),
        (
            "algebra",
            "thetaselect" | "select" | "projection" | "selectproject"
        ) | (
            "batcalc",
            "add" | "sub" | "mul" | "div" | "mod" | "eq" | "ne" | "lt" | "le" | "gt" | "ge"
        ) | ("group", "group" | "subgroup")
            | (
                "aggr",
                "subsum"
                    | "subcount"
                    | "submin"
                    | "submax"
                    | "sum"
                    | "count"
                    | "min"
                    | "max"
                    | "selectagg"
            )
    )
}

/// A complete MAL program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// Program name (for EXPLAIN output).
    pub name: String,
    /// Variable declarations, indexed by [`VarId`].
    pub vars: Vec<VarDecl>,
    /// Instruction sequence.
    pub instrs: Vec<Instr>,
    /// Variables whose final values form the program result, with output
    /// column labels.
    pub results: Vec<(String, VarId)>,
    /// Declared type per bind-parameter slot, indexed by the slot of
    /// [`Arg::Param`]. The interpreter coerces each bound value to its
    /// slot type before execution; `None` means the type could not be
    /// inferred at compile time and the value is passed through as-is.
    pub params: Vec<Option<ScalarType>>,
}

impl Program {
    /// Fresh empty program.
    pub fn new(name: impl Into<String>) -> Self {
        Program {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Declare a new variable of type `ty`; the name is generated.
    pub fn new_var(&mut self, ty: MalType) -> VarId {
        let id = self.vars.len();
        self.vars.push(VarDecl {
            name: format!("X_{id}"),
            ty,
        });
        id
    }

    /// Declare a new named variable.
    pub fn new_named_var(&mut self, name: impl Into<String>, ty: MalType) -> VarId {
        let id = self.vars.len();
        self.vars.push(VarDecl {
            name: name.into(),
            ty,
        });
        id
    }

    /// Append an instruction producing one result of type `ty`; returns the
    /// result variable.
    pub fn emit(&mut self, module: &str, function: &str, args: Vec<Arg>, ty: MalType) -> VarId {
        let r = self.new_var(ty);
        self.instrs.push(Instr {
            results: vec![r],
            module: module.to_owned(),
            function: function.to_owned(),
            args,
            parallel_ok: parallel_safe(module, function),
        });
        r
    }

    /// Append an instruction with multiple results.
    pub fn emit_multi(
        &mut self,
        module: &str,
        function: &str,
        args: Vec<Arg>,
        tys: &[MalType],
    ) -> Vec<VarId> {
        let results: Vec<VarId> = tys.iter().map(|&t| self.new_var(t)).collect();
        self.instrs.push(Instr {
            results: results.clone(),
            module: module.to_owned(),
            function: function.to_owned(),
            args,
            parallel_ok: parallel_safe(module, function),
        });
        results
    }

    /// Mark `var` as a result column labelled `label`.
    pub fn add_result(&mut self, label: impl Into<String>, var: VarId) {
        self.results.push((label.into(), var));
    }

    /// Render the program as MAL-like text (EXPLAIN output).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("function user.{}();\n", self.name));
        for ins in &self.instrs {
            out.push_str("    ");
            if !ins.results.is_empty() {
                let rs: Vec<String> = ins
                    .results
                    .iter()
                    .map(|&r| format!("{}{}", self.vars[r].name, self.vars[r].ty))
                    .collect();
                if rs.len() == 1 {
                    out.push_str(&rs[0]);
                } else {
                    out.push_str(&format!("({})", rs.join(", ")));
                }
                out.push_str(" := ");
            }
            out.push_str(&format!("{}.{}(", ins.module, ins.function));
            let args: Vec<String> = ins
                .args
                .iter()
                .map(|a| match a {
                    Arg::Var(v) => self.vars[*v].name.clone(),
                    Arg::Const(Value::Str(s)) => format!("{s:?}"),
                    Arg::Const(c) => format!("{c}"),
                    Arg::Param(k) => format!("?{k}"),
                })
                .collect();
            out.push_str(&args.join(", "));
            out.push_str(");\n");
        }
        let rs: Vec<String> = self
            .results
            .iter()
            .map(|(label, v)| format!("{} as {:?}", self.vars[*v].name, label))
            .collect();
        out.push_str(&format!(
            "    return ({});\nend user.{};\n",
            rs.join(", "),
            self.name
        ));
        out
    }

    /// Iterate every variable used (read) by an instruction.
    pub fn uses(ins: &Instr) -> impl Iterator<Item = VarId> + '_ {
        ins.args.iter().filter_map(|a| match a {
            Arg::Var(v) => Some(*v),
            Arg::Const(_) | Arg::Param(_) => None,
        })
    }

    /// Declare a bind-parameter slot's type (grows the slot table as
    /// needed). A slot seen with two different inferred types degrades to
    /// `None` (pass-through).
    pub fn declare_param(&mut self, slot: usize, ty: Option<ScalarType>) {
        if self.params.len() <= slot {
            self.params.resize(slot + 1, None);
        }
        self.params[slot] = match (self.params[slot], ty) {
            (None, t) => t,
            (Some(prev), Some(t)) if prev == t => Some(prev),
            (Some(prev), None) => Some(prev),
            _ => None,
        };
    }
}

/// Is a primitive free of side effects (safe to CSE / dead-code-eliminate)?
pub fn is_pure(module: &str, function: &str) -> bool {
    !matches!(
        (module, function),
        ("bat", "append") | ("bat", "replace") | ("io", _) | ("sql", "bind")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_print() {
        let mut p = Program::new("q1");
        let b = p.emit(
            "array",
            "series",
            vec![
                Arg::Const(Value::Int(0)),
                Arg::Const(Value::Int(1)),
                Arg::Const(Value::Int(4)),
                Arg::Const(Value::Lng(4)),
                Arg::Const(Value::Lng(1)),
            ],
            MalType::Bat(ScalarType::Int),
        );
        p.add_result("x", b);
        let text = p.to_text();
        assert!(text.contains("array.series(0, 1, 4, 4, 1)"), "{text}");
        assert!(text.contains("function user.q1()"), "{text}");
        assert!(text.contains(":bat[:oid,:int]"), "{text}");
    }

    #[test]
    fn multi_result_instruction() {
        let mut p = Program::new("j");
        let l = p.emit("bat", "new", vec![], MalType::Bat(ScalarType::Int));
        let rs = p.emit_multi(
            "algebra",
            "join",
            vec![Arg::Var(l), Arg::Var(l)],
            &[
                MalType::Bat(ScalarType::OidT),
                MalType::Bat(ScalarType::OidT),
            ],
        );
        assert_eq!(rs.len(), 2);
        assert!(p.to_text().contains("algebra.join"));
    }

    #[test]
    fn purity_classification() {
        assert!(is_pure("algebra", "thetaselect"));
        assert!(is_pure("batcalc", "add"));
        assert!(!is_pure("bat", "append"));
        assert!(!is_pure("io", "print"));
        assert!(!is_pure("sql", "bind"));
    }

    #[test]
    fn uses_iterates_vars_only() {
        let ins = Instr {
            results: vec![0],
            module: "m".into(),
            function: "f".into(),
            args: vec![Arg::Var(3), Arg::Const(Value::Int(1)), Arg::Var(5)],
            parallel_ok: false,
        };
        let u: Vec<VarId> = Program::uses(&ins).collect();
        assert_eq!(u, vec![3, 5]);
    }
}
