//! # mal — a MonetDB Assembly Language work-alike
//!
//! MAL is "the primary textual interface to the MonetDB kernel … the target
//! language for all MonetDB query compiler front-ends" (paper §3). This
//! crate provides:
//!
//! * [`ir::Program`] — straight-line SSA-ish instruction sequences with a
//!   MAL-text printer for `EXPLAIN`;
//! * [`interp::Interpreter`] — executes programs against the primitive
//!   [`registry::Registry`], resolving `sql.bind` through a caller-supplied
//!   [`interp::Binder`];
//! * [`prims`] — the standard library (`algebra`, `batcalc`, `group`,
//!   `aggr`, `bat`, and the paper's new `array.series` / `array.filler`);
//! * [`opt`] — the optimizer pipeline (constant folding, CSE, alias
//!   removal, DCE, candidate propagation, select→project and
//!   select→aggregate kernel fusion) with per-pass ablation switches and
//!   a coarse `opt_level` selector.

#![warn(missing_docs)]

pub mod interp;
pub mod ir;
pub mod opt;
pub mod prims;
pub mod registry;

pub use interp::{Binder, EmptyBinder, ExecStats, Interpreter, MalValue};
pub use ir::{Arg, Instr, MalType, Program, VarId};
pub use opt::{optimise, optimise_traced, OptConfig, PassStats};
pub use registry::Registry;

use std::fmt;

/// Errors raised by MAL compilation or execution.
#[derive(Debug, Clone, PartialEq)]
pub enum MalError {
    /// Kernel-level error.
    Gdk(gdk::GdkError),
    /// A bind-parameter slot was referenced but no value was supplied:
    /// `(slot, bound)` — the zero-based slot and how many values the
    /// caller actually bound.
    UnboundParam(usize, usize),
    /// A bound value could not be coerced to its slot's declared type:
    /// `(slot, detail)`.
    BadParam(usize, String),
    /// Interpreter/registry error.
    Msg(String),
}

impl MalError {
    /// Construct a message error.
    pub fn msg(m: impl Into<String>) -> Self {
        MalError::Msg(m.into())
    }

    /// Construct an unbound-parameter error.
    pub fn unbound_param(slot: usize, bound: usize) -> Self {
        MalError::UnboundParam(slot, bound)
    }
}

impl fmt::Display for MalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MalError::Gdk(e) => write!(f, "{e}"),
            MalError::UnboundParam(slot, bound) => write!(
                f,
                "parameter {} is not bound ({} value(s) supplied)",
                slot + 1,
                bound
            ),
            MalError::BadParam(slot, detail) => {
                write!(f, "cannot bind parameter {}: {detail}", slot + 1)
            }
            MalError::Msg(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for MalError {}

impl From<gdk::GdkError> for MalError {
    fn from(e: gdk::GdkError) -> Self {
        MalError::Gdk(e)
    }
}

/// MAL result type.
pub type Result<T> = std::result::Result<T, MalError>;
