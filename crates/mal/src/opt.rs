//! MAL optimizer pipeline.
//!
//! MonetDB runs a battery of MAL optimizers between the code generator and
//! the interpreter (Fig 2 of the paper). We implement the passes that
//! matter for the SciQL workload, in pipeline order:
//!
//! * **constant folding** — pure scalar primitives with constant arguments
//!   are evaluated at optimization time;
//! * **common sub-expression elimination** — identical pure instructions
//!   compute once;
//! * **alias removal** — `language.pass` identities are short-circuited;
//! * **dead code elimination** — pure instructions whose results are never
//!   used are dropped;
//! * **candidate propagation** — a scalar aggregate over
//!   `algebra.projection(cand, col)` consumes the candidate list directly
//!   (`aggr.f(col, cand)`), skipping the projected intermediate;
//! * **select→project fusion** — a single-consumer `algebra.thetaselect`
//!   feeding `algebra.projection` becomes one `algebra.selectproject`
//!   instruction backed by the fused [`gdk::fused`] kernel, so the
//!   candidate list is never materialised;
//! * **select→aggregate fusion** — a single-consumer selection feeding a
//!   scalar aggregate becomes one `aggr.selectagg` instruction: one scan,
//!   no candidate list, no projected BAT.
//!
//! The pipeline is driven by [`OptConfig`] (per-pass ablation switches,
//! or the coarse [`OptConfig::level`] exposed as `SessionConfig::opt_level`)
//! and reports what it did in [`PassStats`].

use crate::interp::MalValue;
use crate::ir::{is_pure, parallel_safe, Arg, Instr, Program, VarId};
use crate::registry::Registry;
use sciql_obs::{SpanId, Tracer};

use std::collections::{HashMap, HashSet};

/// What each pass did. Threaded through the engine's `LastExec` so the
/// REPL's `\timing`, the net protocol's stats frame and the
/// optimizer-ablation bench can surface it.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PassStats {
    /// Instructions folded to constants.
    pub folded: usize,
    /// Instructions removed by CSE.
    pub cse_hits: usize,
    /// Alias instructions removed.
    pub aliases_removed: usize,
    /// Dead instructions removed.
    pub dead_removed: usize,
    /// Candidate lists propagated into scalar aggregates.
    pub candprop: usize,
    /// `thetaselect`+`projection` pairs fused into `selectproject`.
    pub select_project_fused: usize,
    /// Selection→aggregate chains fused into `selectagg`.
    pub select_aggregate_fused: usize,
    /// MAL instructions before the pipeline ran.
    pub instrs_before: usize,
    /// MAL instructions after the pipeline ran.
    pub instrs_after: usize,
}

impl PassStats {
    /// Total instructions eliminated by the classic shrinking passes.
    pub fn total_removed(&self) -> usize {
        self.folded + self.cse_hits + self.aliases_removed + self.dead_removed
    }

    /// Rewrites that avoid materialising an intermediate at runtime.
    pub fn fusions(&self) -> usize {
        self.candprop + self.select_project_fused + self.select_aggregate_fused
    }
}

/// Which passes to run (the ablation switch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptConfig {
    /// Enable constant folding.
    pub constfold: bool,
    /// Enable common sub-expression elimination.
    pub cse: bool,
    /// Enable alias removal.
    pub alias: bool,
    /// Enable dead code elimination.
    pub dce: bool,
    /// Enable candidate propagation into scalar aggregates.
    pub candprop: bool,
    /// Enable select→project fusion.
    pub fuse_select_project: bool,
    /// Enable select→aggregate fusion.
    pub fuse_select_aggregate: bool,
}

impl Default for OptConfig {
    fn default() -> Self {
        OptConfig {
            constfold: true,
            cse: true,
            alias: true,
            dce: true,
            candprop: true,
            fuse_select_project: true,
            fuse_select_aggregate: true,
        }
    }
}

impl OptConfig {
    /// All passes disabled (the ablation baseline, `opt_level = 0`).
    pub fn none() -> Self {
        OptConfig {
            constfold: false,
            cse: false,
            alias: false,
            dce: false,
            candprop: false,
            fuse_select_project: false,
            fuse_select_aggregate: false,
        }
    }

    /// The classic shrinking passes only — no rewrites that change which
    /// kernels run (`opt_level = 1`).
    pub fn classic() -> Self {
        OptConfig {
            candprop: false,
            fuse_select_project: false,
            fuse_select_aggregate: false,
            ..OptConfig::default()
        }
    }

    /// The full pipeline including candidate propagation and kernel
    /// fusion (`opt_level = 2`, the default).
    pub fn full() -> Self {
        OptConfig::default()
    }

    /// Coarse pipeline selection: `0` = off, `1` = classic shrinking
    /// passes, `2` (and above) = full pipeline with fusion.
    pub fn level(level: u8) -> Self {
        match level {
            0 => OptConfig::none(),
            1 => OptConfig::classic(),
            _ => OptConfig::full(),
        }
    }
}

/// Run the configured pipeline in place; returns a report.
pub fn optimise(prog: &mut Program, registry: &Registry, cfg: OptConfig) -> PassStats {
    optimise_traced(prog, registry, cfg, &mut Tracer::off(), SpanId::ROOT)
}

/// [`optimise`] with a per-pass span recorded under `parent` (each pass
/// is annotated with its rewrite count).
pub fn optimise_traced(
    prog: &mut Program,
    registry: &Registry,
    cfg: OptConfig,
    tracer: &mut Tracer,
    parent: SpanId,
) -> PassStats {
    let mut report = PassStats {
        instrs_before: prog.instrs.len(),
        ..PassStats::default()
    };
    let mut pass = |tracer: &mut Tracer,
                    enabled: bool,
                    name: &str,
                    f: &mut dyn FnMut(&mut Program) -> usize|
     -> usize {
        if !enabled {
            return 0;
        }
        let sp = tracer.open(parent, name);
        let n = f(prog);
        tracer.note(sp, "rewrites", n as u64);
        tracer.close(sp);
        n
    };
    report.folded = pass(tracer, cfg.constfold, "pass:constfold", &mut |p| {
        constfold(p, registry)
    });
    report.cse_hits = pass(tracer, cfg.cse, "pass:cse", &mut cse);
    report.aliases_removed = pass(tracer, cfg.alias, "pass:alias", &mut alias_removal);
    // DCE runs before the fusion passes so dead projections (columns a
    // filter carried along that nothing reads) don't inflate candidate
    // use counts and block fusion.
    report.dead_removed = pass(tracer, cfg.dce, "pass:dce", &mut dce);
    report.candprop = pass(tracer, cfg.candprop, "pass:candprop", &mut candprop);
    report.select_project_fused = pass(
        tracer,
        cfg.fuse_select_project,
        "pass:fuse_select_project",
        &mut fuse_select_project,
    );
    report.select_aggregate_fused = pass(
        tracer,
        cfg.fuse_select_aggregate,
        "pass:fuse_select_aggregate",
        &mut fuse_select_aggregate,
    );
    // Safety-net DCE after fusion (the fusion passes delete the producers
    // they consumed themselves, so this is usually a no-op).
    if report.fusions() > 0 {
        report.dead_removed += pass(tracer, cfg.dce, "pass:dce(post-fusion)", &mut dce);
    }
    report.instrs_after = prog.instrs.len();
    report
}

/// Replace every use of the vars in `subst` by the mapped argument.
fn substitute(prog: &mut Program, subst: &HashMap<VarId, Arg>) {
    if subst.is_empty() {
        return;
    }
    let resolve = |a: &Arg| -> Arg {
        let mut cur = a.clone();
        // Chase chains (alias of alias).
        let mut guard = 0;
        while let Arg::Var(v) = cur {
            match subst.get(&v) {
                Some(next) => {
                    cur = next.clone();
                    guard += 1;
                    if guard > prog_len_guard(subst.len()) {
                        break;
                    }
                }
                None => break,
            }
        }
        cur
    };
    for ins in &mut prog.instrs {
        for a in &mut ins.args {
            *a = resolve(a);
        }
    }
    for (_, v) in &mut prog.results {
        if let Arg::Var(nv) = resolve(&Arg::Var(*v)) {
            *v = nv;
        }
        // A result folded to a constant keeps its var: constfold never folds
        // result variables (see below).
    }
}

fn prog_len_guard(n: usize) -> usize {
    n + 4
}

/// Constant folding. Only scalar-result primitives are folded, and never
/// instructions producing a program result variable (results must stay
/// materialised).
fn constfold(prog: &mut Program, registry: &Registry) -> usize {
    let result_vars: std::collections::HashSet<VarId> =
        prog.results.iter().map(|(_, v)| *v).collect();
    let mut subst: HashMap<VarId, Arg> = HashMap::new();
    let mut kept: Vec<Instr> = Vec::with_capacity(prog.instrs.len());
    let mut folded = 0usize;
    for ins in std::mem::take(&mut prog.instrs) {
        // Re-resolve args through what we already folded.
        let mut ins = ins;
        for a in &mut ins.args {
            if let Arg::Var(v) = a {
                if let Some(c) = subst.get(v) {
                    *a = c.clone();
                }
            }
        }
        let foldable = is_pure(&ins.module, &ins.function)
            && ins.results.len() == 1
            && !result_vars.contains(&ins.results[0])
            && ins.args.iter().all(|a| matches!(a, Arg::Const(_)))
            && ins.module != "array" // may produce large BATs
            && ins.module != "bat";
        if foldable {
            let args: Vec<MalValue> = ins
                .args
                .iter()
                .map(|a| match a {
                    Arg::Const(v) => MalValue::Scalar(v.clone()),
                    // Param args are never constant-folded (their value
                    // changes per execution), Var args were filtered by
                    // the all-const check above.
                    Arg::Var(_) | Arg::Param(_) => unreachable!("checked all-const above"),
                })
                .collect();
            if let Ok(prim) = registry.lookup(&ins.module, &ins.function) {
                if let Ok(outs) = prim(&args, &crate::registry::ExecCtx::serial()) {
                    if let [MalValue::Scalar(v)] = outs.as_slice() {
                        subst.insert(ins.results[0], Arg::Const(v.clone()));
                        folded += 1;
                        continue;
                    }
                }
            }
        }
        kept.push(ins);
    }
    prog.instrs = kept;
    substitute(prog, &subst);
    folded
}

/// Common sub-expression elimination over pure instructions.
fn cse(prog: &mut Program) -> usize {
    // Key: (module, function, rendered args). Values are result vars.
    let mut seen: HashMap<String, Vec<VarId>> = HashMap::new();
    let mut subst: HashMap<VarId, Arg> = HashMap::new();
    let mut kept: Vec<Instr> = Vec::with_capacity(prog.instrs.len());
    let mut hits = 0usize;
    for ins in std::mem::take(&mut prog.instrs) {
        let mut ins = ins;
        for a in &mut ins.args {
            if let Arg::Var(v) = a {
                if let Some(c) = subst.get(v) {
                    *a = c.clone();
                }
            }
        }
        if !is_pure(&ins.module, &ins.function) {
            kept.push(ins);
            continue;
        }
        let key = format!("{}.{}({:?})", ins.module, ins.function, ins.args);
        match seen.get(&key) {
            Some(prev) if prev.len() == ins.results.len() => {
                for (old, new) in ins.results.iter().zip(prev) {
                    subst.insert(*old, Arg::Var(*new));
                }
                hits += 1;
            }
            _ => {
                seen.insert(key, ins.results.clone());
                kept.push(ins);
            }
        }
    }
    prog.instrs = kept;
    substitute(prog, &subst);
    hits
}

/// Remove `language.pass` aliases.
fn alias_removal(prog: &mut Program) -> usize {
    let mut subst: HashMap<VarId, Arg> = HashMap::new();
    let mut kept: Vec<Instr> = Vec::with_capacity(prog.instrs.len());
    let mut removed = 0usize;
    for ins in std::mem::take(&mut prog.instrs) {
        if ins.module == "language"
            && ins.function == "pass"
            && ins.results.len() == 1
            && ins.args.len() == 1
        {
            subst.insert(ins.results[0], ins.args[0].clone());
            removed += 1;
        } else {
            kept.push(ins);
        }
    }
    prog.instrs = kept;
    substitute(prog, &subst);
    removed
}

/// Dead code elimination: drop pure instructions none of whose results are
/// ever used (transitively, scanning backwards).
fn dce(prog: &mut Program) -> usize {
    let mut live: Vec<bool> = vec![false; prog.vars.len()];
    for (_, v) in &prog.results {
        live[*v] = true;
    }
    let mut keep: Vec<bool> = vec![true; prog.instrs.len()];
    for (i, ins) in prog.instrs.iter().enumerate().rev() {
        let needed = !is_pure(&ins.module, &ins.function) || ins.results.iter().any(|&r| live[r]);
        keep[i] = needed;
        if needed {
            for u in Program::uses(ins) {
                live[u] = true;
            }
        }
    }
    let before = prog.instrs.len();
    let mut it = keep.iter();
    prog.instrs.retain(|_| *it.next().expect("keep aligned"));
    before - prog.instrs.len()
}

// ---------------------------------------------------------------------
// Candidate propagation and kernel fusion
// ---------------------------------------------------------------------

/// Per-variable use count: argument reads plus program-result listings.
fn use_counts(prog: &Program) -> Vec<usize> {
    let mut counts = vec![0usize; prog.vars.len()];
    for ins in &prog.instrs {
        for u in Program::uses(ins) {
            counts[u] += 1;
        }
    }
    for (_, v) in &prog.results {
        counts[*v] += 1;
    }
    counts
}

/// Per-variable producing instruction index (straight-line SSA: at most
/// one producer).
fn producers(prog: &Program) -> Vec<Option<usize>> {
    let mut p = vec![None; prog.vars.len()];
    for (i, ins) in prog.instrs.iter().enumerate() {
        for &r in &ins.results {
            p[r] = Some(i);
        }
    }
    p
}

/// Is this a scalar aggregate function the fusion passes understand?
fn scalar_agg(ins: &Instr) -> bool {
    ins.module == "aggr"
        && matches!(
            ins.function.as_str(),
            "sum" | "avg" | "count" | "min" | "max"
        )
}

fn remove_instrs(prog: &mut Program, removed: &HashSet<usize>) {
    if removed.is_empty() {
        return;
    }
    let mut i = 0usize;
    prog.instrs.retain(|_| {
        let keep = !removed.contains(&i);
        i += 1;
        keep
    });
}

/// Candidate propagation: `aggr.f(p)` where `p := algebra.projection(c,
/// col)` is read only by this aggregate becomes `aggr.f(col, c)` — the
/// aggregate walks the candidate list directly and the projected BAT is
/// never materialised. The dead projection is removed here (its single
/// consumer is gone).
fn candprop(prog: &mut Program) -> usize {
    let counts = use_counts(prog);
    let producer = producers(prog);
    let mut removed: HashSet<usize> = HashSet::new();
    let mut edits: Vec<(usize, Vec<Arg>)> = Vec::new();
    for (i, ins) in prog.instrs.iter().enumerate() {
        if !scalar_agg(ins) || ins.args.len() != 1 {
            continue;
        }
        let Arg::Var(p) = ins.args[0] else { continue };
        if counts[p] != 1 {
            continue; // someone else (or the result list) reads p
        }
        let Some(j) = producer[p] else { continue };
        let pj = &prog.instrs[j];
        if pj.module != "algebra" || pj.function != "projection" || pj.args.len() != 2 {
            continue;
        }
        let Arg::Var(c) = pj.args[0] else { continue };
        if prog.vars[c].ty != crate::ir::MalType::Cand {
            continue; // oid-BAT projection (join result), not a candidate list
        }
        edits.push((i, vec![pj.args[1].clone(), Arg::Var(c)]));
        removed.insert(j);
    }
    let hits = edits.len();
    for (i, args) in edits {
        prog.instrs[i].args = args;
    }
    remove_instrs(prog, &removed);
    hits
}

/// Select→project fusion: `p := algebra.projection(c, payload)` where
/// `c := algebra.thetaselect(…)` has no other reader becomes `p :=
/// algebra.selectproject(…, payload)`; the selection instruction is
/// removed and the candidate list never exists at runtime.
fn fuse_select_project(prog: &mut Program) -> usize {
    let counts = use_counts(prog);
    let producer = producers(prog);
    let mut removed: HashSet<usize> = HashSet::new();
    let mut edits: Vec<(usize, Vec<Arg>)> = Vec::new();
    for (i, ins) in prog.instrs.iter().enumerate() {
        if ins.module != "algebra" || ins.function != "projection" || ins.args.len() != 2 {
            continue;
        }
        let Arg::Var(c) = ins.args[0] else { continue };
        if prog.vars[c].ty != crate::ir::MalType::Cand || counts[c] != 1 {
            continue;
        }
        let Some(j) = producer[c] else { continue };
        let theta = &prog.instrs[j];
        if theta.module != "algebra" || theta.function != "thetaselect" {
            continue;
        }
        // selectproject args = thetaselect args + payload.
        let mut args = theta.args.clone();
        args.push(ins.args[1].clone());
        edits.push((i, args));
        removed.insert(j);
    }
    let hits = edits.len();
    for (i, args) in edits {
        let ins = &mut prog.instrs[i];
        ins.function = "selectproject".into();
        ins.parallel_ok = parallel_safe("algebra", "selectproject");
        ins.args = args;
    }
    remove_instrs(prog, &removed);
    hits
}

/// Select→aggregate fusion. Two shapes feed it:
///
/// * `s := aggr.f(col, c)` (the candprop form) with `c :=
///   algebra.thetaselect(…)` unread elsewhere;
/// * `s := aggr.f(p)` with `p := algebra.selectproject(…, payload)`
///   unread elsewhere (when candprop was ablated off but select→project
///   fusion ran).
///
/// Both become `s := aggr.selectagg(f, payload, …)` — one scan, no
/// candidate list, no projected BAT.
fn fuse_select_aggregate(prog: &mut Program) -> usize {
    let counts = use_counts(prog);
    let producer = producers(prog);
    let mut removed: HashSet<usize> = HashSet::new();
    let mut edits: Vec<(usize, Vec<Arg>)> = Vec::new();
    for (i, ins) in prog.instrs.iter().enumerate() {
        if !scalar_agg(ins) {
            continue;
        }
        let func = Arg::Const(gdk::Value::Str(ins.function.clone()));
        match ins.args.as_slice() {
            // aggr.f(payload, cand) — candprop already ran.
            [payload, Arg::Var(c)] => {
                if prog.vars[*c].ty != crate::ir::MalType::Cand || counts[*c] != 1 {
                    continue;
                }
                let Some(j) = producer[*c] else { continue };
                let theta = &prog.instrs[j];
                if theta.module != "algebra" || theta.function != "thetaselect" {
                    continue;
                }
                // selectagg args = (func, payload) + thetaselect args.
                let mut args = vec![func, payload.clone()];
                args.extend(theta.args.iter().cloned());
                edits.push((i, args));
                removed.insert(j);
            }
            // aggr.f(p) with p := selectproject(…, payload).
            [Arg::Var(p)] => {
                if counts[*p] != 1 {
                    continue;
                }
                let Some(j) = producer[*p] else { continue };
                let sp = &prog.instrs[j];
                if sp.module != "algebra" || sp.function != "selectproject" {
                    continue;
                }
                let (payload, theta_args) = sp.args.split_last().expect("selectproject args");
                let mut args = vec![func, payload.clone()];
                args.extend(theta_args.iter().cloned());
                edits.push((i, args));
                removed.insert(j);
            }
            _ => {}
        }
    }
    let hits = edits.len();
    for (i, args) in edits {
        let ins = &mut prog.instrs[i];
        ins.function = "selectagg".into();
        ins.parallel_ok = parallel_safe("aggr", "selectagg");
        ins.args = args;
    }
    remove_instrs(prog, &removed);
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{EmptyBinder, Interpreter};
    use crate::ir::MalType;
    use crate::prims::default_registry;
    use gdk::{ScalarType, Value};

    /// x = 2+3; y = 2+3; z = series(0,1,x,1,1); dead = 9*9; result z
    fn sample() -> Program {
        let mut p = Program::new("opt");
        let x = p.emit(
            "batcalc",
            "add",
            vec![Arg::Const(Value::Int(2)), Arg::Const(Value::Int(3))],
            MalType::Scalar(ScalarType::Int),
        );
        let y = p.emit(
            "batcalc",
            "add",
            vec![Arg::Const(Value::Int(2)), Arg::Const(Value::Int(3))],
            MalType::Scalar(ScalarType::Int),
        );
        let z = p.emit(
            "array",
            "series",
            vec![
                Arg::Const(Value::Int(0)),
                Arg::Const(Value::Int(1)),
                Arg::Var(x),
                Arg::Const(Value::Lng(1)),
                Arg::Const(Value::Lng(1)),
            ],
            MalType::Bat(ScalarType::Int),
        );
        let _dead = p.emit(
            "batcalc",
            "mul",
            vec![Arg::Const(Value::Int(9)), Arg::Var(y)],
            MalType::Scalar(ScalarType::Int),
        );
        p.add_result("z", z);
        p
    }

    #[test]
    fn full_pipeline_shrinks_program() {
        let reg = default_registry();
        let mut p = sample();
        let before = p.instrs.len();
        let report = optimise(&mut p, &reg, OptConfig::default());
        assert!(report.total_removed() > 0);
        assert!(p.instrs.len() < before);
        // Only the series instruction should remain.
        assert_eq!(p.instrs.len(), 1);
        assert_eq!(p.instrs[0].qualified(), "array.series");
        // Its stop argument should now be the constant 5.
        assert_eq!(p.instrs[0].args[2], Arg::Const(Value::Int(5)));
    }

    #[test]
    fn optimised_program_same_answer() {
        let reg = default_registry();
        let mut p = sample();
        let interp = Interpreter::new(&reg, &EmptyBinder);
        let plain = interp.run(&p).unwrap();
        optimise(&mut p, &reg, OptConfig::default());
        let opt = interp.run(&p).unwrap();
        assert_eq!(
            plain[0].1.as_bat().unwrap().to_values(),
            opt[0].1.as_bat().unwrap().to_values()
        );
        assert_eq!(plain[0].1.as_bat().unwrap().len(), 5);
    }

    #[test]
    fn cse_only() {
        let reg = default_registry();
        let mut p = sample();
        let report = optimise(
            &mut p,
            &reg,
            OptConfig {
                cse: true,
                ..OptConfig::none()
            },
        );
        assert_eq!(report.cse_hits, 1, "y duplicates x");
    }

    #[test]
    fn dce_keeps_side_effects() {
        let reg = default_registry();
        let mut p = Program::new("se");
        // io.print is impure; it must survive DCE even though unused.
        let v = p.new_var(MalType::Scalar(ScalarType::Int));
        p.instrs.push(Instr {
            results: vec![v],
            module: "io".into(),
            function: "print".into(),
            args: vec![Arg::Const(Value::Int(1))],
            parallel_ok: false,
        });
        optimise(&mut p, &reg, OptConfig::default());
        assert_eq!(p.instrs.len(), 1);
    }

    #[test]
    fn alias_chains_resolve() {
        let reg = default_registry();
        let mut p = Program::new("al");
        let a = p.emit(
            "batcalc",
            "add",
            vec![Arg::Const(Value::Int(1)), Arg::Const(Value::Int(1))],
            MalType::Scalar(ScalarType::Int),
        );
        let b = p.emit(
            "language",
            "pass",
            vec![Arg::Var(a)],
            MalType::Scalar(ScalarType::Int),
        );
        let c = p.emit(
            "language",
            "pass",
            vec![Arg::Var(b)],
            MalType::Scalar(ScalarType::Int),
        );
        let d = p.emit(
            "array",
            "filler",
            vec![Arg::Const(Value::Lng(2)), Arg::Var(c)],
            MalType::Bat(ScalarType::Int),
        );
        p.add_result("d", d);
        optimise(
            &mut p,
            &reg,
            OptConfig {
                alias: true,
                dce: true,
                ..OptConfig::none()
            },
        );
        assert_eq!(p.instrs.len(), 2, "add + filler remain");
        assert_eq!(p.instrs[1].args[1], Arg::Var(a));
    }

    /// bind-free stand-in for a compiled `SELECT f(v) FROM t WHERE x > 1`:
    /// fillers for the columns, a theta chain, projections, an aggregate.
    fn select_agg_program(agg: &str) -> Program {
        let mut p = Program::new("fs");
        let x = p.emit(
            "array",
            "filler",
            vec![Arg::Const(Value::Lng(6)), Arg::Const(Value::Int(2))],
            MalType::Bat(ScalarType::Int),
        );
        let v = p.emit(
            "array",
            "series",
            vec![
                Arg::Const(Value::Int(0)),
                Arg::Const(Value::Int(1)),
                Arg::Const(Value::Int(6)),
                Arg::Const(Value::Lng(6)),
                Arg::Const(Value::Lng(1)),
            ],
            MalType::Bat(ScalarType::Int),
        );
        let c = p.emit(
            "algebra",
            "thetaselect",
            vec![
                Arg::Var(x),
                Arg::Const(Value::Int(1)),
                Arg::Const(Value::Str(">".into())),
            ],
            MalType::Cand,
        );
        let pv = p.emit(
            "algebra",
            "projection",
            vec![Arg::Var(c), Arg::Var(v)],
            MalType::Bat(ScalarType::Int),
        );
        let s = p.emit(
            "aggr",
            agg,
            vec![Arg::Var(pv)],
            MalType::Scalar(ScalarType::Lng),
        );
        p.add_result("s", s);
        p
    }

    #[test]
    fn candprop_rewrites_aggregate_over_projection() {
        let reg = default_registry();
        let mut p = select_agg_program("sum");
        let report = optimise(
            &mut p,
            &reg,
            OptConfig {
                candprop: true,
                ..OptConfig::none()
            },
        );
        assert_eq!(report.candprop, 1);
        let text = p.to_text();
        assert!(!text.contains("algebra.projection"), "{text}");
        assert!(text.contains("aggr.sum"), "{text}");
        // The aggregate now takes (payload, cand).
        let agg = p.instrs.iter().find(|i| i.function == "sum").unwrap();
        assert_eq!(agg.args.len(), 2);
    }

    #[test]
    fn select_project_fuses_single_consumer_only() {
        let reg = default_registry();
        // Single consumer: fuses.
        let mut p = select_agg_program("sum");
        let report = optimise(
            &mut p,
            &reg,
            OptConfig {
                fuse_select_project: true,
                ..OptConfig::none()
            },
        );
        assert_eq!(report.select_project_fused, 1);
        let text = p.to_text();
        assert!(text.contains("algebra.selectproject"), "{text}");
        assert!(!text.contains("thetaselect"), "{text}");
        // Two consumers: the candidate list stays shared, no fusion.
        let mut p2 = select_agg_program("sum");
        let c = match p2.instrs[2].results.as_slice() {
            [c] => *c,
            _ => unreachable!(),
        };
        let extra = p2.emit(
            "algebra",
            "projection",
            vec![Arg::Var(c), Arg::Var(0)],
            MalType::Bat(ScalarType::Int),
        );
        p2.add_result("extra", extra);
        let report = optimise(
            &mut p2,
            &reg,
            OptConfig {
                fuse_select_project: true,
                ..OptConfig::none()
            },
        );
        assert_eq!(report.select_project_fused, 0);
    }

    #[test]
    fn full_pipeline_fuses_select_aggregate() {
        let reg = default_registry();
        for agg in ["sum", "count", "min", "max", "avg"] {
            let mut p = select_agg_program(agg);
            let plain = {
                let interp = Interpreter::new(&reg, &EmptyBinder);
                interp.run(&p).unwrap()
            };
            let report = optimise(&mut p, &reg, OptConfig::full());
            assert_eq!(report.fusions(), 2, "{agg}: candprop then selectagg");
            let text = p.to_text();
            assert!(text.contains("aggr.selectagg"), "{agg}: {text}");
            assert!(!text.contains("thetaselect"), "{agg}: {text}");
            assert!(!text.contains("projection"), "{agg}: {text}");
            let interp = Interpreter::new(&reg, &EmptyBinder);
            let opt = interp.run(&p).unwrap();
            assert_eq!(
                plain[0].1.as_scalar().unwrap(),
                opt[0].1.as_scalar().unwrap(),
                "{agg}"
            );
        }
    }

    #[test]
    fn fusion_without_candprop_goes_through_selectproject() {
        let reg = default_registry();
        let mut p = select_agg_program("count");
        let report = optimise(
            &mut p,
            &reg,
            OptConfig {
                fuse_select_project: true,
                fuse_select_aggregate: true,
                ..OptConfig::none()
            },
        );
        assert_eq!(report.select_project_fused, 1);
        assert_eq!(report.select_aggregate_fused, 1);
        assert!(p.to_text().contains("aggr.selectagg"), "{}", p.to_text());
    }

    #[test]
    fn opt_levels_select_pass_sets() {
        assert_eq!(OptConfig::level(0), OptConfig::none());
        assert_eq!(OptConfig::level(1), OptConfig::classic());
        assert_eq!(OptConfig::level(2), OptConfig::full());
        assert_eq!(OptConfig::level(9), OptConfig::full());
        assert!(!OptConfig::classic().candprop);
        assert!(OptConfig::classic().dce);
    }

    #[test]
    fn shared_projection_keeps_both_readers_correct() {
        let reg = default_registry();
        let mut p = select_agg_program("sum");
        // A second aggregate over the same projection: candprop must not
        // claim it (two readers), and whatever the later passes do the
        // answers must not change.
        let pv = match p.instrs[3].results.as_slice() {
            [pv] => *pv,
            _ => unreachable!(),
        };
        let s2 = p.emit(
            "aggr",
            "count",
            vec![Arg::Var(pv)],
            MalType::Scalar(ScalarType::Lng),
        );
        p.add_result("n", s2);
        let interp = Interpreter::new(&reg, &EmptyBinder);
        let plain = interp.run(&p).unwrap();
        let report = optimise(&mut p, &reg, OptConfig::full());
        assert_eq!(report.candprop, 0, "projection has two readers");
        let opt = interp.run(&p).unwrap();
        for (a, b) in plain.iter().zip(&opt) {
            assert_eq!(a.1.as_scalar().unwrap(), b.1.as_scalar().unwrap());
        }
    }
}
