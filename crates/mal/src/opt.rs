//! MAL optimizer pipeline.
//!
//! MonetDB runs a battery of MAL optimizers between the code generator and
//! the interpreter (Fig 2 of the paper). We implement the four that matter
//! for the SciQL workload:
//!
//! * **constant folding** — pure scalar primitives with constant arguments
//!   are evaluated at optimization time;
//! * **common sub-expression elimination** — identical pure instructions
//!   compute once;
//! * **alias removal** — `language.pass` identities are short-circuited;
//! * **dead code elimination** — pure instructions whose results are never
//!   used are dropped.

use crate::interp::MalValue;
use crate::ir::{is_pure, Arg, Instr, Program, VarId};
use crate::registry::Registry;

use std::collections::HashMap;

/// What each pass did (surfaced by the optimizer-ablation bench).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct OptReport {
    /// Instructions folded to constants.
    pub folded: usize,
    /// Instructions removed by CSE.
    pub cse_hits: usize,
    /// Alias instructions removed.
    pub aliases_removed: usize,
    /// Dead instructions removed.
    pub dead_removed: usize,
}

impl OptReport {
    /// Total instructions eliminated.
    pub fn total_removed(&self) -> usize {
        self.folded + self.cse_hits + self.aliases_removed + self.dead_removed
    }
}

/// Which passes to run (the ablation switch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptConfig {
    /// Enable constant folding.
    pub constfold: bool,
    /// Enable common sub-expression elimination.
    pub cse: bool,
    /// Enable alias removal.
    pub alias: bool,
    /// Enable dead code elimination.
    pub dce: bool,
}

impl Default for OptConfig {
    fn default() -> Self {
        OptConfig {
            constfold: true,
            cse: true,
            alias: true,
            dce: true,
        }
    }
}

impl OptConfig {
    /// All passes disabled (the ablation baseline).
    pub fn none() -> Self {
        OptConfig {
            constfold: false,
            cse: false,
            alias: false,
            dce: false,
        }
    }
}

/// Run the configured pipeline in place; returns a report.
pub fn optimise(prog: &mut Program, registry: &Registry, cfg: OptConfig) -> OptReport {
    let mut report = OptReport::default();
    if cfg.constfold {
        report.folded = constfold(prog, registry);
    }
    if cfg.cse {
        report.cse_hits = cse(prog);
    }
    if cfg.alias {
        report.aliases_removed = alias_removal(prog);
    }
    if cfg.dce {
        report.dead_removed = dce(prog);
    }
    report
}

/// Replace every use of the vars in `subst` by the mapped argument.
fn substitute(prog: &mut Program, subst: &HashMap<VarId, Arg>) {
    if subst.is_empty() {
        return;
    }
    let resolve = |a: &Arg| -> Arg {
        let mut cur = a.clone();
        // Chase chains (alias of alias).
        let mut guard = 0;
        while let Arg::Var(v) = cur {
            match subst.get(&v) {
                Some(next) => {
                    cur = next.clone();
                    guard += 1;
                    if guard > prog_len_guard(subst.len()) {
                        break;
                    }
                }
                None => break,
            }
        }
        cur
    };
    for ins in &mut prog.instrs {
        for a in &mut ins.args {
            *a = resolve(a);
        }
    }
    for (_, v) in &mut prog.results {
        if let Arg::Var(nv) = resolve(&Arg::Var(*v)) {
            *v = nv;
        }
        // A result folded to a constant keeps its var: constfold never folds
        // result variables (see below).
    }
}

fn prog_len_guard(n: usize) -> usize {
    n + 4
}

/// Constant folding. Only scalar-result primitives are folded, and never
/// instructions producing a program result variable (results must stay
/// materialised).
fn constfold(prog: &mut Program, registry: &Registry) -> usize {
    let result_vars: std::collections::HashSet<VarId> =
        prog.results.iter().map(|(_, v)| *v).collect();
    let mut subst: HashMap<VarId, Arg> = HashMap::new();
    let mut kept: Vec<Instr> = Vec::with_capacity(prog.instrs.len());
    let mut folded = 0usize;
    for ins in std::mem::take(&mut prog.instrs) {
        // Re-resolve args through what we already folded.
        let mut ins = ins;
        for a in &mut ins.args {
            if let Arg::Var(v) = a {
                if let Some(c) = subst.get(v) {
                    *a = c.clone();
                }
            }
        }
        let foldable = is_pure(&ins.module, &ins.function)
            && ins.results.len() == 1
            && !result_vars.contains(&ins.results[0])
            && ins.args.iter().all(|a| matches!(a, Arg::Const(_)))
            && ins.module != "array" // may produce large BATs
            && ins.module != "bat";
        if foldable {
            let args: Vec<MalValue> = ins
                .args
                .iter()
                .map(|a| match a {
                    Arg::Const(v) => MalValue::Scalar(v.clone()),
                    Arg::Var(_) => unreachable!("checked all-const above"),
                })
                .collect();
            if let Ok(prim) = registry.lookup(&ins.module, &ins.function) {
                if let Ok(outs) = prim(&args, &crate::registry::ExecCtx::serial()) {
                    if let [MalValue::Scalar(v)] = outs.as_slice() {
                        subst.insert(ins.results[0], Arg::Const(v.clone()));
                        folded += 1;
                        continue;
                    }
                }
            }
        }
        kept.push(ins);
    }
    prog.instrs = kept;
    substitute(prog, &subst);
    folded
}

/// Common sub-expression elimination over pure instructions.
fn cse(prog: &mut Program) -> usize {
    // Key: (module, function, rendered args). Values are result vars.
    let mut seen: HashMap<String, Vec<VarId>> = HashMap::new();
    let mut subst: HashMap<VarId, Arg> = HashMap::new();
    let mut kept: Vec<Instr> = Vec::with_capacity(prog.instrs.len());
    let mut hits = 0usize;
    for ins in std::mem::take(&mut prog.instrs) {
        let mut ins = ins;
        for a in &mut ins.args {
            if let Arg::Var(v) = a {
                if let Some(c) = subst.get(v) {
                    *a = c.clone();
                }
            }
        }
        if !is_pure(&ins.module, &ins.function) {
            kept.push(ins);
            continue;
        }
        let key = format!("{}.{}({:?})", ins.module, ins.function, ins.args);
        match seen.get(&key) {
            Some(prev) if prev.len() == ins.results.len() => {
                for (old, new) in ins.results.iter().zip(prev) {
                    subst.insert(*old, Arg::Var(*new));
                }
                hits += 1;
            }
            _ => {
                seen.insert(key, ins.results.clone());
                kept.push(ins);
            }
        }
    }
    prog.instrs = kept;
    substitute(prog, &subst);
    hits
}

/// Remove `language.pass` aliases.
fn alias_removal(prog: &mut Program) -> usize {
    let mut subst: HashMap<VarId, Arg> = HashMap::new();
    let mut kept: Vec<Instr> = Vec::with_capacity(prog.instrs.len());
    let mut removed = 0usize;
    for ins in std::mem::take(&mut prog.instrs) {
        if ins.module == "language"
            && ins.function == "pass"
            && ins.results.len() == 1
            && ins.args.len() == 1
        {
            subst.insert(ins.results[0], ins.args[0].clone());
            removed += 1;
        } else {
            kept.push(ins);
        }
    }
    prog.instrs = kept;
    substitute(prog, &subst);
    removed
}

/// Dead code elimination: drop pure instructions none of whose results are
/// ever used (transitively, scanning backwards).
fn dce(prog: &mut Program) -> usize {
    let mut live: Vec<bool> = vec![false; prog.vars.len()];
    for (_, v) in &prog.results {
        live[*v] = true;
    }
    let mut keep: Vec<bool> = vec![true; prog.instrs.len()];
    for (i, ins) in prog.instrs.iter().enumerate().rev() {
        let needed = !is_pure(&ins.module, &ins.function) || ins.results.iter().any(|&r| live[r]);
        keep[i] = needed;
        if needed {
            for u in Program::uses(ins) {
                live[u] = true;
            }
        }
    }
    let before = prog.instrs.len();
    let mut it = keep.iter();
    prog.instrs.retain(|_| *it.next().expect("keep aligned"));
    before - prog.instrs.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{EmptyBinder, Interpreter};
    use crate::ir::MalType;
    use crate::prims::default_registry;
    use gdk::{ScalarType, Value};

    /// x = 2+3; y = 2+3; z = series(0,1,x,1,1); dead = 9*9; result z
    fn sample() -> Program {
        let mut p = Program::new("opt");
        let x = p.emit(
            "batcalc",
            "add",
            vec![Arg::Const(Value::Int(2)), Arg::Const(Value::Int(3))],
            MalType::Scalar(ScalarType::Int),
        );
        let y = p.emit(
            "batcalc",
            "add",
            vec![Arg::Const(Value::Int(2)), Arg::Const(Value::Int(3))],
            MalType::Scalar(ScalarType::Int),
        );
        let z = p.emit(
            "array",
            "series",
            vec![
                Arg::Const(Value::Int(0)),
                Arg::Const(Value::Int(1)),
                Arg::Var(x),
                Arg::Const(Value::Lng(1)),
                Arg::Const(Value::Lng(1)),
            ],
            MalType::Bat(ScalarType::Int),
        );
        let _dead = p.emit(
            "batcalc",
            "mul",
            vec![Arg::Const(Value::Int(9)), Arg::Var(y)],
            MalType::Scalar(ScalarType::Int),
        );
        p.add_result("z", z);
        p
    }

    #[test]
    fn full_pipeline_shrinks_program() {
        let reg = default_registry();
        let mut p = sample();
        let before = p.instrs.len();
        let report = optimise(&mut p, &reg, OptConfig::default());
        assert!(report.total_removed() > 0);
        assert!(p.instrs.len() < before);
        // Only the series instruction should remain.
        assert_eq!(p.instrs.len(), 1);
        assert_eq!(p.instrs[0].qualified(), "array.series");
        // Its stop argument should now be the constant 5.
        assert_eq!(p.instrs[0].args[2], Arg::Const(Value::Int(5)));
    }

    #[test]
    fn optimised_program_same_answer() {
        let reg = default_registry();
        let mut p = sample();
        let interp = Interpreter::new(&reg, &EmptyBinder);
        let plain = interp.run(&p).unwrap();
        optimise(&mut p, &reg, OptConfig::default());
        let opt = interp.run(&p).unwrap();
        assert_eq!(
            plain[0].1.as_bat().unwrap().to_values(),
            opt[0].1.as_bat().unwrap().to_values()
        );
        assert_eq!(plain[0].1.as_bat().unwrap().len(), 5);
    }

    #[test]
    fn cse_only() {
        let reg = default_registry();
        let mut p = sample();
        let report = optimise(
            &mut p,
            &reg,
            OptConfig {
                constfold: false,
                cse: true,
                alias: false,
                dce: false,
            },
        );
        assert_eq!(report.cse_hits, 1, "y duplicates x");
    }

    #[test]
    fn dce_keeps_side_effects() {
        let reg = default_registry();
        let mut p = Program::new("se");
        // io.print is impure; it must survive DCE even though unused.
        let v = p.new_var(MalType::Scalar(ScalarType::Int));
        p.instrs.push(Instr {
            results: vec![v],
            module: "io".into(),
            function: "print".into(),
            args: vec![Arg::Const(Value::Int(1))],
            parallel_ok: false,
        });
        optimise(&mut p, &reg, OptConfig::default());
        assert_eq!(p.instrs.len(), 1);
    }

    #[test]
    fn alias_chains_resolve() {
        let reg = default_registry();
        let mut p = Program::new("al");
        let a = p.emit(
            "batcalc",
            "add",
            vec![Arg::Const(Value::Int(1)), Arg::Const(Value::Int(1))],
            MalType::Scalar(ScalarType::Int),
        );
        let b = p.emit(
            "language",
            "pass",
            vec![Arg::Var(a)],
            MalType::Scalar(ScalarType::Int),
        );
        let c = p.emit(
            "language",
            "pass",
            vec![Arg::Var(b)],
            MalType::Scalar(ScalarType::Int),
        );
        let d = p.emit(
            "array",
            "filler",
            vec![Arg::Const(Value::Lng(2)), Arg::Var(c)],
            MalType::Bat(ScalarType::Int),
        );
        p.add_result("d", d);
        optimise(
            &mut p,
            &reg,
            OptConfig {
                constfold: false,
                cse: false,
                alias: true,
                dce: true,
            },
        );
        assert_eq!(p.instrs.len(), 2, "add + filler remain");
        assert_eq!(p.instrs[1].args[1], Arg::Var(a));
    }
}
