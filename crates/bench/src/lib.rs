//! Shared helpers for the benchmark harness.
//!
//! Every bench target routes its JSON output through [`emit_meta`] and
//! [`criterion_config`], so the committed `BENCH_*.json` baselines share
//! one machine-readable format: a single `{"meta":{…}}` header line
//! (bench name, sizing fields, host CPU count, quick-mode flag, prose
//! note) followed by one `{"id":…,"min_ns":…,"median_ns":…}` line per
//! benchmark, appended by the criterion shim when `CRITERION_JSON_OUT`
//! names a file. The CI bench-guard job sets `SCIQL_BENCH_QUICK=1` for a
//! shorter measurement profile and compares the result against the
//! committed baselines with `cargo run -p sciql-bench --bin bench-guard`.

#![warn(missing_docs)]

use sciql::Connection;
use std::io::Write as _;
use std::time::Duration;

/// Is the quick measurement profile requested (`SCIQL_BENCH_QUICK` set)?
pub fn quick_mode() -> bool {
    std::env::var_os("SCIQL_BENCH_QUICK").is_some()
}

/// The shared Criterion configuration: the standard profile, or a
/// shorter one in [`quick_mode`] (used by the CI bench-guard job, where
/// wall-clock budget matters more than tight confidence intervals).
pub fn criterion_config() -> criterion::Criterion {
    if quick_mode() {
        criterion::Criterion::default()
            .measurement_time(Duration::from_millis(200))
            .warm_up_time(Duration::from_millis(50))
            .sample_size(5)
    } else {
        criterion::Criterion::default()
            .measurement_time(Duration::from_millis(900))
            .warm_up_time(Duration::from_millis(200))
            .sample_size(10)
    }
}

/// Write the one `{"meta":{…}}` header line for a bench target to the
/// `CRITERION_JSON_OUT` file (no-op when the variable is unset, i.e. in
/// plain `cargo bench` runs). Runs once at target start and **truncates**
/// the file, so re-recording a baseline replaces it instead of appending
/// duplicate ids (the criterion shim appends the per-benchmark lines
/// after this). `fields` carries the target's sizing numbers (cells,
/// rows, …); `note` is the human-readable context that makes the
/// baseline interpretable later.
pub fn emit_meta(bench: &str, fields: &[(&str, u64)], note: &str) {
    let Some(path) = std::env::var_os("CRITERION_JSON_OUT") else {
        return;
    };
    let mut line = format!("{{\"meta\":{{\"bench\":{bench:?}");
    for (k, v) in fields {
        line.push_str(&format!(",{k:?}:{v}"));
    }
    line.push_str(&format!(
        ",\"host_cpus\":{},\"quick\":{},\"note\":{note:?}}}}}",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        quick_mode(),
    ));
    if let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(path)
    {
        let _ = writeln!(file, "{line}");
    }
}

/// Build a session holding an `n × n` matrix array with the Fig 1(b)
/// contents (deterministic, no holes).
pub fn matrix_session(n: usize) -> Connection {
    let mut conn = Connection::new();
    conn.execute(&format!(
        "CREATE ARRAY matrix (x INT DIMENSION[0:1:{n}], \
         y INT DIMENSION[0:1:{n}], v INT DEFAULT 0)"
    ))
    .expect("create");
    conn.execute(
        "UPDATE matrix SET v = CASE WHEN x > y THEN x + y \
         WHEN x < y THEN x - y ELSE 0 END",
    )
    .expect("fill");
    conn
}

/// Build a session holding an `n × n` matrix with holes punched below the
/// diagonal (the Fig 1(c) state, generalised).
pub fn holey_matrix_session(n: usize) -> Connection {
    let mut conn = matrix_session(n);
    conn.execute("DELETE FROM matrix WHERE x > y")
        .expect("holes");
    conn
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_build_valid_sessions() {
        let mut c = matrix_session(8);
        let n = c
            .query("SELECT COUNT(*) FROM matrix")
            .unwrap()
            .scalar()
            .unwrap();
        assert_eq!(n.as_i64(), Some(64));
        let mut h = holey_matrix_session(8);
        let holes = h
            .query("SELECT COUNT(*) FROM matrix WHERE v IS NULL")
            .unwrap()
            .scalar()
            .unwrap();
        assert_eq!(holes.as_i64(), Some(28), "8*7/2 cells below the diagonal");
    }
}
