//! Shared helpers for the benchmark harness.

#![warn(missing_docs)]

use sciql::Connection;

/// Build a session holding an `n × n` matrix array with the Fig 1(b)
/// contents (deterministic, no holes).
pub fn matrix_session(n: usize) -> Connection {
    let mut conn = Connection::new();
    conn.execute(&format!(
        "CREATE ARRAY matrix (x INT DIMENSION[0:1:{n}], \
         y INT DIMENSION[0:1:{n}], v INT DEFAULT 0)"
    ))
    .expect("create");
    conn.execute(
        "UPDATE matrix SET v = CASE WHEN x > y THEN x + y \
         WHEN x < y THEN x - y ELSE 0 END",
    )
    .expect("fill");
    conn
}

/// Build a session holding an `n × n` matrix with holes punched below the
/// diagonal (the Fig 1(c) state, generalised).
pub fn holey_matrix_session(n: usize) -> Connection {
    let mut conn = matrix_session(n);
    conn.execute("DELETE FROM matrix WHERE x > y")
        .expect("holes");
    conn
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_build_valid_sessions() {
        let mut c = matrix_session(8);
        let n = c
            .query("SELECT COUNT(*) FROM matrix")
            .unwrap()
            .scalar()
            .unwrap();
        assert_eq!(n.as_i64(), Some(64));
        let mut h = holey_matrix_session(8);
        let holes = h
            .query("SELECT COUNT(*) FROM matrix WHERE v IS NULL")
            .unwrap()
            .scalar()
            .unwrap();
        assert_eq!(holes.as_i64(), Some(28), "8*7/2 cells below the diagonal");
    }
}
