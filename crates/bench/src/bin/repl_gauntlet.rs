//! `repl-gauntlet` — the CI replication gauntlet workload.
//!
//! Drives a primary `sciql-net` server that is being tailed by live
//! replicas (started separately, e.g. via the repl example's
//! `--replica-of`) and checks the invariants WAL shipping must never
//! bend, even when a replica is `kill -9`ed and restarted mid-stream:
//!
//! * **Gap-free acked writes on every replica.** Each writer appends
//!   `(who, seq)` rows with consecutive `seq` values to `oplog`, only
//!   advancing after the primary acks. `verify` mode then requires
//!   every replica to converge to the primary's row count and to hold,
//!   per writer, exactly `per-writer` rows spanning `0..per-writer` —
//!   no gap, no duplicate, no phantom.
//! * **Read equality.** The full `oplog` contents fetched from each
//!   replica must equal the primary's row for row (same order, same
//!   values) — the replica is a twin, not an approximation.
//!
//! ```text
//! repl-gauntlet write  --addr 127.0.0.1:15532 [--writers 4] [--per-writer 1500]
//! repl-gauntlet verify --primary 127.0.0.1:15532 \
//!                      --replicas 127.0.0.1:15533,127.0.0.1:15534 \
//!                      [--writers 4] [--per-writer 1500] [--timeout-s 120]
//! ```

use gdk::Value;
use sciql_net::Client;
use std::time::{Duration, Instant};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("write") => write(&args[1..]),
        Some("verify") => verify(&args[1..]),
        _ => {
            eprintln!(
                "usage: repl-gauntlet write --addr HOST:PORT [--writers N] [--per-writer N]\n\
                 \x20      repl-gauntlet verify --primary HOST:PORT --replicas A,B,… \
                 [--writers N] [--per-writer N] [--timeout-s N]"
            );
            2
        }
    };
    std::process::exit(code);
}

/// Pull the value following `--flag` out of an argument list.
fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    match flag(args, name) {
        Some(raw) => raw.parse().unwrap_or_else(|_| {
            eprintln!("repl-gauntlet: bad value for {name}: {raw}");
            std::process::exit(2);
        }),
        None => default,
    }
}

/// A `Value` from an aggregate row, as i64 regardless of width.
fn as_i64(v: &Value) -> i64 {
    match v {
        Value::Int(n) => *n as i64,
        Value::Lng(n) => *n,
        other => panic!("aggregate returned non-integer value {other:?}"),
    }
}

/// Concurrent writers against the primary: each appends `per_writer`
/// acked `(who, seq)` rows in pipelined batches.
fn write(args: &[String]) -> i32 {
    let Some(addr) = flag(args, "--addr").map(str::to_owned) else {
        eprintln!("repl-gauntlet write: --addr is required");
        return 2;
    };
    let writers: usize = parse(args, "--writers", 4);
    let per_writer: usize = parse(args, "--per-writer", 1500);

    let mut admin = match Client::connect_named(&addr, "repl-gauntlet-admin") {
        Ok(c) => c,
        Err(e) => {
            eprintln!("repl-gauntlet: cannot connect to {addr}: {e}");
            return 1;
        }
    };
    admin.execute("CREATE TABLE oplog (who INT, seq INT)").ok();
    admin.close().ok();

    let started = Instant::now();
    let mut handles = Vec::new();
    for w in 0..writers {
        let addr = addr.clone();
        handles.push(std::thread::spawn(move || -> Result<(), String> {
            let mut c = Client::connect_named(&addr, &format!("repl-writer-{w}"))
                .map_err(|e| format!("writer {w}: connect: {e}"))?;
            let mut seq = 0usize;
            while seq < per_writer {
                let n = (per_writer - seq).min(50);
                let stmts: Vec<String> = (seq..seq + n)
                    .map(|s| format!("INSERT INTO oplog VALUES ({w}, {s})"))
                    .collect();
                let batch: Vec<&str> = stmts.iter().map(String::as_str).collect();
                let replies = c
                    .execute_pipelined(&batch)
                    .map_err(|e| format!("writer {w}: batch at seq {seq}: {e}"))?;
                for r in replies {
                    r.map_err(|e| format!("writer {w}: statement at seq {seq}: {e}"))?;
                }
                // Only acked rows count: seq advances after the replies.
                seq += n;
            }
            c.close().ok();
            Ok(())
        }));
    }
    let mut failed = false;
    for h in handles {
        match h.join() {
            Ok(Ok(())) => {}
            Ok(Err(e)) => {
                eprintln!("repl-gauntlet: {e}");
                failed = true;
            }
            Err(_) => {
                eprintln!("repl-gauntlet: writer panicked");
                failed = true;
            }
        }
    }
    if failed {
        return 1;
    }
    println!(
        "WROTE {} rows ({writers} writers x {per_writer}) in {:.1}s",
        writers * per_writer,
        started.elapsed().as_secs_f64()
    );
    0
}

/// The primary's full `oplog`, in a canonical order, as printable rows.
fn dump_oplog(c: &mut Client, who: &str) -> Result<Vec<String>, String> {
    let rows = c
        .query("SELECT who, seq FROM oplog ORDER BY who, seq")
        .map_err(|e| format!("{who}: dump oplog: {e}"))?;
    Ok(rows
        .rows()
        .map(|r| format!("{},{}", as_i64(&r[0]), as_i64(&r[1])))
        .collect())
}

/// Wait for every replica to converge, then hold it to the gap-free and
/// row-for-row-equality invariants.
fn verify(args: &[String]) -> i32 {
    let Some(primary) = flag(args, "--primary").map(str::to_owned) else {
        eprintln!("repl-gauntlet verify: --primary is required");
        return 2;
    };
    let Some(replicas) = flag(args, "--replicas") else {
        eprintln!("repl-gauntlet verify: --replicas is required");
        return 2;
    };
    let replicas: Vec<String> = replicas
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_owned)
        .collect();
    let writers: i64 = parse(args, "--writers", 4);
    let per_writer: i64 = parse(args, "--per-writer", 1500);
    let timeout = Duration::from_secs(parse(args, "--timeout-s", 120));
    let expected = writers * per_writer;

    let mut pc = match Client::connect_named(&primary, "repl-verify-primary") {
        Ok(c) => c,
        Err(e) => {
            eprintln!("repl-gauntlet: cannot connect to primary {primary}: {e}");
            return 1;
        }
    };
    let count_sql = "SELECT COUNT(*) FROM oplog";
    let primary_count = match pc.query(count_sql) {
        Ok(rs) => as_i64(&rs.row(0)[0]),
        Err(e) => {
            eprintln!("repl-gauntlet: primary count: {e}");
            return 1;
        }
    };
    if primary_count != expected {
        eprintln!("repl-gauntlet: primary holds {primary_count} rows, expected {expected}");
        return 1;
    }
    let primary_rows = match dump_oplog(&mut pc, "primary") {
        Ok(r) => r,
        Err(e) => {
            eprintln!("repl-gauntlet: {e}");
            return 1;
        }
    };
    pc.close().ok();

    for addr in &replicas {
        let mut rc = match Client::connect_named(addr, "repl-verify-replica") {
            Ok(c) => c,
            Err(e) => {
                eprintln!("repl-gauntlet: cannot connect to replica {addr}: {e}");
                return 1;
            }
        };
        // Converge: the replica applies the tail at its own pace (and
        // one of them was kill -9ed and restarted mid-stream).
        let deadline = Instant::now() + timeout;
        loop {
            let n = match rc.query(count_sql) {
                Ok(rs) => as_i64(&rs.row(0)[0]),
                Err(e) => {
                    eprintln!("repl-gauntlet: replica {addr} count: {e}");
                    return 1;
                }
            };
            if n == expected {
                break;
            }
            if Instant::now() > deadline {
                eprintln!(
                    "repl-gauntlet: replica {addr} stuck at {n}/{expected} rows after {}s",
                    timeout.as_secs()
                );
                return 1;
            }
            std::thread::sleep(Duration::from_millis(100));
        }
        // Gap-free per writer: exactly per_writer rows spanning
        // 0..per_writer (count == max-min+1 == per_writer and min == 0
        // leaves no room for a gap, duplicate or phantom).
        let per = match rc
            .query("SELECT who, COUNT(*), MIN(seq), MAX(seq) FROM oplog GROUP BY who ORDER BY who")
        {
            Ok(rs) => rs,
            Err(e) => {
                eprintln!("repl-gauntlet: replica {addr} per-writer: {e}");
                return 1;
            }
        };
        if per.row_count() as i64 != writers {
            eprintln!(
                "repl-gauntlet: replica {addr} saw {} writers, expected {writers}",
                per.row_count()
            );
            return 1;
        }
        for row in per.rows() {
            let (who, n, lo, hi) = (
                as_i64(&row[0]),
                as_i64(&row[1]),
                as_i64(&row[2]),
                as_i64(&row[3]),
            );
            if n != per_writer || lo != 0 || hi != per_writer - 1 {
                eprintln!(
                    "repl-gauntlet: replica {addr} writer {who} has a gap: \
                     count={n} min={lo} max={hi}, want count={per_writer} min=0 max={}",
                    per_writer - 1
                );
                return 1;
            }
        }
        // Row-for-row equality with the primary.
        let replica_rows = match dump_oplog(&mut rc, addr) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("repl-gauntlet: {e}");
                return 1;
            }
        };
        if replica_rows != primary_rows {
            let diverged = primary_rows
                .iter()
                .zip(&replica_rows)
                .position(|(a, b)| a != b);
            eprintln!(
                "repl-gauntlet: replica {addr} diverged from the primary \
                 (first differing row index: {diverged:?}, lengths {} vs {})",
                primary_rows.len(),
                replica_rows.len()
            );
            return 1;
        }
        rc.close().ok();
        println!("replica {addr}: {expected} rows, gap-free, row-for-row equal");
    }
    println!(
        "PASS (replication converged: {} replicas x {expected} rows, gap-free, equal)",
        replicas.len()
    );
    0
}
