//! `net-gauntlet` — the CI concurrency gauntlet workload.
//!
//! Drives a running `sciql-net` server with a fleet of pipelined
//! clients (default 64) and checks the two invariants group commit and
//! pipelining must never bend:
//!
//! * **Zero torn reads.** Writers repeatedly set *every* row of the
//!   `acct` table to one constant with a single `UPDATE`; readers
//!   repeatedly fetch `COUNT(*), MIN(v), MAX(v)` in one statement. A
//!   snapshot that ever shows `MIN != MAX` (or a wrong row count) saw a
//!   half-applied update, and the run fails.
//! * **Gap-free acked writes.** Each writer also appends `(who, seq)`
//!   to `oplog` with consecutive `seq` values, only advancing after the
//!   server acks. `verify` mode reopens the vault embedded (after a
//!   crash or clean shutdown) and asserts each writer's sequence is a
//!   contiguous prefix — recovery kept every acked write it kept any
//!   later write of.
//!
//! ```text
//! net-gauntlet run    --addr 127.0.0.1:15432 [--clients 64] [--rounds 40]
//!                     [--tolerate-disconnect]
//! net-gauntlet verify --db path/to/vault [--rows 64]
//! ```
//!
//! `--tolerate-disconnect` lets the `kill -9` phase of the CI job reuse
//! the same binary: workers that lose the server mid-round report the
//! disconnect and stop, and the process still exits 0 as long as every
//! read that *did* complete was consistent.

use gdk::Value;
use sciql_net::Client;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Rows in the `acct` table every whole-table `UPDATE` rewrites.
const ROWS: usize = 64;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("run") => run(&args[1..]),
        Some("verify") => verify(&args[1..]),
        _ => {
            eprintln!(
                "usage: net-gauntlet run --addr HOST:PORT [--clients N] [--rounds N] \
                 [--tolerate-disconnect]\n       net-gauntlet verify --db DIR [--rows N]"
            );
            2
        }
    };
    std::process::exit(code);
}

/// Pull the value following `--flag` out of an argument list.
fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    match flag(args, name) {
        Some(raw) => raw.parse().unwrap_or_else(|_| {
            eprintln!("net-gauntlet: bad value for {name}: {raw}");
            std::process::exit(2);
        }),
        None => default,
    }
}

/// A `Value` from an aggregate row, as i64 regardless of width.
fn as_i64(v: &Value) -> i64 {
    match v {
        Value::Int(n) => *n as i64,
        Value::Lng(n) => *n,
        other => panic!("aggregate returned non-integer value {other:?}"),
    }
}

fn run(args: &[String]) -> i32 {
    let Some(addr) = flag(args, "--addr").map(str::to_owned) else {
        eprintln!("net-gauntlet run: --addr is required");
        return 2;
    };
    let clients: usize = parse(args, "--clients", 64);
    let rounds: u64 = parse(args, "--rounds", 40);
    let tolerate = args.iter().any(|a| a == "--tolerate-disconnect");

    // Schema setup is idempotent so the binary can be pointed at a
    // fresh vault or one that already survived a crash: a CREATE that
    // fails because the table exists just skips the seeding.
    let mut admin = match Client::connect_named(&addr, "gauntlet-admin") {
        Ok(c) => c,
        Err(e) => {
            eprintln!("net-gauntlet: cannot connect to {addr}: {e}");
            return 1;
        }
    };
    if admin.execute("CREATE TABLE acct (id INT, v INT)").is_ok() {
        let rows: Vec<String> = (0..ROWS).map(|i| format!("({i}, 0)")).collect();
        admin
            .execute(&format!("INSERT INTO acct VALUES {}", rows.join(", ")))
            .expect("seed acct");
    }
    admin.execute("CREATE TABLE oplog (who INT, seq INT)").ok();
    admin.close().ok();

    let torn = Arc::new(AtomicU64::new(0));
    let disconnects = Arc::new(AtomicU64::new(0));
    let statements = Arc::new(AtomicU64::new(0));
    let failed = Arc::new(AtomicBool::new(false));
    let started = Instant::now();
    let mut workers = Vec::new();
    for w in 0..clients {
        let addr = addr.clone();
        let (torn, disconnects, statements, failed) = (
            Arc::clone(&torn),
            Arc::clone(&disconnects),
            Arc::clone(&statements),
            Arc::clone(&failed),
        );
        // Three writers to one reader: the readers' whole job is to
        // catch a torn snapshot while the writers churn.
        let reader = w % 4 == 3;
        workers.push(std::thread::spawn(move || {
            let mut c = match Client::connect_named(&addr, &format!("gauntlet-{w}")) {
                Ok(c) => c,
                Err(e) => {
                    if tolerate {
                        disconnects.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    eprintln!("gauntlet worker {w}: connect failed: {e}");
                    failed.store(true, Ordering::Relaxed);
                    return;
                }
            };
            for seq in 0..rounds {
                let outcome = if reader {
                    c.query("SELECT COUNT(*), MIN(v), MAX(v) FROM acct")
                        .map(|rs| {
                            statements.fetch_add(1, Ordering::Relaxed);
                            let (n, lo, hi) = (
                                as_i64(&rs.get(0, 0)),
                                as_i64(&rs.get(0, 1)),
                                as_i64(&rs.get(0, 2)),
                            );
                            if n != ROWS as i64 || lo != hi {
                                eprintln!("TORN READ: worker {w} saw count={n} min={lo} max={hi}");
                                torn.fetch_add(1, Ordering::Relaxed);
                            }
                        })
                } else {
                    // One pipelined batch per round: the constant-table
                    // UPDATE and the acked-write marker travel in a
                    // single socket write.
                    let val = (w as u64 * 1_000_000 + seq) as i64;
                    let update = format!("UPDATE acct SET v = {val}");
                    let mark = format!("INSERT INTO oplog VALUES ({w}, {seq})");
                    c.execute_pipelined(&[&update, &mark]).and_then(|replies| {
                        for r in replies {
                            r?;
                            statements.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(())
                    })
                };
                if let Err(e) = outcome {
                    if tolerate {
                        disconnects.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    eprintln!("gauntlet worker {w}: round {seq} failed: {e}");
                    failed.store(true, Ordering::Relaxed);
                    return;
                }
            }
            c.close().ok();
        }));
    }
    for h in workers {
        h.join().expect("gauntlet worker panicked");
    }
    let elapsed = started.elapsed();
    let stmts = statements.load(Ordering::Relaxed);
    let torn = torn.load(Ordering::Relaxed);
    let dropped = disconnects.load(Ordering::Relaxed);
    println!(
        "gauntlet: {clients} clients x {rounds} rounds -> {stmts} statements in {:.2?} \
         ({:.0} stmt/s), torn_reads={torn}, disconnected_workers={dropped}",
        elapsed,
        stmts as f64 / elapsed.as_secs_f64().max(1e-9),
    );
    if torn > 0 || failed.load(Ordering::Relaxed) {
        println!("gauntlet: FAIL");
        1
    } else {
        println!("gauntlet: PASS (zero torn reads)");
        0
    }
}

fn verify(args: &[String]) -> i32 {
    let Some(db) = flag(args, "--db") else {
        eprintln!("net-gauntlet verify: --db is required");
        return 2;
    };
    let rows: i64 = parse(args, "--rows", ROWS as i64);
    // Embedded reopen replays the WAL exactly like a restarted server
    // would; the asserts below are the recovery-consistency contract.
    let mut conn = match sciql::Connection::open(db) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("verify: cannot reopen vault {db}: {e}");
            return 1;
        }
    };
    let rs = conn
        .query("SELECT COUNT(*), MIN(v), MAX(v) FROM acct")
        .expect("acct must exist after recovery");
    let (n, lo, hi) = (
        as_i64(&rs.get(0, 0)),
        as_i64(&rs.get(0, 1)),
        as_i64(&rs.get(0, 2)),
    );
    let mut ok = true;
    if n != rows {
        eprintln!("verify: acct has {n} rows, expected {rows}");
        ok = false;
    }
    if lo != hi {
        eprintln!("verify: torn recovered state: min={lo} max={hi}");
        ok = false;
    }
    // Every writer's acked sequence must be a contiguous prefix:
    // COUNT == MAX+1 means no acked write inside the prefix vanished
    // while a later one survived.
    let ops = conn
        .query("SELECT who, COUNT(*), MAX(seq) FROM oplog GROUP BY who")
        .expect("oplog must exist after recovery");
    let mut writers = 0usize;
    let mut acked = 0i64;
    for r in 0..ops.row_count() {
        let (who, cnt, max) = (
            as_i64(&ops.get(r, 0)),
            as_i64(&ops.get(r, 1)),
            as_i64(&ops.get(r, 2)),
        );
        if cnt != max + 1 {
            eprintln!("verify: writer {who} has {cnt} acked writes but max seq {max} (gap)");
            ok = false;
        }
        writers += 1;
        acked += cnt;
    }
    println!(
        "verify: acct count={n} value={lo}..{hi}; oplog {writers} writers, {acked} acked writes"
    );
    if ok {
        println!("verify: PASS (recovered state consistent)");
        0
    } else {
        println!("verify: FAIL");
        1
    }
}
