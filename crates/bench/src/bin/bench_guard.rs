//! bench-guard: compare freshly recorded `BENCH_*.json` files against the
//! committed baselines and fail on regressions.
//!
//! Usage:
//!
//! ```text
//! bench-guard [--baseline-dir DIR] [--current-dir DIR]
//!             [--threshold-pct P] [--mode absolute|relative]
//! ```
//!
//! Two comparison modes:
//!
//! * `absolute` (default) — a tracked metric fails when its fresh
//!   `min_ns` exceeds the baseline's by more than the threshold.
//!   Meaningful when baseline and fresh run were recorded on the same
//!   machine class.
//! * `relative` — each tracked metric is first normalized by its file's
//!   *anchor* metric (the first tracked id per file) and the *ratio* is
//!   compared against the baseline's ratio. Machine-speed differences
//!   cancel out, so this is what the CI job uses, where runners are not
//!   the machine that recorded the committed baselines.
//!
//! Independent of mode, the guard enforces the machine-free invariants
//! in [`EXPECT_FASTER`]: within the *fresh* numbers, the optimized ids
//! must beat their unoptimized twins (e.g. `opt/select_sum/L2` <
//! `opt/select_sum/L0`), some by a required minimum speedup (COPY ≥10×
//! over the INSERT loop, zone-skip scan ≥5× over the full scan). The
//! [`EXPECT_CLOSE`] invariants bound in the other direction: the
//! trace-off query run may take at most 1.05× the traced run — query
//! tracing must stay zero-cost when disabled.
//!
//! Files may contain `{"meta":…}` header lines (ignored here) and
//! duplicate ids from appended re-runs (the last occurrence wins).

use std::collections::HashMap;
use std::path::Path;
use std::process::ExitCode;

/// Tracked metrics: `(file, id)`. The first id per file is that file's
/// anchor in relative mode.
const TRACKED: &[(&str, &str)] = &[
    ("BENCH_opt.json", "opt/select_project/L0"),
    ("BENCH_opt.json", "opt/select_project/L2"),
    ("BENCH_opt.json", "opt/select_sum/L2"),
    ("BENCH_opt.json", "opt/select_count/L2"),
    ("BENCH_parallel.json", "threads/kernels_1m/arith_add/1"),
    ("BENCH_parallel.json", "threads/kernels_1m/select_ge/1"),
    ("BENCH_parallel.json", "threads/kernels_1m/group_by_dim/1"),
    ("BENCH_parallel.json", "threads/kernels_1m/grouped_sum/1"),
    ("BENCH_store.json", "persistence/checkpoint/dirty_attrs"),
    (
        "BENCH_store.json",
        "persistence/recovery/cold_open_checkpoint",
    ),
    ("BENCH_store.json", "persistence/dml/insert_durable"),
    ("BENCH_net.json", "net/roundtrip/ping"),
    ("BENCH_net.json", "net/roundtrip/select_scalar"),
    ("BENCH_net.json", "net/stream/select_4k_rows_net"),
    ("BENCH_driver.json", "driver/cells_1k/prepared"),
    ("BENCH_driver.json", "driver/cells_1k/unprepared"),
    ("BENCH_driver.json", "driver/cells_256k/prepared"),
    ("BENCH_ingest.json", "ingest/load_8k/copy_binary"),
    ("BENCH_ingest.json", "ingest/scan_512k/zone_skip"),
    ("BENCH_ingest.json", "ingest/scan_512k/full_scan"),
    ("BENCH_obs.json", "obs/scan_sum_256k/on"),
    ("BENCH_obs.json", "obs/scan_sum_256k/off"),
    ("BENCH_obs.json", "obs/sysview/metrics_like_scan"),
    ("BENCH_obs.json", "obs/metrics/snapshot_render"),
];

/// Within the fresh run, `left` must be at least `min_speedup`× faster
/// than `right` (1.0 = merely faster).
const EXPECT_FASTER: &[(&str, &str, &str, f64)] = &[
    (
        "BENCH_opt.json",
        "opt/select_project/L2",
        "opt/select_project/L0",
        1.0,
    ),
    (
        "BENCH_opt.json",
        "opt/select_sum/L2",
        "opt/select_sum/L0",
        1.0,
    ),
    (
        "BENCH_opt.json",
        "opt/select_count/L2",
        "opt/select_count/L0",
        1.0,
    ),
    // A bound prepared statement (cached plan) must beat re-parsing and
    // re-optimising the same text. Only the planning-dominated small
    // case is a hard invariant (~2.7x locally); on the 256k scan the
    // win is real but within run-to-run noise, so it is tracked by the
    // threshold metrics above instead.
    (
        "BENCH_driver.json",
        "driver/cells_1k/prepared",
        "driver/cells_1k/unprepared",
        1.0,
    ),
    // Tiled bulk ingest: streaming COPY must beat the row-at-a-time
    // INSERT loop by an order of magnitude (~20x locally), and the
    // zone-map point probe must prune its way past the full scan by at
    // least 5x (~29x locally — 63 of 64 tiles skipped).
    (
        "BENCH_ingest.json",
        "ingest/load_8k/copy_binary",
        "ingest/load_8k/insert_loop",
        10.0,
    ),
    (
        "BENCH_ingest.json",
        "ingest/scan_512k/zone_skip",
        "ingest/scan_512k/full_scan",
        5.0,
    ),
    // Group commit is the point of the high-concurrency server: 64
    // writers sharing fsyncs through the commit queue must finish their
    // mixed round at least 3x faster than the same 64 writers paying a
    // per-statement fsync each (~solo WAL durability).
    (
        "BENCH_net.json",
        "net/concurrency/mixed_64_grouped",
        "net/concurrency/mixed_64_solo_fsync",
        3.0,
    ),
    // Read scaling is the point of replication: an all-read driver
    // batch fanned out over 3 endpoints (primary + 2 caught-up
    // replicas) must finish at least 2x faster than the same batch
    // pipelined to the single primary.
    (
        "BENCH_net.json",
        "net/replication/read_batch_fanout_3",
        "net/replication/read_batch_fanout_1",
        2.0,
    ),
];

/// Within the fresh run, `left` must take at most `max_ratio` × the time
/// of `right` — an upper bound rather than [`EXPECT_FASTER`]'s lower
/// one. Used to pin "off must be (near) free" invariants.
const EXPECT_CLOSE: &[(&str, &str, &str, f64)] = &[
    // Query tracing must be zero-cost when disabled: the trace-off run
    // is allowed at most 5% of the traced run's time as overhead. (It
    // should in fact be *faster*; the bound is the tripwire for dormant
    // tracing machinery leaking work into the hot path.)
    (
        "BENCH_obs.json",
        "obs/scan_sum_256k/off",
        "obs/scan_sum_256k/on",
        1.05,
    ),
];

fn main() -> ExitCode {
    let mut baseline_dir = ".".to_owned();
    let mut current_dir = ".".to_owned();
    let mut threshold_pct = 25.0f64;
    let mut relative = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match a.as_str() {
            "--baseline-dir" => baseline_dir = val("--baseline-dir"),
            "--current-dir" => current_dir = val("--current-dir"),
            "--threshold-pct" => {
                threshold_pct = val("--threshold-pct").parse().expect("numeric threshold")
            }
            "--mode" => match val("--mode").as_str() {
                "absolute" => relative = false,
                "relative" => relative = true,
                other => {
                    eprintln!("unknown mode {other:?} (absolute|relative)");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!(
                    "unknown argument {other:?}\n\
                     usage: bench-guard [--baseline-dir DIR] [--current-dir DIR] \
                     [--threshold-pct P] [--mode absolute|relative]"
                );
                return ExitCode::from(2);
            }
        }
    }

    let mut failures = 0usize;
    let mut checked = 0usize;
    let factor = 1.0 + threshold_pct / 100.0;

    // Group tracked ids per file; the first is the anchor.
    let mut per_file: Vec<(&str, Vec<&str>)> = Vec::new();
    for (file, id) in TRACKED {
        match per_file.iter_mut().find(|(f, _)| f == file) {
            Some((_, ids)) => ids.push(id),
            None => per_file.push((file, vec![id])),
        }
    }

    for (file, ids) in &per_file {
        let base = match load(Path::new(&baseline_dir).join(file)) {
            Some(m) => m,
            None => {
                println!("SKIP {file}: no committed baseline");
                continue;
            }
        };
        let Some(cur) = load(Path::new(&current_dir).join(file)) else {
            println!("FAIL {file}: fresh numbers missing from {current_dir}");
            failures += 1;
            continue;
        };
        let anchor = ids[0];
        for id in ids {
            let (Some(&b), Some(&c)) = (base.get(*id), cur.get(*id)) else {
                println!("FAIL {file}: tracked id {id:?} missing (baseline or fresh)");
                failures += 1;
                continue;
            };
            let (b_val, c_val, what) = if relative && *id != anchor {
                let (Some(&ba), Some(&ca)) = (base.get(anchor), cur.get(anchor)) else {
                    println!("FAIL {file}: anchor {anchor:?} missing");
                    failures += 1;
                    continue;
                };
                (b / ba, c / ca, "ratio-to-anchor")
            } else if relative {
                // The anchor itself only normalizes; nothing to compare.
                continue;
            } else {
                (b, c, "min_ns")
            };
            checked += 1;
            let ok = c_val <= b_val * factor;
            println!(
                "{} {file} {id}: {what} baseline {b_val:.1} fresh {c_val:.1} ({:+.1}%)",
                if ok { "ok  " } else { "FAIL" },
                (c_val / b_val - 1.0) * 100.0,
            );
            if !ok {
                failures += 1;
            }
        }
    }

    for (file, fast, slow, min_speedup) in EXPECT_FASTER {
        let Some(cur) = load(Path::new(&current_dir).join(file)) else {
            println!("FAIL {file}: fresh numbers missing for expect-faster checks");
            failures += 1;
            continue;
        };
        let (Some(&f), Some(&s)) = (cur.get(*fast), cur.get(*slow)) else {
            println!("FAIL {file}: expect-faster ids missing ({fast} vs {slow})");
            failures += 1;
            continue;
        };
        checked += 1;
        let ok = f * min_speedup < s;
        println!(
            "{} {file} {fast} ({f:.1} ns) {} {slow} ({s:.1} ns), speedup {:.2}x (need {min_speedup:.1}x)",
            if ok { "ok  " } else { "FAIL" },
            if ok { "beats" } else { "DOES NOT beat" },
            s / f,
        );
        if !ok {
            failures += 1;
        }
    }

    for (file, left, right, max_ratio) in EXPECT_CLOSE {
        let Some(cur) = load(Path::new(&current_dir).join(file)) else {
            println!("FAIL {file}: fresh numbers missing for expect-close checks");
            failures += 1;
            continue;
        };
        let (Some(&l), Some(&r)) = (cur.get(*left), cur.get(*right)) else {
            println!("FAIL {file}: expect-close ids missing ({left} vs {right})");
            failures += 1;
            continue;
        };
        checked += 1;
        let ok = l <= r * max_ratio;
        println!(
            "{} {file} {left} ({l:.1} ns) is {:.3}x of {right} ({r:.1} ns), allowed {max_ratio:.2}x",
            if ok { "ok  " } else { "FAIL" },
            l / r,
        );
        if !ok {
            failures += 1;
        }
    }

    println!(
        "bench-guard: {checked} metric(s) checked, {failures} failure(s) \
         (threshold {threshold_pct}%, mode {})",
        if relative { "relative" } else { "absolute" }
    );
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Parse one line-delimited bench JSON file into `id -> min_ns` (last
/// occurrence of a duplicate id wins; meta lines are skipped). The
/// format is the fixed single-line layout `emit_meta` and the criterion
/// shim write, so a couple of string finds beat a JSON dependency.
fn load(path: impl AsRef<Path>) -> Option<HashMap<String, f64>> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut out = HashMap::new();
    for line in text.lines() {
        let Some(id) = field_str(line, "\"id\":\"") else {
            continue;
        };
        let Some(min) = field_num(line, "\"min_ns\":") else {
            continue;
        };
        out.insert(id, min);
    }
    Some(out)
}

fn field_str(line: &str, key: &str) -> Option<String> {
    let start = line.find(key)? + key.len();
    let rest = &line[start..];
    Some(rest[..rest.find('"')?].to_owned())
}

fn field_num(line: &str, key: &str) -> Option<f64> {
    let start = line.find(key)? + key.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}
