//! Durability benchmark: vault checkpoint write and cold-reopen
//! throughput, plus the per-statement cost of WAL-synced DML.
//!
//! The workload is a 256×256 array (65,536 cells) with an `int` and a
//! `dbl` attribute plus a small string table — every codec path the
//! vault has. Run with `CRITERION_JSON_OUT=BENCH_store.json cargo bench
//! -p sciql-bench --bench persistence` to record a baseline.

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use sciql::Connection;
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const SIDE: usize = 256;
const CELLS: usize = SIDE * SIDE;

fn fresh_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "sciql-bench-store-{}-{}-{tag}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&d).ok();
    d
}

/// Build the benchmark schema and fill it with non-trivial data.
fn populate(conn: &mut Connection) {
    conn.execute(&format!(
        "CREATE ARRAY big (x INT DIMENSION[0:1:{SIDE}], y INT DIMENSION[0:1:{SIDE}], \
         v INT DEFAULT 0, w DOUBLE DEFAULT 0.0)"
    ))
    .unwrap();
    conn.execute("UPDATE big SET v = x * y, w = x + y / 2.0")
        .unwrap();
    conn.execute("CREATE TABLE tags (id INT, label TEXT)")
        .unwrap();
    conn.execute("INSERT INTO tags VALUES (1, 'alpha'), (2, 'beta'), (3, 'alpha')")
        .unwrap();
}

/// Checkpoint cost with the hot columns dirty (both 65k-cell attribute
/// columns plus a table column — what a write-heavy workload re-dirties
/// between checkpoints; the dimension BATs stay clean, as they do in
/// practice) vs with everything clean (pure snapshot + WAL rotation).
fn bench_checkpoint(c: &mut Criterion) {
    let mut g = c.benchmark_group("persistence/checkpoint");
    g.throughput(Throughput::Elements(CELLS as u64));
    let dir = fresh_dir("ckpt");
    let mut conn = Connection::open(&dir).unwrap();
    populate(&mut conn);
    g.bench_function(BenchmarkId::from_parameter("dirty_attrs"), |b| {
        b.iter(|| {
            // Dirty both array attributes and one table column (two
            // one-cell statements — negligible next to rewriting 131k
            // values), then measure the checkpoint that rewrites them.
            conn.execute("INSERT INTO big VALUES (0, 0, 1, 1.0)")
                .unwrap();
            conn.execute("UPDATE tags SET label = 'gamma' WHERE id = 3")
                .unwrap();
            conn.checkpoint().unwrap()
        })
    });
    g.bench_function(BenchmarkId::from_parameter("all_clean"), |b| {
        conn.checkpoint().unwrap();
        b.iter(|| conn.checkpoint().unwrap())
    });
    drop(conn);
    std::fs::remove_dir_all(&dir).ok();
    g.finish();
}

/// Cold reopen of a checkpointed vault: snapshot read + column decode.
fn bench_cold_open(c: &mut Criterion) {
    let mut g = c.benchmark_group("persistence/recovery");
    g.throughput(Throughput::Elements(CELLS as u64));
    let dir = fresh_dir("open");
    {
        let mut conn = Connection::open(&dir).unwrap();
        populate(&mut conn);
        conn.checkpoint().unwrap();
    }
    g.bench_function(BenchmarkId::from_parameter("cold_open_checkpoint"), |b| {
        b.iter(|| black_box(Connection::open(&dir).unwrap()))
    });
    // Same image, but with 64 statements left in the WAL tail: recovery
    // must replay them through the full Fig-2 pipeline.
    {
        let mut conn = Connection::open(&dir).unwrap();
        for i in 0..64 {
            conn.execute(&format!(
                "INSERT INTO big VALUES ({}, {}, {i}, 0.5)",
                i % SIDE,
                i / 4
            ))
            .unwrap();
        }
    }
    g.bench_function(BenchmarkId::from_parameter("cold_open_wal_tail_64"), |b| {
        b.iter(|| black_box(Connection::open(&dir).unwrap()))
    });
    std::fs::remove_dir_all(&dir).ok();
    g.finish();
}

/// Per-statement durable DML: each INSERT is WAL-appended and fsynced
/// before it is acknowledged. The in-memory twin shows the WAL overhead.
fn bench_wal_dml(c: &mut Criterion) {
    let mut g = c.benchmark_group("persistence/dml");
    let dir = fresh_dir("dml");
    let mut durable = Connection::open(&dir).unwrap();
    populate(&mut durable);
    let mut memory = Connection::new();
    populate(&mut memory);
    g.bench_function(BenchmarkId::from_parameter("insert_durable"), |b| {
        b.iter(|| {
            durable
                .execute("INSERT INTO big VALUES (5, 5, 1, 1.5)")
                .unwrap()
        })
    });
    g.bench_function(BenchmarkId::from_parameter("insert_memory"), |b| {
        b.iter(|| {
            memory
                .execute("INSERT INTO big VALUES (5, 5, 1, 1.5)")
                .unwrap()
        })
    });
    drop(durable);
    std::fs::remove_dir_all(&dir).ok();
    g.finish();
}

criterion_group! {
    name = benches;
    config = sciql_bench::criterion_config();
    targets = bench_checkpoint, bench_cold_open, bench_wal_dml
}
fn main() {
    sciql_bench::emit_meta("persistence", &[("cells", 65536)], "durability: checkpoint write, cold reopen and per-statement WAL fsync on a 256x256 array plus a string table");
    benches();
}
