//! Bulk-ingest benchmark: `COPY … (FORMAT binary)` against the row-at-a-
//! time INSERT loop it replaces, and a zone-map skip scan against its
//! full-scan twin on the same clustered table.
//!
//! Two workloads:
//!
//! * `ingest/load_8k` — land one tile (8,192 rows) of `(k INT, v DOUBLE)`
//!   into a fresh in-memory table, once via a binary COPY file and once
//!   via 8,192 single-row INSERT statements. COPY must win by ≥10×
//!   (enforced by bench-guard's expect-faster check).
//! * `ingest/scan_512k` — a 64-tile table ingested via COPY with `k`
//!   ascending (time-clustered, so per-tile zone maps are tight); a
//!   single-cell point probe with zone skipping on reads one tile, the
//!   `zone_skip = false` twin scans all 64. The skip scan must win by
//!   ≥5×.
//!
//! Run with `CRITERION_JSON_OUT=BENCH_ingest.json cargo bench -p
//! sciql-bench --bench ingest` to record a baseline.

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use gdk::Bat;
use sciql::{write_copy_binary, Connection, SessionConfig};
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const TILE_ROWS: usize = 8192;
const LOAD_ROWS: usize = TILE_ROWS;
const SCAN_TILES: usize = 64;
const SCAN_ROWS: usize = SCAN_TILES * TILE_ROWS;

fn tmp_file(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "sciql-bench-ingest-{}-{}-{tag}.scpy",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// The synthetic frame stream: `k` ascending (arrival order), `v` a
/// deterministic payload.
fn frame_columns(rows: usize) -> Vec<Bat> {
    let k: Vec<i32> = (0..rows as i32).collect();
    let v: Vec<f64> = (0..rows).map(|i| (i % 251) as f64 / 4.0).collect();
    vec![Bat::from_ints(k), Bat::from_dbls(v)]
}

fn fresh_table() -> Connection {
    let mut c = Connection::new();
    c.execute("CREATE TABLE ev (k INT, v DOUBLE)").unwrap();
    c
}

/// One tile of rows into a fresh table: streaming COPY vs the INSERT
/// loop. Same rows, same table shape; only the ingest path differs.
fn bench_copy_vs_insert(c: &mut Criterion) {
    let mut g = c.benchmark_group("ingest/load_8k");
    g.throughput(Throughput::Elements(LOAD_ROWS as u64));
    let path = tmp_file("load");
    write_copy_binary(&path, &frame_columns(LOAD_ROWS)).unwrap();
    let copy_sql = format!("COPY ev FROM '{}' (FORMAT binary)", path.display());
    g.bench_function(BenchmarkId::from_parameter("copy_binary"), |b| {
        b.iter_with_setup(fresh_table, |mut conn| {
            conn.execute(&copy_sql).unwrap();
            conn
        })
    });
    g.bench_function(BenchmarkId::from_parameter("insert_loop"), |b| {
        b.iter_with_setup(fresh_table, |mut conn| {
            for i in 0..LOAD_ROWS {
                conn.execute(&format!(
                    "INSERT INTO ev VALUES ({i}, {})",
                    (i % 251) as f64 / 4.0
                ))
                .unwrap();
            }
            conn
        })
    });
    std::fs::remove_file(&path).ok();
    g.finish();
}

/// Point probe on the clustered table: zone maps prune 63 of 64 tiles
/// when skipping is on; the `zone_skip = false` twin runs the identical
/// plan over every tile. Single-threaded so the full scan cannot hide
/// behind parallelism.
fn bench_skip_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("ingest/scan_512k");
    g.throughput(Throughput::Elements(SCAN_ROWS as u64));
    let path = tmp_file("scan");
    write_copy_binary(&path, &frame_columns(SCAN_ROWS)).unwrap();
    let mk = |zone_skip: bool| {
        let mut conn = Connection::with_config(SessionConfig {
            threads: 1,
            zone_skip,
            ..SessionConfig::default()
        });
        conn.execute("CREATE TABLE ev (k INT, v DOUBLE)").unwrap();
        conn.execute(&format!(
            "COPY ev FROM '{}' (FORMAT binary)",
            path.display()
        ))
        .unwrap();
        conn
    };
    let mut skip = mk(true);
    let mut full = mk(false);
    std::fs::remove_file(&path).ok();
    let probe = format!("SELECT v FROM ev WHERE k = {}", SCAN_ROWS / 2);
    g.bench_function(BenchmarkId::from_parameter("zone_skip"), |b| {
        b.iter(|| black_box(skip.query(&probe).unwrap()))
    });
    assert!(
        skip.last_exec().exec.tiles_skipped >= SCAN_TILES - 1,
        "probe must actually skip tiles"
    );
    g.bench_function(BenchmarkId::from_parameter("full_scan"), |b| {
        b.iter(|| black_box(full.query(&probe).unwrap()))
    });
    assert_eq!(full.last_exec().exec.tiles_skipped, 0);
    g.finish();
}

criterion_group! {
    name = benches;
    config = sciql_bench::criterion_config();
    targets = bench_copy_vs_insert, bench_skip_scan
}
fn main() {
    sciql_bench::emit_meta(
        "ingest",
        &[
            ("load_rows", LOAD_ROWS as u64),
            ("scan_rows", SCAN_ROWS as u64),
            ("tile_rows", TILE_ROWS as u64),
        ],
        "bulk ingest: binary COPY vs INSERT loop on one tile, and a clustered point probe with zone-map tile skipping vs the full-scan twin",
    );
    benches();
}
