//! E8 (Scenario I): one Game-of-Life generation — SciQL structural
//! grouping vs the SQL self-join formulation it replaces vs the native
//! baseline, over a board-size sweep.
//!
//! The paper's claim: "In SQL, such query would require a eight-way
//! self-join" — i.e. the tiling formulation avoids a join that is
//! quadratic under our cross+filter executor. Expect the gap to widen
//! with board size; the self-join is only run on the small boards.

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sciql_life::{Board, SciqlLife};
use std::hint::black_box;

fn seeded_board(n: usize) -> Board {
    let mut b = Board::new(n, n);
    let mut rng = StdRng::seed_from_u64(2013);
    b.randomise(&mut rng, 0.35);
    b
}

fn bench_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("game_of_life/step");
    for n in [16usize, 32, 64, 128] {
        let cells = (n * n) as u64;
        g.throughput(Throughput::Elements(cells));
        let seed = seeded_board(n);

        // Native baseline.
        g.bench_with_input(BenchmarkId::new("native", n), &n, |b, _| {
            let mut board = seed.clone();
            b.iter(|| {
                board = board.step();
                black_box(board.population())
            })
        });

        // SciQL structural grouping (the paper's contribution).
        g.bench_with_input(BenchmarkId::new("sciql_tiling", n), &n, |b, &n| {
            let mut game = SciqlLife::new(n, n).unwrap();
            game.load(&seed).unwrap();
            b.iter(|| game.step().unwrap())
        });

        // SQL self-join baseline — quadratic; keep it to feasible sizes.
        if n <= 32 {
            g.bench_with_input(BenchmarkId::new("sql_selfjoin", n), &n, |b, &n| {
                let mut game = SciqlLife::new(n, n).unwrap();
                game.load(&seed).unwrap();
                b.iter(|| game.step_sql_join().unwrap())
            });
        }
    }
    g.finish();
}

fn fast() -> Criterion {
    // Shared profile (quick mode under SCIQL_BENCH_QUICK for CI).
    sciql_bench::criterion_config()
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench_step
}
fn main() {
    sciql_bench::emit_meta(
        "game_of_life",
        &[],
        "Game-of-Life generation steps through the SciQL tiling pipeline",
    );
    benches();
}
