//! A1–A3: ablations of the design choices DESIGN.md calls out.
//!
//! * A1 — MAL optimizer pipeline on/off (constant folding + CSE + alias
//!   removal + DCE);
//! * A2 — candidate-list pushdown vs bit-mask filtering in codegen;
//! * A3 — void (virtual dense) dimension columns vs materialised oids at
//!   the kernel level.

use criterion::{criterion_group, BenchmarkId, Criterion};
use gdk::arith::CmpOp;
use gdk::{select, Bat, Value};
use mal::OptConfig;
use sciql_algebra::CodegenOptions;
use sciql_bench::holey_matrix_session;
use std::hint::black_box;

/// A1: optimizer pipeline on/off, on two workloads:
/// * `tiling` — the 3×3 AVG tile. The binder/codegen already emit lean
///   MAL here (CSE finds one duplicate fill), so this measures the
///   pipeline's overhead in the no-win case.
/// * `redundant` — a projection repeating two O(n) shift subtrees; CSE
///   eliminates the duplicated shifts, so this measures the win case.
fn bench_optimizer_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/mal_optimizer");
    let tiling = "SELECT [x], [y], AVG(v) FROM matrix \
                  GROUP BY matrix[x-1:x+2][y-1:y+2]";
    let redundant = "SELECT ABS(v - matrix[x-1][y]) + ABS(v - matrix[x][y-1]), \
                     ABS(v - matrix[x-1][y]) * 2, \
                     ABS(v - matrix[x][y-1]) * 2 FROM matrix";
    for (workload, sql) in [("tiling", tiling), ("redundant", redundant)] {
        for n in [64usize, 128] {
            let mut on = holey_matrix_session(n);
            on.set_optimizer(OptConfig::default());
            g.bench_with_input(
                BenchmarkId::new(format!("{workload}_optimizers_on"), n),
                &n,
                |b, _| b.iter(|| black_box(on.query(sql).unwrap())),
            );
            let mut off = holey_matrix_session(n);
            off.set_optimizer(OptConfig::none());
            g.bench_with_input(
                BenchmarkId::new(format!("{workload}_optimizers_off"), n),
                &n,
                |b, _| b.iter(|| black_box(off.query(sql).unwrap())),
            );
        }
    }
    g.finish();
}

/// A2: a selective filter compiled as thetaselect candidates vs bit masks.
fn bench_candidate_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/candidate_pushdown");
    let sql = "SELECT v FROM matrix WHERE x > 3 AND y <= 10";
    for n in [64usize, 256] {
        let mut with = holey_matrix_session(n);
        with.set_codegen(CodegenOptions {
            candidate_pushdown: true,
            ..CodegenOptions::default()
        });
        g.bench_with_input(BenchmarkId::new("candidates", n), &n, |b, _| {
            b.iter(|| black_box(with.query(sql).unwrap()))
        });
        let mut without = holey_matrix_session(n);
        without.set_codegen(CodegenOptions {
            candidate_pushdown: false,
            ..CodegenOptions::default()
        });
        g.bench_with_input(BenchmarkId::new("masks", n), &n, |b, _| {
            b.iter(|| black_box(without.query(sql).unwrap()))
        });
    }
    g.finish();
}

/// A3: selecting on a void (virtual) column vs a materialised oid column.
fn bench_void_vs_materialised(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/void_vs_materialised");
    for n in [1usize << 16, 1 << 20] {
        let void = Bat::dense(0, n);
        let materialised = void.materialise();
        let needle = Value::Lng((n / 2) as i64);
        g.bench_with_input(BenchmarkId::new("void_select", n), &void, |b, col| {
            b.iter(|| black_box(select::thetaselect(col, None, &needle, CmpOp::Ge).unwrap()))
        });
        g.bench_with_input(
            BenchmarkId::new("materialised_select", n),
            &materialised,
            |b, col| {
                b.iter(|| black_box(select::thetaselect(col, None, &needle, CmpOp::Ge).unwrap()))
            },
        );
    }
    g.finish();
}

fn fast() -> Criterion {
    // Shared profile (quick mode under SCIQL_BENCH_QUICK for CI).
    sciql_bench::criterion_config()
}

criterion_group! {
    name = benches;
    config = fast();
    targets =
    bench_optimizer_ablation,
    bench_candidate_ablation,
    bench_void_vs_materialised

}
fn main() {
    sciql_bench::emit_meta("ablations", &[("cells", 65536)], "optimizer/candidate-pushdown ablations on a 256x256 array; see bench source for query texts");
    benches();
}
