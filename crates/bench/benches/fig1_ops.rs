//! E1–E5: the Fig 1 array operations as micro-benchmarks over a size
//! sweep — array creation, guarded update, insert/delete, 2×2 tiling and
//! dimension expansion.

use criterion::{criterion_group, BenchmarkId, Criterion};
use sciql::Connection;
use sciql_bench::{holey_matrix_session, matrix_session};
use std::hint::black_box;

const SIZES: [usize; 3] = [16, 64, 256];

fn bench_create(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_ops/create");
    for n in SIZES {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut conn = Connection::new();
                conn.execute(&format!(
                    "CREATE ARRAY matrix (x INT DIMENSION[0:1:{n}], \
                     y INT DIMENSION[0:1:{n}], v INT DEFAULT 0)"
                ))
                .unwrap();
                black_box(conn)
            })
        });
    }
    g.finish();
}

fn bench_guarded_update(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_ops/guarded_update");
    for n in SIZES {
        let mut conn = matrix_session(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                conn.execute(
                    "UPDATE matrix SET v = CASE WHEN x > y THEN x + y \
                     WHEN x < y THEN x - y ELSE 0 END",
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

fn bench_insert_delete(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_ops/insert_delete");
    for n in SIZES {
        let mut conn = matrix_session(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                conn.execute("INSERT INTO matrix SELECT [x], [y], x * y FROM matrix WHERE x = y")
                    .unwrap();
                conn.execute("DELETE FROM matrix WHERE x > y").unwrap();
            })
        });
    }
    g.finish();
}

fn bench_tiling(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_ops/tiling_2x2");
    for n in SIZES {
        let mut conn = holey_matrix_session(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    conn.query(
                        "SELECT [x], [y], AVG(v) FROM matrix \
                         GROUP BY matrix[x:x+2][y:y+2] \
                         HAVING x MOD 2 = 1 AND y MOD 2 = 1",
                    )
                    .unwrap(),
                )
            })
        });
    }
    g.finish();
}

fn bench_alter(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_ops/alter_dimension");
    for n in SIZES {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter_with_setup(
                || matrix_session(n),
                |mut conn| {
                    conn.execute(&format!(
                        "ALTER ARRAY matrix ALTER DIMENSION x SET RANGE [-1:1:{}]",
                        n + 1
                    ))
                    .unwrap();
                    black_box(conn)
                },
            )
        });
    }
    g.finish();
}

fn fast() -> Criterion {
    // Shared profile (quick mode under SCIQL_BENCH_QUICK for CI).
    sciql_bench::criterion_config()
}

criterion_group! {
    name = benches;
    config = fast();
    targets =
    bench_create,
    bench_guarded_update,
    bench_insert_delete,
    bench_tiling,
    bench_alter

}
fn main() {
    sciql_bench::emit_meta(
        "fig1_ops",
        &[("cells", 65536)],
        "the Fig-1 SciQL statement suite on a 256x256 array",
    );
    benches();
}
