//! Driver benchmark: bound-parameter prepared statements vs unprepared
//! text re-execution through the unified `sciql_repro::driver` surface.
//!
//! A prepared statement compiles its plan **once**; every re-execution
//! binds fresh values into the cached MAL program and skips parse,
//! name-resolution and the whole optimizer pipeline. The benchmark makes
//! that overhead visible on a small array (execution is cheap, so the
//! per-statement planning cost dominates) and on a larger scan (where
//! the relative win shrinks but must not invert).
//!
//! Run with `CRITERION_JSON_OUT=BENCH_driver.json cargo bench -p
//! sciql-bench --bench driver` to record a baseline. The CI bench-guard
//! job checks (machine-independently) that the `/prepared` ids beat
//! their `/unprepared` twins.

use criterion::{criterion_group, BenchmarkId, Criterion};
use gdk::Value;
use sciql_repro::driver::{Conn, Sciql};
use std::hint::black_box;

const SMALL: usize = 32; // 1k cells: planning dominates
const LARGE: usize = 512; // 256k cells: execution dominates

/// The statement under test: enough predicates and expression structure
/// that the parser, binder and 7-pass optimizer have real work to redo
/// on every unprepared execution.
const SQL_TMPL: &str = "SELECT COUNT(*), SUM(v) FROM m WHERE x > {lo} AND y > {lo} \
                        AND v BETWEEN {lo} AND {hi}";
const SQL_BOUND: &str = "SELECT COUNT(*), SUM(v) FROM m WHERE x > :lo AND y > :lo \
                         AND v BETWEEN :lo AND :hi";

fn session(n: usize) -> Conn {
    let mut conn = Sciql::connect("mem:").expect("mem: connect");
    conn.execute(&format!(
        "CREATE ARRAY m (x INT DIMENSION[0:1:{n}], y INT DIMENSION[0:1:{n}], v INT DEFAULT 0)"
    ))
    .unwrap();
    conn.execute("UPDATE m SET v = x + y").unwrap();
    conn
}

fn bench_prepared_vs_unprepared(c: &mut Criterion) {
    for (label, n) in [("cells_1k", SMALL), ("cells_256k", LARGE)] {
        let mut conn = session(n);
        let stmt = conn.prepare(SQL_BOUND).unwrap();
        // Warm the plan cache, then prove every measured iteration hits it.
        conn.query_bound(&stmt, &[Value::Int(1), Value::Int(9)])
            .unwrap();
        conn.query_bound(&stmt, &[Value::Int(1), Value::Int(9)])
            .unwrap();
        assert_eq!(conn.last_plan_cache_hits().unwrap(), 1, "cache must hit");
        let mut g = c.benchmark_group("driver");
        let mut flip = 0i32;
        g.bench_function(BenchmarkId::new(label, "prepared"), |b| {
            b.iter(|| {
                flip = (flip + 1) % 4;
                let rows = conn
                    .query_bound(&stmt, &[Value::Int(flip), Value::Int(9 + flip)])
                    .unwrap();
                black_box(rows.row_count())
            })
        });
        g.bench_function(BenchmarkId::new(label, "unprepared"), |b| {
            b.iter(|| {
                flip = (flip + 1) % 4;
                let sql = SQL_TMPL
                    .replace("{lo}", &flip.to_string())
                    .replace("{hi}", &(9 + flip).to_string());
                let rows = conn.query(&sql).unwrap();
                black_box(rows.row_count())
            })
        });
        g.finish();
    }
}

criterion_group! {
    name = benches;
    config = sciql_bench::criterion_config();
    targets = bench_prepared_vs_unprepared
}

fn main() {
    sciql_bench::emit_meta(
        "driver",
        &[
            ("small_cells", (SMALL * SMALL) as u64),
            ("large_cells", (LARGE * LARGE) as u64),
        ],
        "bound-parameter prepared statements vs unprepared text re-execution through \
         sciql_repro::driver on an embedded mem: transport; prepared executions reuse the \
         compiled MAL plan (ExecStats::plan_cache_hits = 1) and skip parse + bind + the \
         7-pass optimizer, so /prepared must beat /unprepared, most visibly on the small \
         array where planning dominates",
    );
    benches();
}
