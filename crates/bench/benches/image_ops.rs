//! E9/E10 (Scenario II): every demo image operation, SciQL vs the native
//! baseline, over an image-size sweep. Also measures the demo's claim
//! that slab selection ("AreasOfInterest" / zoom) is proportional to the
//! selected area, not the image size.

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use sciql_imaging::{ops, synth, GreyImage, SciqlImages};
use std::hint::black_box;

const SIZES: [usize; 2] = [64, 128];

fn session(img: &GreyImage) -> SciqlImages {
    let mut s = SciqlImages::new();
    s.load("img", img).unwrap();
    s
}

fn bench_pointwise(c: &mut Criterion) {
    let mut g = c.benchmark_group("image/pointwise");
    for n in SIZES {
        let img = synth::building(n, n, 42);
        g.throughput(Throughput::Elements((n * n) as u64));
        g.bench_with_input(BenchmarkId::new("invert_native", n), &img, |b, img| {
            b.iter(|| black_box(ops::invert(img)))
        });
        let mut s = session(&img);
        g.bench_with_input(BenchmarkId::new("invert_sciql", n), &n, |b, _| {
            b.iter(|| black_box(s.invert("img").unwrap()))
        });
        let mut s = session(&img);
        g.bench_with_input(BenchmarkId::new("brighten_sciql", n), &n, |b, _| {
            b.iter(|| black_box(s.brighten("img", 40).unwrap()))
        });
        let mut s = session(&img);
        g.bench_with_input(BenchmarkId::new("water_sciql", n), &n, |b, _| {
            b.iter(|| black_box(s.filter_water("img", 70).unwrap()))
        });
    }
    g.finish();
}

fn bench_neighbourhood(c: &mut Criterion) {
    let mut g = c.benchmark_group("image/neighbourhood");
    for n in SIZES {
        let img = synth::building(n, n, 42);
        g.throughput(Throughput::Elements((n * n) as u64));
        g.bench_with_input(BenchmarkId::new("edges_native", n), &img, |b, img| {
            b.iter(|| black_box(ops::edges(img)))
        });
        let mut s = session(&img);
        g.bench_with_input(BenchmarkId::new("edges_sciql", n), &n, |b, _| {
            b.iter(|| black_box(s.edges("img").unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("smooth_native", n), &img, |b, img| {
            b.iter(|| black_box(ops::smooth(img)))
        });
        let mut s = session(&img);
        g.bench_with_input(BenchmarkId::new("smooth_sciql", n), &n, |b, _| {
            b.iter(|| black_box(s.smooth("img").unwrap()))
        });
    }
    g.finish();
}

fn bench_restructure(c: &mut Criterion) {
    let mut g = c.benchmark_group("image/restructure");
    for n in SIZES {
        let img = synth::terrain(n, n, 7);
        g.throughput(Throughput::Elements((n * n) as u64));
        let mut s = session(&img);
        g.bench_with_input(BenchmarkId::new("reduce_sciql", n), &n, |b, _| {
            b.iter(|| black_box(s.reduce("img").unwrap()))
        });
        let mut s = session(&img);
        g.bench_with_input(BenchmarkId::new("rotate_sciql", n), &n, |b, _| {
            b.iter(|| black_box(s.rotate90("img").unwrap()))
        });
        let mut s = session(&img);
        g.bench_with_input(BenchmarkId::new("histogram_sciql", n), &n, |b, _| {
            b.iter(|| black_box(s.histogram("img", 32).unwrap()))
        });
    }
    g.finish();
}

/// Slab selection cost tracks the *selected area*: fixed 32×32 slab from
/// growing images should stay roughly flat once per-query overhead
/// dominates scanning.
fn bench_slab_proportionality(c: &mut Criterion) {
    let mut g = c.benchmark_group("image/slab_selection");
    for n in [64usize, 128, 256] {
        let img = synth::terrain(n, n, 7);
        let mut s = session(&img);
        g.bench_with_input(BenchmarkId::new("fixed_32x32_slab", n), &n, |b, _| {
            b.iter(|| black_box(s.zoom("img", 8, 40, 8, 40).unwrap()))
        });
        let mut s = session(&img);
        g.bench_with_input(BenchmarkId::new("full_image_read", n), &n, |b, _| {
            b.iter(|| black_box(s.connection().query("SELECT [x], [y], v FROM img").unwrap()))
        });
    }
    g.finish();
}

fn bench_areas_of_interest(c: &mut Criterion) {
    let mut g = c.benchmark_group("image/areas_of_interest");
    for n in SIZES {
        let img = synth::terrain(n, n, 7);
        let mask = synth::ellipse_mask(n, n);
        let mut s = session(&img);
        s.load("mask", &mask).unwrap();
        g.throughput(Throughput::Elements((n * n) as u64));
        g.bench_with_input(BenchmarkId::new("bitmask_join_sciql", n), &n, |b, _| {
            b.iter(|| black_box(s.mask_select("img", "mask").unwrap()))
        });
        g.bench_with_input(
            BenchmarkId::new("bitmask_native", n),
            &(&img, &mask),
            |b, (img, mask)| b.iter(|| black_box(ops::mask_select(img, mask))),
        );
        let boxes = [(n / 8, n / 2, n / 8, n / 2)];
        let mut s = session(&img);
        g.bench_with_input(BenchmarkId::new("bbox_table_join_sciql", n), &n, |b, _| {
            b.iter(|| black_box(s.bbox_select("img", &boxes).unwrap()))
        });
    }
    g.finish();
}

fn fast() -> Criterion {
    // Shared profile (quick mode under SCIQL_BENCH_QUICK for CI).
    sciql_bench::criterion_config()
}

criterion_group! {
    name = benches;
    config = fast();
    targets =
    bench_pointwise,
    bench_neighbourhood,
    bench_restructure,
    bench_slab_proportionality,
    bench_areas_of_interest

}
fn main() {
    sciql_bench::emit_meta(
        "image_ops",
        &[],
        "image workload (invert/threshold/smooth) through SciQL vs direct kernels",
    );
    benches();
}
