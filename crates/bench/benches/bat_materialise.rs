//! E6 (Fig 3): cost of materialising array storage with the paper's two
//! MAL primitives, `array.series` and `array.filler`, across array sizes.

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use gdk::{Bat, Value};
use std::hint::black_box;

fn bench_series(c: &mut Criterion) {
    let mut g = c.benchmark_group("bat_materialise/series");
    for n in [64usize, 256, 1024] {
        let cells = (n * n) as u64;
        g.throughput(Throughput::Elements(cells));
        // x dimension of an n×n array: each value repeated n times.
        g.bench_with_input(BenchmarkId::new("x_dim", n), &n, |b, &n| {
            b.iter(|| black_box(Bat::series(0, 1, n as i64, n, 1).unwrap()))
        });
        // y dimension: the sequence repeated n times.
        g.bench_with_input(BenchmarkId::new("y_dim", n), &n, |b, &n| {
            b.iter(|| black_box(Bat::series(0, 1, n as i64, 1, n).unwrap()))
        });
    }
    g.finish();
}

fn bench_filler(c: &mut Criterion) {
    let mut g = c.benchmark_group("bat_materialise/filler");
    for n in [64usize, 256, 1024] {
        let cells = n * n;
        g.throughput(Throughput::Elements(cells as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &cells, |b, &cells| {
            b.iter(|| black_box(Bat::filler(cells, &Value::Int(0)).unwrap()))
        });
    }
    g.finish();
}

fn bench_full_array(c: &mut Criterion) {
    // The complete three-BAT materialisation of Fig 3 via the MAL
    // interpreter (series ×2 + filler), as CREATE ARRAY runs it.
    use mal::{Arg, EmptyBinder, Interpreter, MalType, Program};
    let registry = mal::prims::default_registry();
    let mut g = c.benchmark_group("bat_materialise/fig3_via_mal");
    for n in [64i64, 256, 1024] {
        let mut p = Program::new("fig3");
        let x = p.emit(
            "array",
            "series",
            vec![
                Arg::Const(Value::Int(0)),
                Arg::Const(Value::Int(1)),
                Arg::Const(Value::Lng(n)),
                Arg::Const(Value::Lng(n)),
                Arg::Const(Value::Lng(1)),
            ],
            MalType::Bat(gdk::ScalarType::Int),
        );
        let y = p.emit(
            "array",
            "series",
            vec![
                Arg::Const(Value::Int(0)),
                Arg::Const(Value::Int(1)),
                Arg::Const(Value::Lng(n)),
                Arg::Const(Value::Lng(1)),
                Arg::Const(Value::Lng(n)),
            ],
            MalType::Bat(gdk::ScalarType::Int),
        );
        let v = p.emit(
            "array",
            "filler",
            vec![Arg::Const(Value::Lng(n * n)), Arg::Const(Value::Int(0))],
            MalType::Bat(gdk::ScalarType::Int),
        );
        p.add_result("x", x);
        p.add_result("y", y);
        p.add_result("v", v);
        g.throughput(Throughput::Elements((n * n) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &p, |b, p| {
            let interp = Interpreter::new(&registry, &EmptyBinder);
            b.iter(|| black_box(interp.run(p).unwrap()))
        });
    }
    g.finish();
}

fn fast() -> Criterion {
    // Shared profile (quick mode under SCIQL_BENCH_QUICK for CI).
    sciql_bench::criterion_config()
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench_series, bench_filler, bench_full_array
}
fn main() {
    sciql_bench::emit_meta(
        "bat_materialise",
        &[],
        "BAT construction and materialisation microbenchmarks",
    );
    benches();
}
