//! Network benchmark: wire round-trip latency and result-streaming
//! throughput of the `sciql-net` server over loopback, with the embedded
//! engine as the no-network baseline.
//!
//! Run with `CRITERION_JSON_OUT=BENCH_net.json cargo bench -p sciql-bench
//! --bench net` to record a baseline.

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use sciql::SharedEngine;
use sciql_net::{Client, Server, ServerHandle};
use std::hint::black_box;

const SIDE: usize = 64;
const CELLS: usize = SIDE * SIDE; // 4096 rows streamed by the big SELECT

/// One served engine with the benchmark schema.
fn served() -> (ServerHandle, Client) {
    let engine = SharedEngine::in_memory();
    {
        let mut s = engine.session();
        s.execute(&format!(
            "CREATE ARRAY big (x INT DIMENSION[0:1:{SIDE}], y INT DIMENSION[0:1:{SIDE}], \
             v INT DEFAULT 0)"
        ))
        .unwrap();
        s.execute("UPDATE big SET v = x * y").unwrap();
    }
    let handle = Server::bind(engine, "127.0.0.1:0")
        .unwrap()
        .serve()
        .unwrap();
    let client = Client::connect(handle.addr()).unwrap();
    (handle, client)
}

/// Pure protocol round trip (ping/pong): the floor every query pays.
fn bench_roundtrip(c: &mut Criterion) {
    let mut g = c.benchmark_group("net/roundtrip");
    let (handle, mut client) = served();
    g.bench_function(BenchmarkId::from_parameter("ping"), |b| {
        b.iter(|| client.ping().unwrap())
    });
    // Smallest possible query: parse + snapshot + 1×1 result over the wire.
    g.bench_function(BenchmarkId::from_parameter("select_scalar"), |b| {
        b.iter(|| black_box(client.query("SELECT 1 + 1").unwrap()))
    });
    client.shutdown_server().unwrap();
    handle.wait();
    g.finish();
}

/// Streaming a 4096-row result: header + pages + reassembly, vs the
/// embedded engine answering the same query with no wire in between.
fn bench_streaming(c: &mut Criterion) {
    let mut g = c.benchmark_group("net/stream");
    g.throughput(Throughput::Elements(CELLS as u64));
    let (handle, mut client) = served();
    g.bench_function(BenchmarkId::from_parameter("select_4k_rows_net"), |b| {
        b.iter(|| black_box(client.query("SELECT x, y, v FROM big").unwrap()))
    });
    let engine = {
        client.shutdown_server().unwrap();
        handle.wait()
    };
    let mut embedded = engine.session();
    g.bench_function(
        BenchmarkId::from_parameter("select_4k_rows_embedded"),
        |b| b.iter(|| black_box(embedded.query("SELECT x, y, v FROM big").unwrap())),
    );
    g.finish();
}

/// Write path over the wire: the per-statement cost a remote client pays
/// (frame + parse + single-writer lock), in-memory engine so the WAL
/// fsync (measured in BENCH_store.json) doesn't drown the wire cost.
fn bench_writes(c: &mut Criterion) {
    let mut g = c.benchmark_group("net/write");
    let (handle, mut client) = served();
    g.bench_function(BenchmarkId::from_parameter("update_one_cell"), |b| {
        b.iter(|| {
            client
                .execute("UPDATE big SET v = 1 WHERE x = 0 AND y = 0")
                .unwrap()
        })
    });
    client.shutdown_server().unwrap();
    handle.wait();
    g.finish();
}

criterion_group! {
    name = benches;
    config = sciql_bench::criterion_config();
    targets = bench_roundtrip, bench_streaming, bench_writes
}
fn main() {
    sciql_bench::emit_meta("net", &[("rows_streamed", 4096)], "sciql-net loopback round-trip/streaming/write benchmarks; embedded twin measures the no-wire path");
    benches();
}
