//! Network benchmark: wire round-trip latency and result-streaming
//! throughput of the `sciql-net` server over loopback, with the embedded
//! engine as the no-network baseline.
//!
//! Run with `CRITERION_JSON_OUT=BENCH_net.json cargo bench -p sciql-bench
//! --bench net` to record a baseline.

use criterion::{criterion_group, BenchmarkGroup, BenchmarkId, Criterion, Throughput};
use sciql::SharedEngine;
use sciql_net::{Client, Server, ServerConfig, ServerHandle};
use sciql_repl::Replica;
use sciql_repro::driver::Sciql;
use std::hint::black_box;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::Instant;

const SIDE: usize = 64;
const CELLS: usize = SIDE * SIDE; // 4096 rows streamed by the big SELECT

/// One served engine with the benchmark schema.
fn served() -> (ServerHandle, Client) {
    let engine = SharedEngine::in_memory();
    {
        let mut s = engine.session();
        s.execute(&format!(
            "CREATE ARRAY big (x INT DIMENSION[0:1:{SIDE}], y INT DIMENSION[0:1:{SIDE}], \
             v INT DEFAULT 0)"
        ))
        .unwrap();
        s.execute("UPDATE big SET v = x * y").unwrap();
    }
    let handle = Server::bind(engine, "127.0.0.1:0")
        .unwrap()
        .serve()
        .unwrap();
    let client = Client::connect(handle.addr()).unwrap();
    (handle, client)
}

/// Pure protocol round trip (ping/pong): the floor every query pays.
fn bench_roundtrip(c: &mut Criterion) {
    let mut g = c.benchmark_group("net/roundtrip");
    let (handle, mut client) = served();
    g.bench_function(BenchmarkId::from_parameter("ping"), |b| {
        b.iter(|| client.ping().unwrap())
    });
    // Smallest possible query: parse + snapshot + 1×1 result over the wire.
    g.bench_function(BenchmarkId::from_parameter("select_scalar"), |b| {
        b.iter(|| black_box(client.query("SELECT 1 + 1").unwrap()))
    });
    client.shutdown_server().unwrap();
    handle.wait();
    g.finish();
}

/// Streaming a 4096-row result: header + pages + reassembly, vs the
/// embedded engine answering the same query with no wire in between.
fn bench_streaming(c: &mut Criterion) {
    let mut g = c.benchmark_group("net/stream");
    g.throughput(Throughput::Elements(CELLS as u64));
    let (handle, mut client) = served();
    g.bench_function(BenchmarkId::from_parameter("select_4k_rows_net"), |b| {
        b.iter(|| black_box(client.query("SELECT x, y, v FROM big").unwrap()))
    });
    let engine = {
        client.shutdown_server().unwrap();
        handle.wait()
    };
    let mut embedded = engine.session();
    g.bench_function(
        BenchmarkId::from_parameter("select_4k_rows_embedded"),
        |b| b.iter(|| black_box(embedded.query("SELECT x, y, v FROM big").unwrap())),
    );
    g.finish();
}

/// Write path over the wire: the per-statement cost a remote client pays
/// (frame + parse + single-writer lock), in-memory engine so the WAL
/// fsync (measured in BENCH_store.json) doesn't drown the wire cost.
fn bench_writes(c: &mut Criterion) {
    let mut g = c.benchmark_group("net/write");
    let (handle, mut client) = served();
    g.bench_function(BenchmarkId::from_parameter("update_one_cell"), |b| {
        b.iter(|| {
            client
                .execute("UPDATE big SET v = 1 WHERE x = 0 AND y = 0")
                .unwrap()
        })
    });
    client.shutdown_server().unwrap();
    handle.wait();
    g.finish();
}

/// High-concurrency write path over a durable vault: N clients each
/// send one pipelined batch (6 INSERTs + 1 SELECT) per round, grouped
/// (writers share one WAL fsync through the group committer) vs solo
/// (per-statement fsync).
/// The bench-guard's EXPECT_FASTER gate requires the grouped 64-writer
/// round to beat the solo one by ≥ 3× — the whole point of group
/// commit. Per-statement p99 and the run's group-commit batch stats
/// (fsyncs saved, batch-size quantiles) land in `BENCH_net.json` as
/// extra JSON lines the guard ignores.
fn bench_concurrency(c: &mut Criterion) {
    let quick = sciql_bench::quick_mode();
    let mut g = c.benchmark_group("net/concurrency");
    // The 64-client grouped/solo pair is the gated invariant, so quick
    // mode keeps exactly that pair; the full profile adds the scaling
    // points.
    let cases: &[(usize, bool)] = if quick {
        &[(64, true), (64, false)]
    } else {
        &[(16, true), (64, true), (256, true), (64, false)]
    };
    for &(n, grouped) in cases {
        bench_concurrency_case(&mut g, n, grouped);
    }
    g.finish();
    emit_group_commit_stats();
}

fn bench_concurrency_case(g: &mut BenchmarkGroup<'_>, n: usize, grouped: bool) {
    let dir = std::env::temp_dir().join(format!(
        "sciql-bench-conc-{}-{n}-{grouped}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    let engine = SharedEngine::open(&dir).unwrap();
    {
        let mut s = engine.session();
        s.execute("CREATE TABLE log (who INT, k INT)").unwrap();
        s.execute(
            "CREATE ARRAY grid (x INT DIMENSION[0:1:8], y INT DIMENSION[0:1:8], v INT DEFAULT 0)",
        )
        .unwrap();
    }
    let cfg = ServerConfig {
        group_commit: grouped,
        ..ServerConfig::default()
    };
    let handle = Server::bind_with_config(engine, "127.0.0.1:0", cfg)
        .unwrap()
        .serve()
        .unwrap();
    let addr = handle.addr();
    // A fleet of persistent clients, advanced one round per measured
    // iteration by a pair of barriers (start / done).
    let start = Arc::new(Barrier::new(n + 1));
    let done = Arc::new(Barrier::new(n + 1));
    let stop = Arc::new(AtomicBool::new(false));
    let latencies: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let mut workers = Vec::new();
    for w in 0..n {
        let (start, done, stop, latencies) = (
            Arc::clone(&start),
            Arc::clone(&done),
            Arc::clone(&stop),
            Arc::clone(&latencies),
        );
        workers.push(std::thread::spawn(move || {
            let mut c = Client::connect_named(addr, &format!("conc-{w}")).unwrap();
            // Each round is one pipelined batch (6 INSERTs + 1 SELECT in
            // a single socket write): how a batching driver actually
            // talks to the server, and what lets concurrent writers pile
            // up in the commit queue for the group committer to drain.
            let mut k = 0u64;
            let mut local: Vec<u64> = Vec::new();
            loop {
                start.wait();
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let ins: Vec<String> = (0..6)
                    .map(|i| format!("INSERT INTO log VALUES ({w}, {})", k + i))
                    .collect();
                k += 6;
                let mut batch: Vec<&str> = ins.iter().map(String::as_str).collect();
                batch.push("SELECT COUNT(*) FROM grid");
                let t = Instant::now();
                let replies = c.execute_pipelined(&batch).unwrap();
                local.push(t.elapsed().as_nanos() as u64);
                for r in replies {
                    r.unwrap();
                }
                done.wait();
            }
            latencies.lock().unwrap().extend(local);
            c.close().ok();
        }));
    }
    let label = format!(
        "mixed_{n}_{}",
        if grouped { "grouped" } else { "solo_fsync" }
    );
    g.throughput(Throughput::Elements((n * 7) as u64));
    {
        let (start, done) = (Arc::clone(&start), Arc::clone(&done));
        g.bench_function(BenchmarkId::from_parameter(&label), move |b| {
            b.iter(|| {
                start.wait();
                done.wait();
            })
        });
    }
    stop.store(true, Ordering::SeqCst);
    start.wait();
    for w in workers {
        w.join().unwrap();
    }
    let mut lats = std::mem::take(&mut *latencies.lock().unwrap());
    if !lats.is_empty() {
        lats.sort_unstable();
        let p99 = lats[(lats.len() - 1) * 99 / 100];
        let p50 = lats[(lats.len() - 1) / 2];
        append_json_line(&format!(
            "{{\"id\":\"net/concurrency/{label}/latency\",\"p50_ns\":{p50},\"p99_ns\":{p99},\
             \"batches\":{}}}",
            lats.len()
        ));
    }
    handle.stop();
    std::fs::remove_dir_all(&dir).ok();
}

/// WAL-shipping replication: how fast a fresh replica replays a
/// primary's WAL tail (catch-up, reported as a records/s JSON line the
/// guard tracks as context), and the read win of fanning an all-read
/// driver batch over 3 endpoints (primary + 2 replicas) instead of
/// pipelining it to the single primary. The bench-guard's
/// EXPECT_FASTER gate requires the 3-endpoint batch to finish ≥ 2×
/// faster — the whole point of read replicas.
fn bench_replication(c: &mut Criterion) {
    let mut g = c.benchmark_group("net/replication");
    let base = std::env::temp_dir().join(format!("sciql-bench-repl-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    let engine = SharedEngine::open(base.join("primary")).unwrap();
    let handle = Server::bind(Arc::clone(&engine), "127.0.0.1:0")
        .unwrap()
        .serve()
        .unwrap();
    let addr = handle.addr();
    let mut seed = Client::connect_named(addr, "repl-bench-seed").unwrap();
    // A 32,400-cell array: enough work per read to measure, but below
    // the 64k parallel threshold so each query runs serial — the
    // fan-out win must come from the extra endpoints, not from
    // intra-query threads.
    for r in seed
        .execute_pipelined(&[
            "CREATE ARRAY big (x INT DIMENSION[0:1:180], y INT DIMENSION[0:1:180], \
             v INT DEFAULT 0)",
            "UPDATE big SET v = x * y",
            "CREATE TABLE feed (k INT)",
        ])
        .unwrap()
    {
        r.unwrap();
    }
    // A WAL tail of single-row inserts for the fresh replica to replay.
    const RECORDS: usize = 512;
    for chunk in 0..RECORDS / 64 {
        let ins: Vec<String> = (0..64)
            .map(|i| format!("INSERT INTO feed VALUES ({})", chunk * 64 + i))
            .collect();
        let batch: Vec<&str> = ins.iter().map(String::as_str).collect();
        for r in seed.execute_pipelined(&batch).unwrap() {
            r.unwrap();
        }
    }

    let wait_caught_up = |replica: &Replica| {
        let deadline = Instant::now() + std::time::Duration::from_secs(120);
        while replica.applied() != engine.durable_position() {
            assert!(Instant::now() < deadline, "replica failed to catch up");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    };
    let t = Instant::now();
    let replica1 = Replica::connect(base.join("replica1"), &addr.to_string()).unwrap();
    wait_caught_up(&replica1);
    let secs = t.elapsed().as_secs_f64();
    append_json_line(&format!(
        "{{\"id\":\"net/replication/catch_up\",\"records\":{RECORDS},\"secs\":{secs:.6},\
         \"records_per_s\":{:.0}}}",
        RECORDS as f64 / secs
    ));
    let replica2 = Replica::connect(base.join("replica2"), &addr.to_string()).unwrap();
    wait_caught_up(&replica2);
    let h1 = Server::bind(Arc::clone(replica1.engine()), "127.0.0.1:0")
        .unwrap()
        .serve()
        .unwrap();
    let h2 = Server::bind(Arc::clone(replica2.engine()), "127.0.0.1:0")
        .unwrap()
        .serve()
        .unwrap();

    const BATCH: usize = 12;
    let sqls = vec!["SELECT SUM(v) FROM big"; BATCH];
    g.throughput(Throughput::Elements(BATCH as u64));
    let mut solo = Sciql::connect(&format!("tcp://{addr}")).unwrap();
    g.bench_function(BenchmarkId::from_parameter("read_batch_fanout_1"), |b| {
        b.iter(|| {
            for r in solo.run_batch(&sqls).unwrap() {
                black_box(r.unwrap());
            }
        })
    });
    let mut fanned = Sciql::connect(&format!("tcp://{addr},{},{}", h1.addr(), h2.addr())).unwrap();
    g.bench_function(BenchmarkId::from_parameter("read_batch_fanout_3"), |b| {
        b.iter(|| {
            for r in fanned.run_batch(&sqls).unwrap() {
                black_box(r.unwrap());
            }
        })
    });

    solo.close().unwrap();
    fanned.close().unwrap();
    seed.close().ok();
    replica1.stop();
    replica2.stop();
    h1.stop();
    h2.stop();
    handle.stop();
    std::fs::remove_dir_all(&base).ok();
    g.finish();
}

/// One run-wide line with the group committer's effectiveness: how many
/// fsyncs the grouped cases saved and how many statements each shared
/// fsync covered (the batch factor). `fsyncs_saved > 0` is an
/// acceptance criterion for the recorded baseline.
fn emit_group_commit_stats() {
    let snap = sciql_obs::global().snapshot();
    let saved = snap.counter("wal_fsyncs_saved").unwrap_or(0);
    let commits = snap.counter("group_commits").unwrap_or(0);
    let (batch_mean, batch_p50, batch_p99) = match snap.histogram("group_commit_batch") {
        Some(h) if h.count > 0 => (
            h.sum_ns as f64 / h.count as f64,
            h.quantile_ns(0.50),
            h.quantile_ns(0.99),
        ),
        _ => (0.0, 0, 0),
    };
    append_json_line(&format!(
        "{{\"id\":\"net/concurrency/group_commit\",\"fsyncs_saved\":{saved},\
         \"group_commits\":{commits},\"batch_mean\":{batch_mean:.2},\
         \"batch_p50\":{batch_p50},\"batch_p99\":{batch_p99}}}"
    ));
}

/// Append one raw JSON line to the `CRITERION_JSON_OUT` file (no-op in
/// plain `cargo bench` runs). Lines without a `min_ns` field are
/// invisible to the bench-guard but keep context in the baseline.
fn append_json_line(line: &str) {
    let Some(path) = std::env::var_os("CRITERION_JSON_OUT") else {
        return;
    };
    if let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        let _ = writeln!(file, "{line}");
    }
}

criterion_group! {
    name = benches;
    config = sciql_bench::criterion_config();
    targets = bench_roundtrip, bench_streaming, bench_writes, bench_concurrency, bench_replication
}
fn main() {
    sciql_bench::emit_meta("net", &[("rows_streamed", 4096), ("concurrency_stmts_per_client_round", 7), ("replication_read_batch", 12)], "sciql-net loopback round-trip/streaming/write benchmarks plus the N-client group-commit concurrency gauntlet and the replication catch-up / read fan-out pair; embedded twin measures the no-wire path");
    benches();
}
