//! Optimizer pipeline benchmark: the same select+project and
//! select+aggregate queries at `opt_level` 0 (naive generated plan),
//! 1 (classic shrinking passes) and 2 (full pipeline with candidate
//! propagation and fused `selectproject`/`selectagg` kernels).
//!
//! Run with `CRITERION_JSON_OUT=BENCH_opt.json cargo bench -p
//! sciql-bench --bench opt` to record a baseline. The CI bench-guard job
//! additionally checks (machine-independently) that the `/L2` ids beat
//! their `/L0` twins.

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use sciql::{Connection, SessionConfig};
use std::hint::black_box;

const N: usize = 1024; // N*N = 1M cells
const LEVELS: [u8; 3] = [0, 1, 2];

fn session(opt_level: u8) -> Connection {
    let mut conn = Connection::with_config(SessionConfig {
        opt_level,
        ..SessionConfig::default()
    });
    conn.execute(&format!(
        "CREATE ARRAY matrix (x INT DIMENSION[0:1:{N}], \
         y INT DIMENSION[0:1:{N}], v INT DEFAULT 0)"
    ))
    .unwrap();
    conn.execute("UPDATE matrix SET v = x + y").unwrap();
    conn
}

/// One query, swept over the optimizer levels.
fn sweep(c: &mut Criterion, group: &str, sql: &'static str) {
    let mut g = c.benchmark_group(format!("opt/{group}"));
    for level in LEVELS {
        let mut conn = session(level);
        g.throughput(Throughput::Elements((N * N) as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("L{level}")),
            &level,
            |b, _| b.iter(|| black_box(conn.query(sql).unwrap())),
        );
    }
    g.finish();
}

/// Select+project: `thetaselect` + `projection` fuse into one
/// `selectproject` scan at level 2 (and level 0 additionally pays for
/// the dead dimension projections DCE would have removed).
fn bench_select_project(c: &mut Criterion) {
    sweep(c, "select_project", "SELECT v FROM matrix WHERE x > 512");
}

/// Select+aggregate: the whole chain fuses into one `selectagg` scan at
/// level 2 — no candidate list, no projected intermediate.
fn bench_select_aggregate(c: &mut Criterion) {
    sweep(c, "select_sum", "SELECT SUM(v) FROM matrix WHERE x > 512");
    sweep(
        c,
        "select_count",
        "SELECT COUNT(v) FROM matrix WHERE y < 256",
    );
}

criterion_group! {
    name = benches;
    config = sciql_bench::criterion_config();
    targets = bench_select_project, bench_select_aggregate
}

fn main() {
    sciql_bench::emit_meta(
        "opt",
        &[("cells", (N * N) as u64)],
        "MAL optimizer pipeline ablation on a 1024x1024 array: L0 = naive generated plan, \
         L1 = classic shrinking passes, L2 = full pipeline with fused selectproject/selectagg \
         kernels; tracked metric is the L2-vs-L0 speedup on the select+project and \
         select+aggregate queries",
    );
    benches();
}
