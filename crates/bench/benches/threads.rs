//! Slice-parallelism benchmark: serial vs 2/4/8 worker threads on the
//! Fig 1 operations and the image workload at 1M cells, at both the
//! kernel level (`gdk::par` drivers directly) and the SQL level (a
//! `Connection` configured via `SessionConfig`).
//!
//! Run with `CRITERION_JSON_OUT=BENCH_parallel.json cargo bench -p
//! sciql-bench --bench threads` to record a baseline. Note: on a
//! single-vCPU host the sweep records the thread-dispatch overhead
//! rather than a speedup — the kernels cannot beat the hardware.

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use gdk::arith::{BinOp, CmpOp, Operand};
use gdk::par::ParConfig;
use gdk::{Bat, Value};
use sciql::{Connection, SessionConfig};
use std::hint::black_box;

const CELLS: usize = 1 << 20; // 1M
const THREADS: [usize; 4] = [1, 2, 4, 8];

fn forced(threads: usize) -> ParConfig {
    ParConfig {
        threads,
        parallel_threshold: 1024,
        zone_skip: true,
    }
}

/// Kernel-level sweep over the hot Fig-1 primitives on a 1M-cell column:
/// the guarded-update arithmetic (`batcalc`), the WHERE-clause select,
/// grouping by a dimension and the grouped SUM.
fn bench_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("threads/kernels_1m");
    let v = Bat::from_ints((0..CELLS as i32).map(|i| i % 1000).collect());
    let dim = Bat::from_ints((0..CELLS as i32).map(|i| i % 1024).collect());
    let groups = gdk::group::group_by(&dim, None, None).unwrap();
    for t in THREADS {
        let cfg = forced(t);
        g.throughput(Throughput::Elements(CELLS as u64));
        g.bench_with_input(BenchmarkId::new("arith_add", t), &t, |b, _| {
            b.iter(|| {
                black_box(
                    gdk::par::binop(
                        BinOp::Add,
                        Operand::Col(&v),
                        Operand::Scalar(&Value::Int(3)),
                        &cfg,
                    )
                    .unwrap(),
                )
            })
        });
        g.bench_with_input(BenchmarkId::new("select_ge", t), &t, |b, _| {
            b.iter(|| {
                black_box(
                    gdk::par::thetaselect(&v, None, &Value::Int(500), CmpOp::Ge, &cfg).unwrap(),
                )
            })
        });
        g.bench_with_input(BenchmarkId::new("group_by_dim", t), &t, |b, _| {
            b.iter(|| black_box(gdk::par::group_by(&dim, None, None, &cfg).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("grouped_sum", t), &t, |b, _| {
            b.iter(|| {
                black_box(
                    gdk::par::grouped(gdk::aggregate::AggFunc::Sum, &v, &groups, &cfg).unwrap(),
                )
            })
        });
    }
    g.finish();
}

fn session(threads: usize, n: usize) -> Connection {
    let mut conn = Connection::with_config(SessionConfig {
        threads,
        parallel_threshold: 1024,
        ..SessionConfig::default()
    });
    conn.execute(&format!(
        "CREATE ARRAY matrix (x INT DIMENSION[0:1:{n}], \
         y INT DIMENSION[0:1:{n}], v INT DEFAULT 0)"
    ))
    .unwrap();
    conn.execute(
        "UPDATE matrix SET v = CASE WHEN x > y THEN x + y \
         WHEN x < y THEN x - y ELSE 0 END",
    )
    .unwrap();
    conn
}

/// SQL-level sweep: the Fig-1 guarded update and aggregation queries on
/// a 1024×1024 (1M cell) array, with parallelism configured through
/// `SessionConfig` exactly as a user would.
fn bench_fig1_sql(c: &mut Criterion) {
    let mut g = c.benchmark_group("threads/fig1_sql_1m");
    let n = 1024usize; // n*n = 1M cells
    for t in THREADS {
        let mut conn = session(t, n);
        g.throughput(Throughput::Elements((n * n) as u64));
        g.bench_with_input(BenchmarkId::new("guarded_update", t), &t, |b, _| {
            b.iter(|| {
                conn.execute(
                    "UPDATE matrix SET v = CASE WHEN x > y THEN x + y \
                     WHEN x < y THEN x - y ELSE 0 END",
                )
                .unwrap()
            })
        });
        g.bench_with_input(BenchmarkId::new("filtered_count", t), &t, |b, _| {
            b.iter(|| {
                black_box(
                    conn.query("SELECT COUNT(v) FROM matrix WHERE v > 100")
                        .unwrap(),
                )
            })
        });
        g.bench_with_input(BenchmarkId::new("group_sum", t), &t, |b, _| {
            b.iter(|| {
                black_box(
                    conn.query("SELECT x, SUM(v) FROM matrix GROUP BY x")
                        .unwrap(),
                )
            })
        });
    }
    g.finish();
}

/// Image workload at 1M pixels: pointwise invert through SciQL with the
/// thread sweep.
fn bench_image_ops(c: &mut Criterion) {
    use sciql_imaging::{synth, SciqlImages};
    let mut g = c.benchmark_group("threads/image_1m");
    let n = 1024usize;
    let img = synth::terrain(n, n, 7);
    for t in THREADS {
        let mut s = SciqlImages::with_config(SessionConfig {
            threads: t,
            parallel_threshold: 1024,
            ..SessionConfig::default()
        });
        s.load("img", &img).unwrap();
        g.throughput(Throughput::Elements((n * n) as u64));
        g.bench_with_input(BenchmarkId::new("invert_sciql", t), &t, |b, _| {
            b.iter(|| black_box(s.invert("img").unwrap()))
        });
    }
    g.finish();
}

fn fast() -> Criterion {
    // Shared profile (quick mode under SCIQL_BENCH_QUICK for CI).
    sciql_bench::criterion_config()
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench_kernels, bench_fig1_sql, bench_image_ops
}
fn main() {
    sciql_bench::emit_meta("threads", &[("cells", 1048576)], "slice-parallelism sweep; on a single-vCPU host thread counts >1 record dispatch overhead, not speedup");
    benches();
}
