//! E11 (§2 "Array and Table Coercions"): cost of switching perspectives —
//! array → table (plain SELECT), table → array (`[col]` qualifiers), and
//! a full round trip through a stored table.

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use sciql_bench::matrix_session;
use std::hint::black_box;

fn bench_array_to_table(c: &mut Criterion) {
    let mut g = c.benchmark_group("coercion/array_to_table");
    for n in [64usize, 256] {
        let mut conn = matrix_session(n);
        g.throughput(Throughput::Elements((n * n) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(conn.query("SELECT x, y, v FROM matrix").unwrap()))
        });
    }
    g.finish();
}

fn bench_table_to_array(c: &mut Criterion) {
    let mut g = c.benchmark_group("coercion/table_to_array");
    for n in [64usize, 256] {
        let mut conn = matrix_session(n);
        conn.execute("CREATE TABLE mtable (x INT, y INT, v INT)")
            .unwrap();
        conn.execute("INSERT INTO mtable SELECT x, y, v FROM matrix")
            .unwrap();
        g.throughput(Throughput::Elements((n * n) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    conn.query("SELECT [x], [y], v FROM mtable")
                        .unwrap()
                        .to_array_view()
                        .unwrap(),
                )
            })
        });
    }
    g.finish();
}

fn bench_roundtrip(c: &mut Criterion) {
    let mut g = c.benchmark_group("coercion/roundtrip_insert");
    for n in [32usize, 64] {
        g.throughput(Throughput::Elements((n * n) as u64));
        let mut conn = matrix_session(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                conn.execute("CREATE TABLE mtable (x INT, y INT, v INT)")
                    .unwrap();
                conn.execute("INSERT INTO mtable SELECT x, y, v FROM matrix")
                    .unwrap();
                conn.execute("INSERT INTO matrix SELECT [x], [y], v FROM mtable")
                    .unwrap();
                black_box(conn.execute("DROP TABLE mtable").unwrap())
            })
        });
    }
    g.finish();
}

fn fast() -> Criterion {
    // Shared profile (quick mode under SCIQL_BENCH_QUICK for CI).
    sciql_bench::criterion_config()
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench_array_to_table, bench_table_to_array, bench_roundtrip
}
fn main() {
    sciql_bench::emit_meta(
        "coercion",
        &[],
        "result-set array-view coercion microbenchmarks",
    );
    benches();
}
