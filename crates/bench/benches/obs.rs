//! Observability overhead benchmark: the same scan+aggregate query with
//! per-statement span tracing off (the production default) and on, plus
//! the cost of snapshotting and rendering the global metrics registry.
//!
//! The ids feed two bench-guard checks:
//!
//! * `obs/scan_sum_256k/off` vs `obs/scan_sum_256k/on` — the trace-off
//!   run must stay within 5% of the traced run (an `EXPECT_CLOSE`
//!   invariant). Tracing adds work, so off ≤ 1.05 × on pins the
//!   tracer's disabled path to effectively zero cost: if dormant
//!   tracing machinery ever leaks real work into the hot path, `off`
//!   drifts up and the gate trips.
//! * Both ids are tracked relative to the `on` anchor, so drift in the
//!   off/on ratio fails CI even across machine speeds.
//!
//! Run with `CRITERION_JSON_OUT=BENCH_obs.json cargo bench -p
//! sciql-bench --bench obs` to record a baseline.

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use sciql::Connection;
use std::hint::black_box;

const N: usize = 512; // N*N = 256k cells

fn session() -> Connection {
    let mut conn = Connection::new();
    conn.execute(&format!(
        "CREATE ARRAY matrix (x INT DIMENSION[0:1:{N}], \
         y INT DIMENSION[0:1:{N}], v INT DEFAULT 0)"
    ))
    .unwrap();
    conn.execute("UPDATE matrix SET v = x + y").unwrap();
    conn
}

/// The scan+sum query with tracing on (anchor) and off.
fn bench_trace_overhead(c: &mut Criterion) {
    const SQL: &str = "SELECT SUM(v) FROM matrix WHERE x > 256";
    let mut g = c.benchmark_group("obs/scan_sum_256k");
    g.throughput(Throughput::Elements((N * N) as u64));
    for on in [true, false] {
        let mut conn = session();
        conn.set_tracing(on);
        g.bench_with_input(
            BenchmarkId::from_parameter(if on { "on" } else { "off" }),
            &on,
            |b, _| b.iter(|| black_box(conn.query(SQL).unwrap())),
        );
    }
    g.finish();
}

/// Scan the `sys.metrics` system view through the full SQL pipeline —
/// the cost of one introspection query (synthesize the view's BATs from
/// the registry, then bind/optimize/execute like any table scan).
fn bench_sysview_scan(c: &mut Criterion) {
    const SQL: &str = "SELECT name, value FROM sys.metrics WHERE name LIKE 'wal%'";
    let mut conn = session();
    let mut g = c.benchmark_group("obs/sysview");
    g.bench_function(BenchmarkId::from_parameter("metrics_like_scan"), |b| {
        b.iter(|| black_box(conn.query(SQL).unwrap()))
    });
    g.finish();
}

/// Snapshot the global registry and render it both ways — the cost of
/// one `\metrics` / Prometheus scrape.
fn bench_metrics_snapshot(c: &mut Criterion) {
    // Make the histograms non-trivial so rendering does real work.
    let m = sciql_obs::global();
    for i in 0..1000u64 {
        m.query_ns.observe_ns(i * 10_000);
    }
    let mut g = c.benchmark_group("obs/metrics");
    g.bench_function(BenchmarkId::from_parameter("snapshot_render"), |b| {
        b.iter(|| {
            let snap = sciql_obs::global().snapshot();
            black_box((snap.render_table(), snap.to_prometheus_text()))
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = sciql_bench::criterion_config();
    targets = bench_trace_overhead, bench_sysview_scan, bench_metrics_snapshot
}

fn main() {
    sciql_bench::emit_meta(
        "obs",
        &[("cells", (N * N) as u64)],
        "observability overhead on a 512x512 array scan+sum: tracing on (anchor) vs off \
         (off must stay within 5% of on — the tracer's disabled path is pinned to \
         zero cost), plus the metrics snapshot+render cost of one scrape",
    );
    benches();
}
