//! The wire protocol: length-prefixed, versioned frames.
//!
//! Every frame is `u32` little-endian payload length, then the payload;
//! the payload's first byte is the opcode. Strings and integers inside
//! payloads use `gdk::codec`'s primitives (length-prefixed UTF-8,
//! little-endian fixed-width ints) — the same encoding the durable vault
//! uses, so one codec serves disk and wire.
//!
//! ```text
//! frame    := len:u32  payload[len]
//! payload  := opcode:u8 body
//!
//! client → server                      server → client
//!   0x01 Hello   ver:u16 client:str      0x81 HelloOk  ver:u16 server:str sid:u64
//!   0x02 Query   epoch:u64 pos:u64 sql:str   0x82 Error    code:u16 message:str
//!   0x03 Prepare name:str sql:str        0x83 Affected n:u64 epoch:u64 pos:u64
//!   0x04 ExecPrepared name:str           0x84 ResultHeader  <ResultSet::encode_header>
//!   0x05 Ping                            0x85 ResultPage    <ResultSet::encode_page>
//!   0x06 Close                           0x86 ResultDone    rows:u64 pages:u32
//!   0x07 Shutdown                        0x87 Pong
//!   0x08 Stats                           0x88 Ok       (Shutdown ack)
//!   0x09 Bind    name:str n:u16 value*   0x89 StatsReply    12×u64 (see [`ExecReport`])
//!   0x0A ExecBound name:str              0x8A StmtOk   nparams:u16 (Prepare ack)
//!   0x0B Deallocate name:str             0x8B MetricsReply  <MetricsSnapshot>
//!   0x0C Metrics                         0x8C TraceReply    has:u8 text:str
//!   0x0D TraceEnable on:u8               0x8D ReplRecord  gen:u64 durable:u64
//!   0x0E TraceFetch                                        has:u8 [end:u64 payload]
//!   0x0F ReplHello  gen:u64 pos:u64      0x8E ReplSnapshot kind:u8 body
//!   0x10 ReplAck    gen:u64 pos:u64
//! ```
//!
//! Since v6, `Query` carries a monotonic-read token ahead of the SQL
//! (`epoch:u64 pos:u64 sql:str`; `(0,0)` = none) and `Affected` carries
//! the write's durable WAL position (`n:u64 epoch:u64 pos:u64`) — the
//! token a later replica read presents to guarantee read-your-writes.
//! The replication frames stream a primary's acknowledged WAL to a
//! replica: the replica opens with `ReplHello` (its applied position),
//! the primary answers with `ReplRecord`s (payload-less ones are
//! durable-position heartbeats) or a multi-frame `ReplSnapshot`
//! bootstrap (Begin → per-file File/Chunk… → End) when the replica's
//! generation no longer exists on the primary, and the replica
//! acknowledges applied positions with `ReplAck`.
//!
//! A query answer is either one `Error`, one `Affected`, or a
//! `ResultHeader`, zero or more `ResultPage`s and a closing `ResultDone`.
//! The handshake (`Hello`/`HelloOk`) must be the first exchange on a
//! connection; the server rejects anything else with `Error` and hangs up.
//!
//! Prepared statements with parameters: `Prepare` compiles the statement
//! server-side (acked by `StmtOk` with the bind-slot count), `Bind`
//! stages codec-encoded scalar values in the session (refused for names
//! that were never prepared), `ExecBound` executes the statement with
//! the staged values, and `Deallocate` frees it — re-executions reuse
//! the server's cached plan, so only `Bind` + `ExecBound` round trips
//! repeat, never parsing or optimisation.

use sciql::ErrorCode;
use std::fmt;
use std::io::{self, Read, Write};

/// Protocol version spoken by this build. A server answers a `Hello`
/// carrying a *newer* version with the highest version it speaks; the
/// client decides whether to continue (our client requires an exact
/// match). Version 2 added `Stats`/`StatsReply`; version 3 added stable
/// error codes in `Error`, the `Bind`/`ExecBound`/`StmtOk` frames for
/// bound-parameter prepared statements, and `plan_cache_hits` in
/// `StatsReply`. Version 4 added `tuples_produced` to `StatsReply` and
/// the observability frames: `Metrics`/`MetricsReply` (engine-wide
/// counter/gauge/histogram snapshot), `TraceEnable` (per-session query
/// tracing) and `TraceFetch`/`TraceReply` (rendered span tree of the
/// session's most recent traced statement). Version 5 added per-
/// histogram bucket bounds to `MetricsReply` (the group-commit
/// batch-size histogram is count-valued, not latency-valued) and the
/// `ServerBusy`/`QuotaExceeded` admission-control error codes. Version
/// 6 added WAL-shipping replication — the
/// `ReplHello`/`ReplRecord`/`ReplAck`/`ReplSnapshot` frames, a
/// monotonic-read token in `Query`, the durable WAL position in
/// `Affected`, and the `ReplicaLagging` error code.
pub const PROTO_VERSION: u16 = 6;

/// Upper bound on a single frame (64 MiB): a defence against a corrupt
/// or hostile length prefix allocating unbounded memory, not a result
/// size limit — large results stream as many pages.
pub const MAX_FRAME: u32 = 64 << 20;

/// Rows per result page the server emits. Small enough to stream, large
/// enough that the frame overhead vanishes.
pub const PAGE_ROWS: usize = 1024;

/// Frame opcodes (first payload byte).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Op {
    /// Client handshake.
    Hello = 0x01,
    /// Execute one SQL statement.
    Query = 0x02,
    /// Stash a named statement text in the session.
    Prepare = 0x03,
    /// Execute a stashed statement.
    ExecPrepared = 0x04,
    /// Liveness probe.
    Ping = 0x05,
    /// Orderly session end.
    Close = 0x06,
    /// Ask the server to shut down gracefully.
    Shutdown = 0x07,
    /// Request the session's last-statement execution report.
    Stats = 0x08,
    /// Stage bound parameter values for a prepared statement.
    Bind = 0x09,
    /// Execute a prepared statement with the staged values.
    ExecBound = 0x0A,
    /// Drop a prepared statement (and its staged values).
    Deallocate = 0x0B,
    /// Request an engine-wide metrics snapshot.
    Metrics = 0x0C,
    /// Switch per-session query tracing on or off.
    TraceEnable = 0x0D,
    /// Fetch the rendered span tree of the last traced statement.
    TraceFetch = 0x0E,
    /// Replica handshake: announce the applied WAL position and switch
    /// the session into replication streaming.
    ReplHello = 0x0F,
    /// Replica acknowledgement of its durably applied WAL position.
    ReplAck = 0x10,
    /// Server handshake answer.
    HelloOk = 0x81,
    /// Statement (or protocol) failure; the session survives.
    Error = 0x82,
    /// DDL/DML acknowledgement with affected count.
    Affected = 0x83,
    /// Result-set column metadata.
    ResultHeader = 0x84,
    /// One page of result rows.
    ResultPage = 0x85,
    /// End of result set.
    ResultDone = 0x86,
    /// Ping answer.
    Pong = 0x87,
    /// Generic acknowledgement.
    Ok = 0x88,
    /// Execution report for the session's most recent statement.
    StatsReply = 0x89,
    /// Prepare acknowledgement carrying the statement's bind-slot count.
    StmtOk = 0x8A,
    /// Engine-wide metrics snapshot.
    MetricsReply = 0x8B,
    /// Rendered span tree (or "none recorded") answer to `TraceFetch`.
    TraceReply = 0x8C,
    /// One shipped WAL record (or a payload-less durable-position
    /// heartbeat) from primary to replica.
    ReplRecord = 0x8D,
    /// One frame of a multi-frame replica bootstrap file transfer.
    ReplSnapshot = 0x8E,
}

impl Op {
    /// Parse an opcode byte.
    pub fn from_u8(b: u8) -> Option<Op> {
        Some(match b {
            0x01 => Op::Hello,
            0x02 => Op::Query,
            0x03 => Op::Prepare,
            0x04 => Op::ExecPrepared,
            0x05 => Op::Ping,
            0x06 => Op::Close,
            0x07 => Op::Shutdown,
            0x08 => Op::Stats,
            0x09 => Op::Bind,
            0x0A => Op::ExecBound,
            0x0B => Op::Deallocate,
            0x0C => Op::Metrics,
            0x0D => Op::TraceEnable,
            0x0E => Op::TraceFetch,
            0x0F => Op::ReplHello,
            0x10 => Op::ReplAck,
            0x81 => Op::HelloOk,
            0x82 => Op::Error,
            0x83 => Op::Affected,
            0x84 => Op::ResultHeader,
            0x85 => Op::ResultPage,
            0x86 => Op::ResultDone,
            0x87 => Op::Pong,
            0x88 => Op::Ok,
            0x89 => Op::StatsReply,
            0x8A => Op::StmtOk,
            0x8B => Op::MetricsReply,
            0x8C => Op::TraceReply,
            0x8D => Op::ReplRecord,
            0x8E => Op::ReplSnapshot,
            _ => return None,
        })
    }
}

/// Client- and server-side protocol errors.
#[derive(Debug)]
pub enum NetError {
    /// Socket failure.
    Io(io::Error),
    /// The peer violated the framing or sent something unexpected.
    Protocol(String),
    /// The server reported a statement error (the session survives).
    /// Carries the stable [`ErrorCode`] the embedded engine would have
    /// produced for the same failure, so a remote parse error is
    /// indistinguishable from a local one.
    Server {
        /// Stable error code from the wire.
        code: ErrorCode,
        /// Human-readable message.
        message: String,
    },
    /// Handshake version mismatch.
    Version {
        /// Version this build speaks.
        ours: u16,
        /// Version the peer answered with.
        theirs: u16,
    },
}

impl NetError {
    /// Construct a [`NetError::Protocol`].
    pub fn protocol(m: impl Into<String>) -> Self {
        NetError::Protocol(m.into())
    }

    /// The stable [`ErrorCode`] this error maps into.
    pub fn code(&self) -> ErrorCode {
        match self {
            NetError::Io(_) => ErrorCode::Io,
            NetError::Protocol(_) => ErrorCode::Protocol,
            NetError::Server { code, .. } => *code,
            NetError::Version { .. } => ErrorCode::Version,
        }
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "network I/O error: {e}"),
            NetError::Protocol(m) => write!(f, "protocol error: {m}"),
            NetError::Server { message, .. } => write!(f, "server error: {message}"),
            NetError::Version { ours, theirs } => {
                write!(
                    f,
                    "protocol version mismatch: we speak {ours}, peer speaks {theirs}"
                )
            }
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

/// Net result type.
pub type NetResult<T> = std::result::Result<T, NetError>;

/// Write one frame (length prefix + payload) and flush.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> NetResult<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME)
        .ok_or_else(|| NetError::protocol("outgoing frame exceeds MAX_FRAME"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Read one complete frame, blocking. Returns `None` on a clean EOF at a
/// frame boundary (the peer hung up between frames).
pub fn read_frame(r: &mut impl Read) -> NetResult<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(NetError::protocol(format!(
            "incoming frame of {len} bytes exceeds the {MAX_FRAME}-byte limit"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Incremental frame reader for sockets with a read timeout: the server
/// uses this to poll its shutdown flag between (and *during*) frames
/// without losing partially received bytes.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
}

impl FrameBuffer {
    /// Empty buffer.
    pub fn new() -> Self {
        FrameBuffer::default()
    }

    /// Pull bytes from `r` once and return the next complete frame if one
    /// is buffered. `Ok(None)` means "no full frame yet" (including read
    /// timeouts); `Err(UnexpectedEof)` is a peer hangup — clean if
    /// [`FrameBuffer::is_empty`], mid-frame otherwise.
    pub fn poll_frame(&mut self, r: &mut impl Read) -> NetResult<Option<Vec<u8>>> {
        if let Some(f) = self.take_frame()? {
            return Ok(Some(f));
        }
        let mut chunk = [0u8; 16 * 1024];
        match r.read(&mut chunk) {
            Ok(0) => Err(NetError::Io(io::Error::from(io::ErrorKind::UnexpectedEof))),
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                self.take_frame()
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                Ok(None)
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Is the buffer at a frame boundary (no partial frame pending)?
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Is at least one complete frame already buffered? The server uses
    /// this to pipeline: replies are held back (coalesced into one
    /// socket write) for as long as the client still has a decodable
    /// request waiting. An oversized length prefix counts as "complete"
    /// so the next [`FrameBuffer::poll_frame`] reports the error
    /// immediately instead of stalling behind a held-back flush.
    pub fn has_complete_frame(&self) -> bool {
        if self.buf.len() < 4 {
            return false;
        }
        let len = u32::from_le_bytes(self.buf[..4].try_into().unwrap());
        len > MAX_FRAME || self.buf.len() >= 4 + len as usize
    }

    /// Bytes of a partial frame received so far (the server treats a
    /// growing count as wire activity, so a slow upload is not reaped
    /// as idle mid-transfer).
    pub fn buffered_bytes(&self) -> usize {
        self.buf.len()
    }

    fn take_frame(&mut self) -> NetResult<Option<Vec<u8>>> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[..4].try_into().unwrap());
        if len > MAX_FRAME {
            return Err(NetError::protocol(format!(
                "incoming frame of {len} bytes exceeds the {MAX_FRAME}-byte limit"
            )));
        }
        let total = 4 + len as usize;
        if self.buf.len() < total {
            return Ok(None);
        }
        let frame = self.buf[4..total].to_vec();
        self.buf.drain(..total);
        Ok(Some(frame))
    }
}

// ---------------------------------------------------------------------------
// Payload builders (the tiny bodies; result frames reuse core's encoding).
// ---------------------------------------------------------------------------

/// `Hello` payload.
pub fn hello(client: &str) -> Vec<u8> {
    let mut p = vec![Op::Hello as u8];
    gdk::codec::put_u16(&mut p, PROTO_VERSION);
    gdk::codec::put_str(&mut p, client);
    p
}

/// `HelloOk` payload.
pub fn hello_ok(server: &str, session_id: u64) -> Vec<u8> {
    let mut p = vec![Op::HelloOk as u8];
    gdk::codec::put_u16(&mut p, PROTO_VERSION);
    gdk::codec::put_str(&mut p, server);
    gdk::codec::put_u64(&mut p, session_id);
    p
}

/// A monotonic-read token: `(WAL generation, byte position)`. A write
/// acknowledgement carries the position its durability reached; a
/// replica read presenting the token is served only once the replica
/// has applied at least that much. `(0, 0)` means "no constraint".
pub type WalToken = (u64, u64);

/// Does an applied position satisfy a required token? A newer
/// generation satisfies any older-generation token: the checkpoint that
/// rotated the WAL captured everything the token named.
pub fn token_satisfied(applied: WalToken, required: WalToken) -> bool {
    applied.0 > required.0 || (applied.0 == required.0 && applied.1 >= required.1)
}

/// `Query` payload: monotonic-read token (`(0, 0)` = none), then SQL.
pub fn query(token: WalToken, sql: &str) -> Vec<u8> {
    let mut p = vec![Op::Query as u8];
    gdk::codec::put_u64(&mut p, token.0);
    gdk::codec::put_u64(&mut p, token.1);
    gdk::codec::put_str(&mut p, sql);
    p
}

/// Decode a `Query` body into its token and SQL text.
pub fn read_query(body: &[u8]) -> NetResult<(WalToken, String)> {
    let mut r = gdk::codec::Reader::new(body);
    let bad = |_| NetError::protocol("malformed Query");
    let epoch = r.u64().map_err(bad)?;
    let pos = r.u64().map_err(bad)?;
    let sql = r.str().map_err(bad)?;
    Ok(((epoch, pos), sql))
}

/// `Prepare` payload.
pub fn prepare(name: &str, sql: &str) -> Vec<u8> {
    let mut p = vec![Op::Prepare as u8];
    gdk::codec::put_str(&mut p, name);
    gdk::codec::put_str(&mut p, sql);
    p
}

/// `ExecPrepared` payload.
pub fn exec_prepared(name: &str) -> Vec<u8> {
    let mut p = vec![Op::ExecPrepared as u8];
    gdk::codec::put_str(&mut p, name);
    p
}

/// `Bind` payload: statement name plus slot-ordered scalar values,
/// encoded with the same versioned value codec the vault and the result
/// pages use (bit-exact round trip, nil sentinels included).
pub fn bind(name: &str, values: &[gdk::Value]) -> Vec<u8> {
    let mut p = vec![Op::Bind as u8];
    gdk::codec::put_str(&mut p, name);
    gdk::codec::put_u16(&mut p, values.len() as u16);
    for v in values {
        gdk::codec::encode_value(v, &mut p);
    }
    p
}

/// Decode a `Bind` body into the statement name and its values.
pub fn read_bind(body: &[u8]) -> NetResult<(String, Vec<gdk::Value>)> {
    let mut r = gdk::codec::Reader::new(body);
    let bad = |_| NetError::protocol("malformed Bind");
    let name = r.str().map_err(bad)?;
    let n = r.u16().map_err(bad)? as usize;
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(gdk::codec::decode_value(&mut r).map_err(bad)?);
    }
    Ok((name, values))
}

/// `ExecBound` payload.
pub fn exec_bound(name: &str) -> Vec<u8> {
    let mut p = vec![Op::ExecBound as u8];
    gdk::codec::put_str(&mut p, name);
    p
}

/// `Deallocate` payload (answered with `Affected(1)` if the statement
/// existed, `Affected(0)` otherwise).
pub fn deallocate(name: &str) -> Vec<u8> {
    let mut p = vec![Op::Deallocate as u8];
    gdk::codec::put_str(&mut p, name);
    p
}

/// `StmtOk` payload (Prepare acknowledgement).
pub fn stmt_ok(nparams: u16) -> Vec<u8> {
    let mut p = vec![Op::StmtOk as u8];
    gdk::codec::put_u16(&mut p, nparams);
    p
}

/// Decode a `StmtOk` body.
pub fn read_stmt_ok(body: &[u8]) -> NetResult<u16> {
    gdk::codec::Reader::new(body)
        .u16()
        .map_err(|_| NetError::protocol("malformed StmtOk"))
}

/// `TraceEnable` payload.
pub fn trace_enable(on: bool) -> Vec<u8> {
    vec![Op::TraceEnable as u8, on as u8]
}

/// Decode a `TraceEnable` body.
pub fn read_trace_enable(body: &[u8]) -> NetResult<bool> {
    match body {
        [0] => Ok(false),
        [1] => Ok(true),
        _ => Err(NetError::protocol("malformed TraceEnable")),
    }
}

/// `TraceReply` payload: the rendered span tree of the session's last
/// traced statement, or `None` when nothing was recorded.
pub fn trace_reply(text: Option<&str>) -> Vec<u8> {
    let mut p = vec![Op::TraceReply as u8];
    match text {
        None => gdk::codec::put_u8(&mut p, 0),
        Some(t) => {
            gdk::codec::put_u8(&mut p, 1);
            gdk::codec::put_str(&mut p, t);
        }
    }
    p
}

/// Decode a `TraceReply` body.
pub fn read_trace_reply(body: &[u8]) -> NetResult<Option<String>> {
    let mut r = gdk::codec::Reader::new(body);
    let bad = |_| NetError::protocol("malformed TraceReply");
    match r.u8().map_err(bad)? {
        0 => Ok(None),
        1 => Ok(Some(r.str().map_err(bad)?)),
        _ => Err(NetError::protocol("malformed TraceReply")),
    }
}

/// `MetricsReply` payload: the full [`sciql_obs::MetricsSnapshot`] — named
/// counters, gauges and latency histograms — with the same codec
/// primitives every other frame uses.
pub fn metrics_reply(snap: &sciql_obs::MetricsSnapshot) -> Vec<u8> {
    let mut p = vec![Op::MetricsReply as u8];
    gdk::codec::put_u32(&mut p, snap.counters.len() as u32);
    for (n, v) in &snap.counters {
        gdk::codec::put_str(&mut p, n);
        gdk::codec::put_u64(&mut p, *v);
    }
    gdk::codec::put_u32(&mut p, snap.gauges.len() as u32);
    for (n, v) in &snap.gauges {
        gdk::codec::put_str(&mut p, n);
        gdk::codec::put_i64(&mut p, *v);
    }
    gdk::codec::put_u32(&mut p, snap.histograms.len() as u32);
    for (n, h) in &snap.histograms {
        gdk::codec::put_str(&mut p, n);
        gdk::codec::put_u32(&mut p, h.bounds.len() as u32);
        for &b in &h.bounds {
            gdk::codec::put_u64(&mut p, b);
        }
        gdk::codec::put_u32(&mut p, h.counts.len() as u32);
        for &c in &h.counts {
            gdk::codec::put_u64(&mut p, c);
        }
        gdk::codec::put_u64(&mut p, h.count);
        gdk::codec::put_u64(&mut p, h.sum_ns);
    }
    p
}

/// Decode a `MetricsReply` body.
pub fn read_metrics_reply(body: &[u8]) -> NetResult<sciql_obs::MetricsSnapshot> {
    let mut r = gdk::codec::Reader::new(body);
    let bad = |_| NetError::protocol("malformed MetricsReply");
    let nc = r.u32().map_err(bad)? as usize;
    let mut counters = Vec::with_capacity(nc);
    for _ in 0..nc {
        let n = r.str().map_err(bad)?;
        let v = r.u64().map_err(bad)?;
        counters.push((n, v));
    }
    let ng = r.u32().map_err(bad)? as usize;
    let mut gauges = Vec::with_capacity(ng);
    for _ in 0..ng {
        let n = r.str().map_err(bad)?;
        let v = r.i64().map_err(bad)?;
        gauges.push((n, v));
    }
    let nh = r.u32().map_err(bad)? as usize;
    let mut histograms = Vec::with_capacity(nh);
    for _ in 0..nh {
        let n = r.str().map_err(bad)?;
        let nbounds = r.u32().map_err(bad)? as usize;
        if nbounds > sciql_obs::LATENCY_BOUNDS_NS.len() {
            return Err(NetError::protocol("malformed MetricsReply: bound count"));
        }
        let mut bounds = Vec::with_capacity(nbounds);
        for _ in 0..nbounds {
            bounds.push(r.u64().map_err(bad)?);
        }
        let nb = r.u32().map_err(bad)? as usize;
        if nb > sciql_obs::LATENCY_BOUNDS_NS.len() + 1 {
            return Err(NetError::protocol("malformed MetricsReply: bucket count"));
        }
        let mut counts = Vec::with_capacity(nb);
        for _ in 0..nb {
            counts.push(r.u64().map_err(bad)?);
        }
        let count = r.u64().map_err(bad)?;
        let sum_ns = r.u64().map_err(bad)?;
        histograms.push((
            n,
            sciql_obs::HistogramSnapshot {
                bounds,
                counts,
                count,
                sum_ns,
            },
        ));
    }
    Ok(sciql_obs::MetricsSnapshot {
        counters,
        gauges,
        histograms,
    })
}

/// Bare single-opcode payload (`Ping`, `Close`, `Shutdown`, `Pong`, `Ok`).
pub fn bare(op: Op) -> Vec<u8> {
    vec![op as u8]
}

/// `Error` payload: stable code + message.
pub fn error(code: ErrorCode, message: &str) -> Vec<u8> {
    let mut p = vec![Op::Error as u8];
    gdk::codec::put_u16(&mut p, code.as_u16());
    gdk::codec::put_str(&mut p, message);
    p
}

/// Decode an `Error` body into a [`NetError::Server`].
pub fn read_error(body: &[u8]) -> NetError {
    let mut r = gdk::codec::Reader::new(body);
    match (r.u16(), r.str()) {
        (Ok(code), Ok(message)) => NetError::Server {
            code: ErrorCode::from_u16(code),
            message,
        },
        _ => NetError::Server {
            code: ErrorCode::Protocol,
            message: "malformed Error frame".into(),
        },
    }
}

/// `Affected` payload: the count plus the session's newest durable WAL
/// position — the monotonic-read token the client hands to replica
/// reads (`(0, 0)` on in-memory engines).
pub fn affected(n: u64, token: WalToken) -> Vec<u8> {
    let mut p = vec![Op::Affected as u8];
    gdk::codec::put_u64(&mut p, n);
    gdk::codec::put_u64(&mut p, token.0);
    gdk::codec::put_u64(&mut p, token.1);
    p
}

/// Decode an `Affected` body into the count and its token.
pub fn read_affected(body: &[u8]) -> NetResult<(u64, WalToken)> {
    let mut r = gdk::codec::Reader::new(body);
    let bad = |_| NetError::protocol("malformed Affected");
    let n = r.u64().map_err(bad)?;
    let epoch = r.u64().map_err(bad)?;
    let pos = r.u64().map_err(bad)?;
    Ok((n, (epoch, pos)))
}

/// `ReplHello` / `ReplAck` payload: the replica's applied position.
pub fn repl_position(op: Op, pos: WalToken) -> Vec<u8> {
    debug_assert!(matches!(op, Op::ReplHello | Op::ReplAck));
    let mut p = vec![op as u8];
    gdk::codec::put_u64(&mut p, pos.0);
    gdk::codec::put_u64(&mut p, pos.1);
    p
}

/// Decode a `ReplHello`/`ReplAck` body.
pub fn read_repl_position(body: &[u8]) -> NetResult<WalToken> {
    let mut r = gdk::codec::Reader::new(body);
    let bad = |_| NetError::protocol("malformed replication position");
    let generation = r.u64().map_err(bad)?;
    let pos = r.u64().map_err(bad)?;
    Ok((generation, pos))
}

/// `ReplRecord` payload: generation, the primary's durable position,
/// and (unless this is a heartbeat) one WAL record — its end byte
/// position and raw payload, appended verbatim by the replica.
pub fn repl_record(generation: u64, durable: u64, record: Option<(u64, &[u8])>) -> Vec<u8> {
    let mut p = vec![Op::ReplRecord as u8];
    gdk::codec::put_u64(&mut p, generation);
    gdk::codec::put_u64(&mut p, durable);
    match record {
        None => gdk::codec::put_u8(&mut p, 0),
        Some((end, payload)) => {
            gdk::codec::put_u8(&mut p, 1);
            gdk::codec::put_u64(&mut p, end);
            p.extend_from_slice(payload);
        }
    }
    p
}

/// Decode a `ReplRecord` body into `(generation, durable, record)`.
#[allow(clippy::type_complexity)]
pub fn read_repl_record(body: &[u8]) -> NetResult<(u64, u64, Option<(u64, Vec<u8>)>)> {
    let mut r = gdk::codec::Reader::new(body);
    let bad = |_| NetError::protocol("malformed ReplRecord");
    let generation = r.u64().map_err(bad)?;
    let durable = r.u64().map_err(bad)?;
    let record = match r.u8().map_err(bad)? {
        0 => None,
        1 => {
            let end = r.u64().map_err(bad)?;
            let rest = r.take(r.remaining()).map_err(bad)?.to_vec();
            Some((end, rest))
        }
        _ => return Err(NetError::protocol("malformed ReplRecord")),
    };
    Ok((generation, durable, record))
}

/// One frame of a multi-frame `ReplSnapshot` bootstrap transfer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplSnapshotFrame {
    /// Transfer opens: target generation, the capped WAL's durable
    /// position, and how many files follow.
    Begin {
        /// The image's checkpoint generation.
        generation: u64,
        /// WAL byte position the image ends at.
        durable: u64,
        /// Number of `File` announcements that follow.
        files: u32,
    },
    /// Next file: its vault-dir-relative path and total byte size
    /// (delivered as zero or more `Chunk`s).
    File {
        /// Dir-relative path (e.g. `cols/c3.col`).
        name: String,
        /// Total file size in bytes.
        size: u64,
    },
    /// A run of bytes of the current file, in order.
    Chunk(Vec<u8>),
    /// Transfer complete; streaming resumes with `ReplRecord`s.
    End,
}

/// `ReplSnapshot` payload.
pub fn repl_snapshot(frame: &ReplSnapshotFrame) -> Vec<u8> {
    let mut p = vec![Op::ReplSnapshot as u8];
    match frame {
        ReplSnapshotFrame::Begin {
            generation,
            durable,
            files,
        } => {
            gdk::codec::put_u8(&mut p, 0);
            gdk::codec::put_u64(&mut p, *generation);
            gdk::codec::put_u64(&mut p, *durable);
            gdk::codec::put_u32(&mut p, *files);
        }
        ReplSnapshotFrame::File { name, size } => {
            gdk::codec::put_u8(&mut p, 1);
            gdk::codec::put_str(&mut p, name);
            gdk::codec::put_u64(&mut p, *size);
        }
        ReplSnapshotFrame::Chunk(bytes) => {
            gdk::codec::put_u8(&mut p, 2);
            p.extend_from_slice(bytes);
        }
        ReplSnapshotFrame::End => gdk::codec::put_u8(&mut p, 3),
    }
    p
}

/// Decode a `ReplSnapshot` body.
pub fn read_repl_snapshot(body: &[u8]) -> NetResult<ReplSnapshotFrame> {
    let mut r = gdk::codec::Reader::new(body);
    let bad = |_| NetError::protocol("malformed ReplSnapshot");
    Ok(match r.u8().map_err(bad)? {
        0 => ReplSnapshotFrame::Begin {
            generation: r.u64().map_err(bad)?,
            durable: r.u64().map_err(bad)?,
            files: r.u32().map_err(bad)?,
        },
        1 => ReplSnapshotFrame::File {
            name: r.str().map_err(bad)?,
            size: r.u64().map_err(bad)?,
        },
        2 => ReplSnapshotFrame::Chunk(r.take(r.remaining()).map_err(bad)?.to_vec()),
        3 => ReplSnapshotFrame::End,
        _ => return Err(NetError::protocol("malformed ReplSnapshot")),
    })
}

/// Execution report for a session's most recent statement, as carried by
/// `StatsReply`: the interpreter counters plus the optimizer pipeline's
/// `PassStats` highlights, so a remote `\timing` shows the same numbers
/// as an embedded one.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecReport {
    /// MAL instructions executed.
    pub instructions: u64,
    /// Instructions that ran with more than one worker thread.
    pub par_instructions: u64,
    /// Largest worker-thread count any instruction used.
    pub max_threads: u64,
    /// MAL instructions before the optimizer pipeline.
    pub instrs_before_opt: u64,
    /// MAL instructions after the optimizer pipeline.
    pub instrs_after_opt: u64,
    /// Instructions eliminated by the shrinking passes.
    pub eliminated: u64,
    /// Fusion rewrites applied (candprop + select→project + select→aggregate).
    pub fused: u64,
    /// Intermediates the fused kernels never materialised.
    pub intermediates_avoided: u64,
    /// Approximate bytes those intermediates would have occupied.
    pub bytes_not_materialized: u64,
    /// 1 when the statement reused a cached compiled plan (prepared
    /// re-execution), 0 otherwise.
    pub plan_cache_hits: u64,
    /// Column tiles whose zone maps excluded them from range scans.
    pub tiles_skipped: u64,
    /// Tuples the interpreter's instructions produced in total.
    pub tuples_produced: u64,
}

impl ExecReport {
    /// Build the report from the engine's last-statement record — the
    /// one conversion both the server's `Stats` handler and the
    /// embedded driver use, so the two transports can never drift.
    pub fn from_last_exec(last: &sciql::LastExec) -> ExecReport {
        ExecReport {
            instructions: last.exec.instructions as u64,
            par_instructions: last.exec.par_instructions as u64,
            max_threads: last.exec.max_threads as u64,
            instrs_before_opt: last.instrs_before_opt as u64,
            instrs_after_opt: last.instrs_after_opt as u64,
            eliminated: last.opt.total_removed() as u64,
            fused: last.opt.fusions() as u64,
            intermediates_avoided: last.exec.intermediates_avoided as u64,
            bytes_not_materialized: last.exec.bytes_not_materialized as u64,
            plan_cache_hits: last.exec.plan_cache_hits as u64,
            tiles_skipped: last.exec.tiles_skipped as u64,
            tuples_produced: last.exec.tuples_produced as u64,
        }
    }

    /// View this report as the renderer-ready [`sciql_obs::ExecSummary`]
    /// (optionally with a client-measured wall time), so `\timing`
    /// output is byte-identical embedded and over the wire.
    pub fn summary(&self, wall_ms: Option<f64>) -> sciql_obs::ExecSummary {
        sciql_obs::ExecSummary {
            wall_ms,
            instructions: self.instructions,
            tuples_produced: self.tuples_produced,
            par_instructions: self.par_instructions,
            max_threads: self.max_threads,
            instrs_before_opt: self.instrs_before_opt,
            instrs_after_opt: self.instrs_after_opt,
            eliminated: self.eliminated,
            fused: self.fused,
            intermediates_avoided: self.intermediates_avoided,
            bytes_not_materialized: self.bytes_not_materialized,
            plan_cache_hits: self.plan_cache_hits,
            tiles_skipped: self.tiles_skipped,
        }
    }
}

/// `StatsReply` payload.
pub fn stats_reply(report: &ExecReport) -> Vec<u8> {
    // Exhaustive destructuring, deliberately without `..`: adding a
    // field to `ExecReport` refuses to compile until it is wired
    // through the codec here (and in `read_stats_reply`).
    let ExecReport {
        instructions,
        par_instructions,
        max_threads,
        instrs_before_opt,
        instrs_after_opt,
        eliminated,
        fused,
        intermediates_avoided,
        bytes_not_materialized,
        plan_cache_hits,
        tiles_skipped,
        tuples_produced,
    } = *report;
    let mut p = vec![Op::StatsReply as u8];
    for v in [
        instructions,
        par_instructions,
        max_threads,
        instrs_before_opt,
        instrs_after_opt,
        eliminated,
        fused,
        intermediates_avoided,
        bytes_not_materialized,
        plan_cache_hits,
        tiles_skipped,
        tuples_produced,
    ] {
        gdk::codec::put_u64(&mut p, v);
    }
    p
}

/// Decode a `StatsReply` body. Rejects a body whose length does not
/// match this build's field count exactly, so a half-wired field shows
/// up as a loud protocol error rather than silent zeros.
pub fn read_stats_reply(body: &[u8]) -> NetResult<ExecReport> {
    let mut r = gdk::codec::Reader::new(body);
    let mut next = || {
        r.u64()
            .map_err(|_| NetError::protocol("malformed StatsReply"))
    };
    let report = ExecReport {
        instructions: next()?,
        par_instructions: next()?,
        max_threads: next()?,
        instrs_before_opt: next()?,
        instrs_after_opt: next()?,
        eliminated: next()?,
        fused: next()?,
        intermediates_avoided: next()?,
        bytes_not_materialized: next()?,
        plan_cache_hits: next()?,
        tiles_skipped: next()?,
        tuples_produced: next()?,
    };
    if r.remaining() != 0 {
        return Err(NetError::protocol(
            "malformed StatsReply: trailing bytes (field-count drift between peer builds?)",
        ));
    }
    Ok(report)
}

/// `ResultDone` payload.
pub fn result_done(rows: u64, pages: u32) -> Vec<u8> {
    let mut p = vec![Op::ResultDone as u8];
    gdk::codec::put_u64(&mut p, rows);
    gdk::codec::put_u32(&mut p, pages);
    p
}

/// Prefix `body` with `op` (result header/page frames wrap core's bytes).
pub fn wrap(op: Op, body: &[u8]) -> Vec<u8> {
    let mut p = Vec::with_capacity(1 + body.len());
    p.push(op as u8);
    p.extend_from_slice(body);
    p
}

/// Split a received payload into opcode and body.
pub fn split(payload: &[u8]) -> NetResult<(Op, &[u8])> {
    let (&first, body) = payload
        .split_first()
        .ok_or_else(|| NetError::protocol("empty frame"))?;
    let op = Op::from_u8(first)
        .ok_or_else(|| NetError::protocol(format!("unknown opcode {first:#04x}")))?;
    Ok((op, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &query((0, 0), "SELECT 1")).unwrap();
        write_frame(&mut wire, &bare(Op::Ping)).unwrap();
        let mut r = &wire[..];
        let f1 = read_frame(&mut r).unwrap().unwrap();
        let (op, body) = split(&f1).unwrap();
        assert_eq!(op, Op::Query);
        assert_eq!(read_query(body).unwrap(), ((0, 0), "SELECT 1".into()));
        let f2 = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(split(&f2).unwrap().0, Op::Ping);
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        assert!(matches!(
            read_frame(&mut &wire[..]),
            Err(NetError::Protocol(_))
        ));
        let mut fb = FrameBuffer::new();
        assert!(matches!(
            fb.poll_frame(&mut &wire[..]),
            Err(NetError::Protocol(_))
        ));
    }

    #[test]
    fn frame_buffer_reassembles_split_frames() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &query((0, 0), "SELECT 42")).unwrap();
        let mut fb = FrameBuffer::new();
        // Feed one byte at a time: no frame until the last byte arrives.
        let mut got = None;
        for i in 0..wire.len() {
            let mut one = &wire[i..i + 1];
            if let Some(f) = fb.poll_frame(&mut one).unwrap() {
                assert_eq!(i, wire.len() - 1, "frame must complete on the last byte");
                got = Some(f);
            } else {
                assert!(!fb.is_empty() || i < 3);
            }
        }
        let (op, _) = split(&got.expect("frame")).unwrap();
        assert_eq!(op, Op::Query);
    }

    #[test]
    fn replication_frames_roundtrip() {
        let f = query((3, 512), "SELECT 1");
        let (op, body) = split(&f).unwrap();
        assert_eq!(op, Op::Query);
        assert_eq!(read_query(body).unwrap(), ((3, 512), "SELECT 1".into()));

        let f = affected(7, (2, 99));
        let (_, body) = split(&f).unwrap();
        assert_eq!(read_affected(body).unwrap(), (7, (2, 99)));

        let f = repl_position(Op::ReplHello, (1, 64));
        let (op, body) = split(&f).unwrap();
        assert_eq!(op, Op::ReplHello);
        assert_eq!(read_repl_position(body).unwrap(), (1, 64));

        let f = repl_record(4, 200, Some((180, b"payload")));
        let (op, body) = split(&f).unwrap();
        assert_eq!(op, Op::ReplRecord);
        assert_eq!(
            read_repl_record(body).unwrap(),
            (4, 200, Some((180, b"payload".to_vec())))
        );
        let f = repl_record(4, 200, None);
        let (_, body) = split(&f).unwrap();
        assert_eq!(read_repl_record(body).unwrap(), (4, 200, None));

        for frame in [
            ReplSnapshotFrame::Begin {
                generation: 2,
                durable: 4096,
                files: 3,
            },
            ReplSnapshotFrame::File {
                name: "cols/c7.col".into(),
                size: 12,
            },
            ReplSnapshotFrame::Chunk(vec![1, 2, 3]),
            ReplSnapshotFrame::End,
        ] {
            let f = repl_snapshot(&frame);
            let (op, body) = split(&f).unwrap();
            assert_eq!(op, Op::ReplSnapshot);
            assert_eq!(read_repl_snapshot(body).unwrap(), frame);
        }

        assert!(token_satisfied((1, 10), (1, 10)));
        assert!(token_satisfied((2, 0), (1, 999)), "newer generation wins");
        assert!(!token_satisfied((1, 9), (1, 10)));
    }

    #[test]
    fn mid_frame_hangup_is_detected() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &query((0, 0), "SELECT 1")).unwrap();
        wire.truncate(wire.len() - 2);
        let mut fb = FrameBuffer::new();
        let mut r = &wire[..];
        assert!(fb.poll_frame(&mut r).unwrap().is_none());
        assert!(!fb.is_empty(), "partial frame pending");
        match fb.poll_frame(&mut r) {
            Err(NetError::Io(e)) => assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof),
            other => panic!("expected EOF, got {other:?}"),
        }
    }
}
