//! # sciql-net — serving SciQL over the network
//!
//! The paper's engine lives inside MonetDB and is reached over the MAPI
//! socket protocol by many concurrent clients. This crate is that fourth
//! layer for the reproduction: a pure-`std` TCP server that multiplexes
//! N concurrent client sessions onto one process-wide
//! [`SharedEngine`](sciql::SharedEngine), and a blocking [`Client`] for
//! tests, the
//! REPL's `--connect` mode and embedding.
//!
//! * Wire format: length-prefixed, versioned frames ([`proto`]); result
//!   sets stream as a header frame plus row pages encoded with the same
//!   `gdk::codec` primitives the durable vault uses.
//! * Concurrency: SELECTs run on lock-free `Arc` column snapshots (no
//!   reader ever blocks another), mutating statements serialize through
//!   the engine's single-writer connection with per-statement WAL
//!   durability when a vault is attached.
//! * Lifecycle: handshake with version check, per-session prepared
//!   texts, ping, idle timeouts, and graceful shutdown (client-requested
//!   or [`ServerHandle::shutdown`]) that drains in-flight statements.
//!
//! ```no_run
//! use sciql::SharedEngine;
//! use sciql_net::{Client, Server};
//!
//! let engine = SharedEngine::in_memory();
//! let handle = Server::bind(engine, "127.0.0.1:0").unwrap().serve().unwrap();
//! let mut client = Client::connect(handle.addr()).unwrap();
//! client.execute("CREATE TABLE t (a INT)").unwrap();
//! let rows = client.query("SELECT COUNT(*) FROM t").unwrap();
//! assert_eq!(rows.row_count(), 1);
//! client.shutdown_server().unwrap();
//! handle.wait();
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod proto;
pub mod server;

pub use client::{Client, NetReply};
pub use http::{MetricsEndpoint, MetricsHandle};
pub use proto::{ExecReport, NetError, NetResult, ReplSnapshotFrame, WalToken, PROTO_VERSION};
pub use server::{Server, ServerConfig, ServerHandle};
