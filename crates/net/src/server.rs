//! The TCP server: one accept loop, one thread and one [`EngineSession`]
//! per client, all multiplexed onto a shared [`SharedEngine`].
//!
//! Reads run concurrently on `Arc` column snapshots; writes serialize
//! through the engine's single-writer connection (per-statement WAL
//! durability when the vault is attached). Shutdown is graceful: the
//! accept loop stops, in-flight statements finish, idle sessions are
//! closed, and `ServerHandle::wait` returns once every handler exited.

use crate::proto::{self, FrameBuffer, NetError, NetResult, Op, PAGE_ROWS};
use gdk::codec::Reader;
use sciql::{EngineSession, ErrorCode, QueryResult, SharedEngine};
use std::collections::HashMap;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Rows per result page.
    pub page_rows: usize,
    /// Soft byte bound per result page: a page closes once its body
    /// exceeds this, so wide string rows cannot balloon a page past the
    /// wire's frame limit. Keep it well under `proto::MAX_FRAME`.
    pub page_bytes: usize,
    /// Close a session after this long without wire activity
    /// (`None` = never).
    pub idle_timeout: Option<Duration>,
    /// Give up on a client that stops draining its socket after this
    /// long (`None` = block forever — a dead peer then pins its handler
    /// thread and stalls [`ServerHandle::wait`]).
    pub write_timeout: Option<Duration>,
    /// Server name announced in the handshake.
    pub name: String,
    /// Admission control: connections beyond this many concurrent
    /// sessions are refused with a [`ErrorCode::ServerBusy`] error frame
    /// instead of being accepted (`0` = unlimited). A refusal is typed
    /// and retryable — the listener queue never converts overload into
    /// a thread-spawn panic.
    pub max_sessions: usize,
    /// Per-statement result quota: a result set whose encoded body
    /// (header + pages) would exceed this many bytes is cut off with a
    /// [`ErrorCode::QuotaExceeded`] error frame (`0` = unlimited). The
    /// session survives — only the offending statement fails.
    pub max_result_bytes_per_session: usize,
    /// Admission bound on the group-commit queue: a write arriving while
    /// this many writers already await the group fsync is refused with
    /// [`ErrorCode::ServerBusy`] *before* executing (`0` = unlimited).
    /// Only meaningful with [`ServerConfig::group_commit`].
    pub max_queued_writes: usize,
    /// Commit concurrent writers' WAL records with one shared fsync
    /// (group commit) instead of one fsync per statement. Durability is
    /// identical — a statement is acknowledged only once its WAL bytes
    /// are on disk — but N concurrent writers cost ~1 fsync, not N.
    pub group_commit: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            page_rows: PAGE_ROWS,
            page_bytes: 1 << 20,
            idle_timeout: Some(Duration::from_secs(300)),
            write_timeout: Some(Duration::from_secs(30)),
            name: format!("sciql-net/{}", env!("CARGO_PKG_VERSION")),
            max_sessions: 1024,
            max_result_bytes_per_session: 0,
            max_queued_writes: 4096,
            group_commit: true,
        }
    }
}

/// Shared server state (accept loop + every session handler).
struct Shared {
    engine: Arc<SharedEngine>,
    config: ServerConfig,
    shutdown: AtomicBool,
    active_sessions: AtomicU64,
}

/// A bound, not-yet-serving server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind to `addr` (use port 0 for an ephemeral port) over a shared
    /// engine, with default tuning.
    pub fn bind(engine: Arc<SharedEngine>, addr: impl ToSocketAddrs) -> NetResult<Server> {
        Self::bind_with_config(engine, addr, ServerConfig::default())
    }

    /// [`Server::bind`] with explicit tuning.
    pub fn bind_with_config(
        engine: Arc<SharedEngine>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> NetResult<Server> {
        let listener = TcpListener::bind(addr)?;
        // Group commit only means something when there is a WAL to
        // fsync; an in-memory engine skips the committer thread.
        if config.group_commit && engine.is_persistent() {
            engine.enable_group_commit(config.max_queued_writes);
        }
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                engine,
                config,
                shutdown: AtomicBool::new(false),
                active_sessions: AtomicU64::new(0),
            }),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> NetResult<SocketAddr> {
        Ok(self.listener.local_addr()?)
    }

    /// Start serving on a background accept thread and return a handle
    /// for shutdown/wait.
    pub fn serve(self) -> NetResult<ServerHandle> {
        let addr = self.local_addr()?;
        let shared = Arc::clone(&self.shared);
        let listener = self.listener;
        // Accept with a poll interval so the loop notices the shutdown
        // flag without needing a wake-up connection.
        listener.set_nonblocking(true)?;
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_handlers = Arc::clone(&handlers);
        let accept = std::thread::Builder::new()
            .name("sciql-net-accept".into())
            .spawn(move || {
                while !shared.shutdown.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, peer)) => {
                            // Admission: the session count is claimed
                            // *here*, before the handler thread runs, so
                            // a burst of connections cannot race past
                            // the limit between accept and spawn.
                            let limit = shared.config.max_sessions;
                            if limit > 0
                                && shared.active_sessions.load(Ordering::SeqCst) >= limit as u64
                            {
                                refuse(stream, &shared.config, "session limit reached");
                                continue;
                            }
                            shared.active_sessions.fetch_add(1, Ordering::SeqCst);
                            let refusal = stream.try_clone().ok();
                            let session_shared = Arc::clone(&shared);
                            let spawned = std::thread::Builder::new()
                                .name(format!("sciql-net-{peer}"))
                                .spawn(move || {
                                    serve_session(&session_shared, stream);
                                    session_shared
                                        .active_sessions
                                        .fetch_sub(1, Ordering::SeqCst);
                                });
                            match spawned {
                                Ok(h) => {
                                    let mut hs = accept_handlers.lock().unwrap();
                                    hs.retain(|h| !h.is_finished());
                                    hs.push(h);
                                }
                                // Thread exhaustion is overload, not a
                                // reason to kill the accept loop: the
                                // client gets a typed, retryable refusal.
                                Err(_) => {
                                    shared.active_sessions.fetch_sub(1, Ordering::SeqCst);
                                    if let Some(s) = refusal {
                                        refuse(s, &shared.config, "cannot spawn a session thread");
                                    }
                                }
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(20));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(20)),
                    }
                }
            })
            .expect("spawn accept thread");
        Ok(ServerHandle {
            addr,
            shared: self.shared,
            accept: Some(accept),
            handlers,
        })
    }
}

/// Controls a serving server: request shutdown, wait for drain.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The serving address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Has a shutdown been requested (by [`ServerHandle::shutdown`] or a
    /// client `Shutdown` frame)?
    pub fn shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Sessions currently connected.
    pub fn active_sessions(&self) -> u64 {
        self.shared.active_sessions.load(Ordering::SeqCst)
    }

    /// Request a graceful shutdown (idempotent, non-blocking): stop
    /// accepting, let in-flight statements finish, close sessions.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Block until the accept loop and every session handler have
    /// exited. Returns the shared engine so the caller can checkpoint or
    /// reopen it embedded.
    pub fn wait(mut self) -> Arc<SharedEngine> {
        if let Some(h) = self.accept.take() {
            h.join().ok();
        }
        loop {
            let hs: Vec<JoinHandle<()>> = std::mem::take(&mut *self.handlers.lock().unwrap());
            if hs.is_empty() {
                break;
            }
            for h in hs {
                h.join().ok();
            }
        }
        Arc::clone(&self.shared.engine)
    }

    /// [`ServerHandle::shutdown`] then [`ServerHandle::wait`].
    pub fn stop(self) -> Arc<SharedEngine> {
        self.shutdown();
        self.wait()
    }
}

/// Why a session ended (drives the farewell, if any).
enum SessionEnd {
    /// Client sent `Close` or hung up cleanly.
    Closed,
    /// Server is shutting down.
    Shutdown,
    /// No frame within the idle timeout.
    Idle,
    /// Socket or framing failure — nothing more can be said to the peer.
    Broken,
}

/// Turn away a connection before its session starts: a best-effort
/// typed `ServerBusy` error frame — so the peer's driver surfaces a
/// retryable refusal instead of a dead socket — then hang up.
fn refuse(mut stream: TcpStream, config: &ServerConfig, why: &str) {
    stream.set_write_timeout(config.write_timeout).ok();
    stream.set_nodelay(true).ok();
    proto::write_frame(
        &mut stream,
        &proto::error(ErrorCode::ServerBusy, &format!("connection refused: {why}")),
    )
    .ok();
}

/// Byte-metering socket wrapper: every read and write a session makes
/// feeds the global `bytes_in`/`bytes_out` counters and the session's
/// own meter (the `bytes_in`/`bytes_out` columns of `sys.sessions`).
struct Metered<'a> {
    stream: &'a mut TcpStream,
    meter: sciql::SessionMeter,
}

impl std::io::Read for Metered<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = std::io::Read::read(self.stream, buf)?;
        sciql_obs::global().bytes_in.add(n as u64);
        self.meter.add_in(n as u64);
        Ok(n)
    }
}

impl std::io::Write for Metered<'_> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.stream.write(buf)?;
        sciql_obs::global().bytes_out.add(n as u64);
        self.meter.add_out(n as u64);
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.stream.flush()
    }
}

/// Reply backlog bound: a pipelined session's held-back replies are
/// pushed to the socket once they exceed this many bytes, so a large
/// result set streams instead of buffering whole in memory.
const WIRE_FLUSH_BYTES: usize = 256 * 1024;

/// Reply coalescer for pipelined sessions. `proto::write_frame` flushes
/// after every frame; here that flush is a no-op (below the backlog
/// bound) and actual transmission happens in [`Wire::flush_wire`], which
/// the session loop calls only once no complete request frame remains
/// buffered — so a client that sent N statements back-to-back gets its
/// N replies in one socket write.
struct Wire<'a> {
    inner: Metered<'a>,
    out: Vec<u8>,
}

impl std::io::Read for Wire<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        std::io::Read::read(&mut self.inner, buf)
    }
}

impl std::io::Write for Wire<'_> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.out.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        if self.out.len() >= WIRE_FLUSH_BYTES {
            self.flush_wire()
        } else {
            Ok(())
        }
    }
}

impl Wire<'_> {
    /// Push every held-back reply byte onto the socket.
    fn flush_wire(&mut self) -> std::io::Result<()> {
        if !self.out.is_empty() {
            self.inner.write_all(&self.out)?;
            self.out.clear();
        }
        self.inner.flush()
    }
}

/// One client from handshake to hangup.
fn serve_session(shared: &Shared, mut stream: TcpStream) {
    // A short read timeout turns the blocking socket into a poll loop:
    // between (and during) frames the handler keeps checking the
    // shutdown flag and the idle clock. The write timeout bounds how
    // long a client that stops draining its socket can pin this thread
    // (and hence how long a graceful shutdown can take).
    stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .ok();
    stream.set_write_timeout(shared.config.write_timeout).ok();
    stream.set_nodelay(true).ok();
    let gauge = &sciql_obs::global().sessions_open;
    gauge.inc();
    let session_peer = stream.peer_addr();
    let mut session = shared.engine.session();
    if let Ok(peer) = session_peer {
        session.set_peer(&peer.to_string());
    }
    let meter = session.meter();
    let mut wire = Wire {
        inner: Metered {
            stream: &mut stream,
            meter,
        },
        out: Vec::new(),
    };
    let end = session_loop(shared, &mut wire, &mut session);
    // Best-effort farewell; the peer may already be gone.
    let farewell = match end {
        SessionEnd::Closed | SessionEnd::Broken => None,
        SessionEnd::Shutdown => Some("server shutting down"),
        SessionEnd::Idle => Some("idle timeout exceeded"),
    };
    if let Some(msg) = farewell {
        proto::write_frame(&mut wire, &proto::error(ErrorCode::Connection, msg)).ok();
    }
    wire.flush_wire().ok();
    gauge.dec();
}

fn session_loop(shared: &Shared, stream: &mut Wire<'_>, session: &mut EngineSession) -> SessionEnd {
    let mut fb = FrameBuffer::new();
    let mut greeted = false;
    // Parameter values staged by Bind frames, per prepared-statement name.
    let mut bound: HashMap<String, Vec<gdk::Value>> = HashMap::new();
    let mut last_activity = Instant::now();
    loop {
        // Pipelining: replies stay coalesced while the client still has
        // a complete request frame buffered; the batch goes out in one
        // socket write before this thread blocks on the next read.
        if !fb.has_complete_frame() && stream.flush_wire().is_err() {
            return SessionEnd::Broken;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return SessionEnd::Shutdown;
        }
        if let Some(limit) = shared.config.idle_timeout {
            if last_activity.elapsed() > limit {
                return SessionEnd::Idle;
            }
        }
        let buffered_before = fb.buffered_bytes();
        let frame = match fb.poll_frame(stream) {
            Ok(Some(f)) => f,
            Ok(None) => {
                // A partial frame trickling in is activity too: a slow
                // upload must not be reaped as idle mid-transfer.
                if fb.buffered_bytes() != buffered_before {
                    last_activity = Instant::now();
                }
                continue;
            }
            Err(NetError::Io(e)) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                return SessionEnd::Closed;
            }
            Err(_) => return SessionEnd::Broken,
        };
        last_activity = Instant::now();
        let (op, body) = match proto::split(&frame) {
            Ok(x) => x,
            Err(e) => {
                proto::write_frame(stream, &proto::error(ErrorCode::Protocol, &e.to_string())).ok();
                return SessionEnd::Broken;
            }
        };
        if !greeted {
            if op != Op::Hello {
                proto::write_frame(
                    stream,
                    &proto::error(
                        ErrorCode::Protocol,
                        "handshake required: first frame must be Hello",
                    ),
                )
                .ok();
                return SessionEnd::Broken;
            }
            let mut r = Reader::new(body);
            let ok = r.u16().is_ok() && r.str().is_ok();
            if !ok {
                proto::write_frame(
                    stream,
                    &proto::error(ErrorCode::Protocol, "malformed Hello"),
                )
                .ok();
                return SessionEnd::Broken;
            }
            // Versioning: we always answer with the version we speak;
            // an incompatible client hangs up after inspecting it.
            if proto::write_frame(stream, &proto::hello_ok(&shared.config.name, session.id()))
                .is_err()
            {
                return SessionEnd::Broken;
            }
            greeted = true;
            continue;
        }
        let ok = match op {
            Op::Ping => proto::write_frame(stream, &proto::bare(Op::Pong)).is_ok(),
            Op::Stats => {
                let report = proto::ExecReport::from_last_exec(&session.last_exec());
                proto::write_frame(stream, &proto::stats_reply(&report)).is_ok()
            }
            Op::Metrics => {
                let snap = sciql_obs::global().snapshot();
                proto::write_frame(stream, &proto::metrics_reply(&snap)).is_ok()
            }
            Op::TraceEnable => match proto::read_trace_enable(body) {
                Ok(on) => {
                    session.set_tracing(on);
                    proto::write_frame(stream, &proto::bare(Op::Ok)).is_ok()
                }
                Err(e) => {
                    proto::write_frame(stream, &proto::error(ErrorCode::Protocol, &e.to_string()))
                        .ok();
                    false
                }
            },
            Op::TraceFetch => {
                let text = session.last_trace().map(|t| t.render());
                proto::write_frame(stream, &proto::trace_reply(text.as_deref())).is_ok()
            }
            Op::Close => return SessionEnd::Closed,
            Op::Shutdown => {
                shared.shutdown.store(true, Ordering::SeqCst);
                proto::write_frame(stream, &proto::bare(Op::Ok)).ok();
                return SessionEnd::Shutdown;
            }
            Op::Query => match proto::read_query(body) {
                Ok((token, sql)) => {
                    if !wait_for_token(shared, token) {
                        lagging_reply(stream, shared, token)
                    } else {
                        let result = session.execute(&sql);
                        let reply_token = session.last_commit_token().unwrap_or((0, 0));
                        answer(stream, shared, result, reply_token)
                    }
                }
                Err(_) => {
                    proto::write_frame(
                        stream,
                        &proto::error(ErrorCode::Protocol, "malformed Query"),
                    )
                    .ok();
                    false
                }
            },
            Op::Prepare => {
                let mut r = Reader::new(body);
                match (r.str(), r.str()) {
                    (Ok(name), Ok(sql)) => match session.prepare(&name, &sql) {
                        Ok(nparams) => {
                            bound.remove(&name.to_ascii_lowercase());
                            proto::write_frame(stream, &proto::stmt_ok(nparams as u16)).is_ok()
                        }
                        Err(e) => {
                            proto::write_frame(stream, &proto::error(e.code(), &e.to_string()))
                                .is_ok()
                        }
                    },
                    _ => {
                        proto::write_frame(
                            stream,
                            &proto::error(ErrorCode::Protocol, "malformed Prepare"),
                        )
                        .ok();
                        false
                    }
                }
            }
            Op::ExecPrepared => match Reader::new(body).str() {
                Ok(name) => {
                    let result = session.execute_prepared(&name, &[]);
                    let reply_token = session.last_commit_token().unwrap_or((0, 0));
                    answer(stream, shared, result, reply_token)
                }
                Err(_) => {
                    proto::write_frame(
                        stream,
                        &proto::error(ErrorCode::Protocol, "malformed ExecPrepared"),
                    )
                    .ok();
                    false
                }
            },
            Op::Bind => match proto::read_bind(body) {
                // Binding requires an existing prepared statement: a
                // typo'd name fails here (not later at ExecBound), and
                // the staged-values map stays bounded by the session's
                // prepared set.
                Ok((name, values)) => {
                    if session.has_prepared(&name) {
                        bound.insert(name.to_ascii_lowercase(), values);
                        proto::write_frame(stream, &proto::bare(Op::Ok)).is_ok()
                    } else {
                        proto::write_frame(
                            stream,
                            &proto::error(
                                ErrorCode::Statement,
                                &format!("no prepared statement named {name:?}"),
                            ),
                        )
                        .is_ok()
                    }
                }
                Err(e) => {
                    proto::write_frame(stream, &proto::error(ErrorCode::Protocol, &e.to_string()))
                        .ok();
                    false
                }
            },
            Op::Deallocate => match Reader::new(body).str() {
                Ok(name) => {
                    bound.remove(&name.to_ascii_lowercase());
                    let existed = session.deallocate(&name);
                    let reply_token = session.last_commit_token().unwrap_or((0, 0));
                    proto::write_frame(stream, &proto::affected(existed as u64, reply_token))
                        .is_ok()
                }
                Err(_) => {
                    proto::write_frame(
                        stream,
                        &proto::error(ErrorCode::Protocol, "malformed Deallocate"),
                    )
                    .ok();
                    false
                }
            },
            Op::ExecBound => match Reader::new(body).str() {
                Ok(name) => {
                    let params = bound
                        .get(&name.to_ascii_lowercase())
                        .cloned()
                        .unwrap_or_default();
                    let result = session.execute_prepared(&name, &params);
                    let reply_token = session.last_commit_token().unwrap_or((0, 0));
                    answer(stream, shared, result, reply_token)
                }
                Err(_) => {
                    proto::write_frame(
                        stream,
                        &proto::error(ErrorCode::Protocol, "malformed ExecBound"),
                    )
                    .ok();
                    false
                }
            },
            Op::ReplHello => {
                // The session turns into a replication link: from here
                // on this socket speaks only ReplRecord/ReplSnapshot
                // (outbound) and ReplAck (inbound), until hangup.
                return match proto::read_repl_position(body) {
                    Ok(pos) => serve_replication(shared, stream, &mut fb, pos),
                    Err(e) => {
                        proto::write_frame(
                            stream,
                            &proto::error(ErrorCode::Protocol, &e.to_string()),
                        )
                        .ok();
                        SessionEnd::Broken
                    }
                };
            }
            other => {
                proto::write_frame(
                    stream,
                    &proto::error(
                        ErrorCode::Protocol,
                        &format!("unexpected client opcode {other:?}"),
                    ),
                )
                .ok();
                false
            }
        };
        if !ok {
            return SessionEnd::Broken;
        }
    }
}

/// Bounded wait for a monotonic-read token. Returns `false` when the
/// engine has not applied the requested WAL position within ~2 s — the
/// statement then fails typed ([`ErrorCode::ReplicaLagging`]) instead
/// of returning stale rows.
fn wait_for_token(shared: &Shared, token: proto::WalToken) -> bool {
    if token == (0, 0) {
        return true;
    }
    let deadline = Instant::now() + Duration::from_secs(2);
    loop {
        if proto::token_satisfied(shared.engine.applied_position(), token) {
            return true;
        }
        if Instant::now() >= deadline || shared.shutdown.load(Ordering::SeqCst) {
            return false;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Answer a token-constrained read the replica cannot serve yet.
fn lagging_reply(stream: &mut Wire<'_>, shared: &Shared, token: proto::WalToken) -> bool {
    let (agen, apos) = shared.engine.applied_position();
    proto::write_frame(
        stream,
        &proto::error(
            ErrorCode::ReplicaLagging,
            &format!(
                "replica lagging: applied WAL position ({agen}, {apos}) has not reached \
                 the requested read token ({}, {}) — retry, or read from the primary",
                token.0, token.1
            ),
        ),
    )
    .is_ok()
}

/// A snapshot transfer's two failure modes.
enum ShipError {
    /// The engine could not produce the image (reported to the peer).
    Engine(sciql::EngineError),
    /// The socket died mid-transfer (nothing more can be said).
    Io,
}

/// Send the primary's full vault image as a chunked `ReplSnapshot`
/// transfer (Begin, then per file a `File` announcement and its
/// `Chunk`s, then `End`). Returns the image's `(generation, durable)`.
fn ship_snapshot(shared: &Shared, stream: &mut Wire<'_>) -> Result<(u64, u64), ShipError> {
    // Chunks stay well under MAX_FRAME so a big column file cannot
    // produce an oversized frame.
    const CHUNK: usize = 4 << 20;
    let image = shared.engine.vault_image().map_err(ShipError::Engine)?;
    let send = |stream: &mut Wire<'_>, f: &proto::ReplSnapshotFrame| {
        proto::write_frame(stream, &proto::repl_snapshot(f)).map_err(|_| ShipError::Io)
    };
    send(
        stream,
        &proto::ReplSnapshotFrame::Begin {
            generation: image.generation,
            durable: image.durable,
            files: image.files.len() as u32,
        },
    )?;
    for (name, bytes) in &image.files {
        send(
            stream,
            &proto::ReplSnapshotFrame::File {
                name: name.clone(),
                size: bytes.len() as u64,
            },
        )?;
        for chunk in bytes.chunks(CHUNK) {
            send(stream, &proto::ReplSnapshotFrame::Chunk(chunk.to_vec()))?;
        }
    }
    send(stream, &proto::ReplSnapshotFrame::End)?;
    stream.flush_wire().map_err(|_| ShipError::Io)?;
    Ok((image.generation, image.durable))
}

/// Stream acknowledged WAL records to a connected replica until it
/// hangs up or the server shuts down. Entered when a session's first
/// post-handshake frame is `ReplHello` (carrying the replica's applied
/// position). A replica on another generation — the primary
/// checkpointed — or ahead of the durable WAL is re-bootstrapped with
/// a full snapshot; otherwise only records at or below the group
/// commit's durable watermark are shipped, so a primary crash can
/// never leave a replica *ahead* of what the primary recovers.
fn serve_replication(
    shared: &Shared,
    stream: &mut Wire<'_>,
    fb: &mut FrameBuffer,
    hello: proto::WalToken,
) -> SessionEnd {
    if !shared.engine.is_persistent() {
        proto::write_frame(
            stream,
            &proto::error(
                ErrorCode::Statement,
                "replication requires a persistent (vault-backed) primary",
            ),
        )
        .ok();
        stream.flush_wire().ok();
        return SessionEnd::Closed;
    }
    let peer = stream
        .inner
        .stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "?".into());
    let (mut repl_gen, mut sent) = hello;
    let mut acked = hello;
    let mut last_send = Instant::now();
    let end = loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break SessionEnd::Shutdown;
        }
        let (gen, durable) = shared.engine.durable_position();
        if gen != repl_gen || sent > durable {
            match ship_snapshot(shared, stream) {
                Ok((g, d)) => {
                    repl_gen = g;
                    sent = d;
                    acked = (g, d);
                    last_send = Instant::now();
                }
                Err(ShipError::Engine(e)) => {
                    proto::write_frame(stream, &proto::error(e.code(), &e.to_string())).ok();
                    stream.flush_wire().ok();
                    break SessionEnd::Broken;
                }
                Err(ShipError::Io) => break SessionEnd::Broken,
            }
        } else if durable > sent {
            let batch = match shared.engine.wal_records_from(sent) {
                Ok(b) => b,
                Err(e) => {
                    proto::write_frame(stream, &proto::error(e.code(), &e.to_string())).ok();
                    stream.flush_wire().ok();
                    break SessionEnd::Broken;
                }
            };
            // A generation mismatch here means a checkpoint slipped in
            // between the position read and the file read; the next
            // iteration sees the new generation and snapshots.
            if batch.generation == repl_gen {
                let mut dead = false;
                for r in &batch.records {
                    let frame = proto::repl_record(
                        batch.generation,
                        batch.durable,
                        Some((r.end, &r.payload)),
                    );
                    if proto::write_frame(stream, &frame).is_err() {
                        dead = true;
                        break;
                    }
                    sent = r.end;
                    sciql_obs::global().repl_records_shipped.inc();
                }
                last_send = Instant::now();
                if dead || stream.flush_wire().is_err() {
                    break SessionEnd::Broken;
                }
            }
        } else if last_send.elapsed() > Duration::from_millis(500) {
            // Heartbeat: keeps the replica's durable/lag view fresh and
            // detects a dead peer even when the primary is idle.
            let hb = proto::repl_record(gen, durable, None);
            if proto::write_frame(stream, &hb).is_err() || stream.flush_wire().is_err() {
                break SessionEnd::Broken;
            }
            last_send = Instant::now();
        }
        sciql_obs::replication().upsert(sciql_obs::ReplLink {
            role: sciql_obs::ReplRole::Primary,
            peer: peer.clone(),
            generation: repl_gen,
            shipped: sent,
            applied: if acked.0 == repl_gen { acked.1 } else { 0 },
            durable,
        });
        // Drain replica acknowledgements; the 50 ms socket read timeout
        // paces the loop when the link is idle.
        match fb.poll_frame(stream) {
            Ok(Some(frame)) => match proto::split(&frame) {
                Ok((Op::ReplAck, body)) => {
                    if let Ok(pos) = proto::read_repl_position(body) {
                        acked = pos;
                    }
                }
                Ok((Op::Close, _)) => break SessionEnd::Closed,
                _ => break SessionEnd::Broken,
            },
            Ok(None) => {}
            Err(NetError::Io(e)) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                break SessionEnd::Closed;
            }
            Err(_) => break SessionEnd::Broken,
        }
    };
    sciql_obs::replication().remove(sciql_obs::ReplRole::Primary, &peer);
    end
}

/// Stream one statement's outcome: `Affected`, an `Error`, or header +
/// pages + done. Returns `false` when the socket died.
fn answer(
    stream: &mut Wire<'_>,
    shared: &Shared,
    result: sciql::Result<QueryResult>,
    token: proto::WalToken,
) -> bool {
    match result {
        Err(e) => proto::write_frame(stream, &proto::error(e.code(), &e.to_string())).is_ok(),
        Ok(QueryResult::Affected(n)) => {
            proto::write_frame(stream, &proto::affected(n as u64, token)).is_ok()
        }
        Ok(QueryResult::Rows(rs)) => {
            let header = rs.encode_header();
            let mut sent = header.len();
            if proto::write_frame(stream, &proto::wrap(Op::ResultHeader, &header)).is_err() {
                return false;
            }
            // Stream pages lazily — only the page in flight is ever
            // materialised, and each closes at page_rows rows *or*
            // page_bytes of body, whichever comes first, so no row mix
            // can push a frame past MAX_FRAME.
            let limit = shared.config.max_result_bytes_per_session;
            let mut npages: u32 = 0;
            for page in rs.pages(shared.config.page_rows, shared.config.page_bytes) {
                sent += page.len();
                if limit > 0 && sent > limit {
                    // Quota: cut the stream with a typed mid-stream
                    // error (wire-legal inside a result stream). Only
                    // the statement fails; the session stays aligned.
                    return proto::write_frame(
                        stream,
                        &proto::error(
                            ErrorCode::QuotaExceeded,
                            &format!(
                                "result set exceeds max_result_bytes_per_session \
                                 ({limit} bytes)"
                            ),
                        ),
                    )
                    .is_ok();
                }
                if proto::write_frame(stream, &proto::wrap(Op::ResultPage, &page)).is_err() {
                    return false;
                }
                npages += 1;
            }
            proto::write_frame(stream, &proto::result_done(rs.row_count() as u64, npages)).is_ok()
        }
    }
}
