//! The blocking client: connect, handshake, send statements, reassemble
//! paged results into a [`ResultSet`].

use crate::proto::{self, NetError, NetResult, Op, PROTO_VERSION};
use gdk::codec::Reader;
use sciql::result::ResultSetBuilder;
use sciql::ResultSet;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A statement's outcome as seen over the wire.
#[derive(Debug, Clone)]
pub enum NetReply {
    /// DDL/DML: affected cells/rows.
    Affected(u64),
    /// SELECT: the reassembled result set.
    Rows(ResultSet),
}

impl NetReply {
    /// Unwrap a row result.
    pub fn rows(self) -> NetResult<ResultSet> {
        match self {
            NetReply::Rows(r) => Ok(r),
            NetReply::Affected(_) => Err(NetError::protocol("statement did not produce rows")),
        }
    }

    /// Unwrap an affected-count result.
    pub fn affected(self) -> NetResult<u64> {
        match self {
            NetReply::Affected(n) => Ok(n),
            NetReply::Rows(_) => Err(NetError::protocol("statement produced rows")),
        }
    }
}

/// A connected, handshaken session with a `sciql-net` server.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    session_id: u64,
    server: String,
    /// Set after an I/O or framing failure mid-exchange. Once the reply
    /// stream may be desynchronized (e.g. a timed-out read whose answer
    /// later lands in the socket), attributing the *next* reply to the
    /// *next* request would silently return wrong results — so every
    /// further call fails instead. Statement errors do not poison.
    broken: bool,
    /// Monotonic-read token sent with every `Query` (v6). `(0, 0)`
    /// means unconstrained; a replica holds a constrained read until it
    /// has applied at least this WAL position.
    read_token: proto::WalToken,
    /// The newest durable WAL position acknowledged by this session's
    /// writes — what a write's `Affected` reply carried last.
    last_token: proto::WalToken,
}

impl Client {
    /// Connect and perform the `Hello`/`HelloOk` handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> NetResult<Client> {
        Self::connect_named(addr, "sciql-net-client")
    }

    /// [`Client::connect`] announcing a client name (shows up in server
    /// diagnostics).
    pub fn connect_named(addr: impl ToSocketAddrs, name: &str) -> NetResult<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        // A safety net so a dead server never hangs the client forever.
        // A statement that genuinely takes longer trips it too — that
        // poisons the connection (see `broken`) rather than risking a
        // desynchronized reply stream; reconnect and retry in that case.
        stream.set_read_timeout(Some(Duration::from_secs(60))).ok();
        let mut client = Client {
            stream,
            session_id: 0,
            server: String::new(),
            broken: false,
            read_token: (0, 0),
            last_token: (0, 0),
        };
        proto::write_frame(&mut client.stream, &proto::hello(name))?;
        let frame = client.expect_frame()?;
        let (op, body) = proto::split(&frame)?;
        match op {
            Op::HelloOk => {
                let mut r = Reader::new(body);
                let theirs = r
                    .u16()
                    .map_err(|_| NetError::protocol("malformed HelloOk"))?;
                if theirs != PROTO_VERSION {
                    return Err(NetError::Version {
                        ours: PROTO_VERSION,
                        theirs,
                    });
                }
                client.server = r
                    .str()
                    .map_err(|_| NetError::protocol("malformed HelloOk"))?;
                client.session_id = r
                    .u64()
                    .map_err(|_| NetError::protocol("malformed HelloOk"))?;
                Ok(client)
            }
            Op::Error => Err(proto::read_error(body)),
            other => Err(NetError::protocol(format!(
                "expected HelloOk, got {other:?}"
            ))),
        }
    }

    /// Server-assigned session id.
    pub fn session_id(&self) -> u64 {
        self.session_id
    }

    /// Server name from the handshake.
    pub fn server_name(&self) -> &str {
        &self.server
    }

    /// Require every subsequent `Query` on this connection to observe at
    /// least this WAL position (monotonic reads against a replica).
    /// `(0, 0)` clears the constraint.
    pub fn set_read_token(&mut self, token: proto::WalToken) {
        self.read_token = token;
    }

    /// The durable WAL position acknowledged by this session's most
    /// recent write (`(0, 0)` before any write, or on an in-memory
    /// server). Hand it to a replica client via
    /// [`Client::set_read_token`] to read your own writes.
    pub fn last_token(&self) -> proto::WalToken {
        self.last_token
    }

    /// Is this connection poisoned by an earlier I/O or framing failure?
    /// A broken client refuses further statements; reconnect instead.
    pub fn is_broken(&self) -> bool {
        self.broken
    }

    /// Run one request/reply exchange with poison discipline: refuse if
    /// already broken, and break on any failure that can leave the
    /// reply stream out of step (everything except a server-reported
    /// statement error, after which the stream is still aligned).
    fn exchange<T>(&mut self, f: impl FnOnce(&mut Self) -> NetResult<T>) -> NetResult<T> {
        if self.broken {
            return Err(NetError::protocol(
                "connection is broken by an earlier failure; reconnect",
            ));
        }
        let result = f(self);
        if let Err(e) = &result {
            if !matches!(e, NetError::Server { .. }) {
                self.broken = true;
            }
        }
        result
    }

    /// Execute one statement.
    pub fn execute(&mut self, sql: &str) -> NetResult<NetReply> {
        self.exchange(|c| {
            let token = c.read_token;
            proto::write_frame(&mut c.stream, &proto::query(token, sql))?;
            c.read_reply()
        })
    }

    /// Execute a SELECT and return its rows.
    pub fn query(&mut self, sql: &str) -> NetResult<ResultSet> {
        self.execute(sql)?.rows()
    }

    /// Execute a batch of statements pipelined: every `Query` frame goes
    /// out in one socket write, then all replies are read back in order
    /// — the whole batch costs one round trip instead of one per
    /// statement. Replies are positional: `result[i]` answers `sqls[i]`.
    /// A statement the server refuses (parse error, quota, busy) lands
    /// as the `Err` in its own slot and the batch keeps going — the
    /// server answers every frame, so the reply stream stays aligned.
    /// Only a transport failure aborts (and poisons the connection).
    pub fn execute_pipelined(&mut self, sqls: &[&str]) -> NetResult<Vec<NetResult<NetReply>>> {
        self.exchange(|c| {
            let mut batch = Vec::new();
            for sql in sqls {
                proto::write_frame(&mut batch, &proto::query(c.read_token, sql))?;
            }
            std::io::Write::write_all(&mut c.stream, &batch)?;
            let mut replies = Vec::with_capacity(sqls.len());
            for _ in sqls {
                match c.read_reply() {
                    Err(e @ NetError::Server { .. }) => replies.push(Err(e)),
                    Err(transport) => return Err(transport),
                    Ok(r) => replies.push(Ok(r)),
                }
            }
            Ok(replies)
        })
    }

    /// Prepare a named statement in the server-side session. The server
    /// parses it immediately (and compiles SELECTs once, on first
    /// execution); returns the number of `?`/`:name` bind slots.
    pub fn prepare(&mut self, name: &str, sql: &str) -> NetResult<u16> {
        self.exchange(|c| {
            proto::write_frame(&mut c.stream, &proto::prepare(name, sql))?;
            let frame = c.expect_frame()?;
            match proto::split(&frame)? {
                (Op::StmtOk, body) => proto::read_stmt_ok(body),
                (Op::Error, body) => Err(proto::read_error(body)),
                (op, _) => Err(NetError::protocol(format!("expected StmtOk, got {op:?}"))),
            }
        })
    }

    /// Execute a statement previously stashed with [`Client::prepare`]
    /// (no parameters; use [`Client::execute_bound`] to bind values).
    pub fn execute_prepared(&mut self, name: &str) -> NetResult<NetReply> {
        self.exchange(|c| {
            proto::write_frame(&mut c.stream, &proto::exec_prepared(name))?;
            c.read_reply()
        })
    }

    /// Stage bound parameter values for a prepared statement (slot
    /// order). The values travel codec-encoded and bit-exact; they stay
    /// staged until the next [`Client::bind`] for the same name.
    pub fn bind(&mut self, name: &str, params: &[gdk::Value]) -> NetResult<()> {
        self.exchange(|c| {
            proto::write_frame(&mut c.stream, &proto::bind(name, params))?;
            let frame = c.expect_frame()?;
            match proto::split(&frame)? {
                (Op::Ok, _) => Ok(()),
                (Op::Error, body) => Err(proto::read_error(body)),
                (op, _) => Err(NetError::protocol(format!("expected Ok, got {op:?}"))),
            }
        })
    }

    /// Execute a prepared statement with the values staged by the last
    /// [`Client::bind`] (server-side cached plan, no re-planning).
    pub fn exec_bound(&mut self, name: &str) -> NetResult<NetReply> {
        self.exchange(|c| {
            proto::write_frame(&mut c.stream, &proto::exec_bound(name))?;
            c.read_reply()
        })
    }

    /// [`Client::bind`] + [`Client::exec_bound`] pipelined: both frames
    /// go out back-to-back and both replies are read afterwards, so a
    /// bound re-execution costs one round trip, not two. If the bind is
    /// refused, the exec answer (also an error — the values never
    /// staged) is drained to keep the reply stream aligned and the bind
    /// error is returned.
    pub fn execute_bound(&mut self, name: &str, params: &[gdk::Value]) -> NetResult<NetReply> {
        self.exchange(|c| {
            proto::write_frame(&mut c.stream, &proto::bind(name, params))?;
            proto::write_frame(&mut c.stream, &proto::exec_bound(name))?;
            let frame = c.expect_frame()?;
            let bind_err = match proto::split(&frame)? {
                (Op::Ok, _) => None,
                (Op::Error, body) => Some(proto::read_error(body)),
                (op, _) => {
                    return Err(NetError::protocol(format!("expected Ok, got {op:?}")));
                }
            };
            let reply = c.read_reply();
            match (bind_err, reply) {
                // Bind refused: the exec answer is a statement error
                // too; report the root cause. A transport-level failure
                // on the second read still wins so the poison discipline
                // sees it.
                (Some(e), Ok(_) | Err(NetError::Server { .. })) => Err(e),
                (Some(_), Err(other)) => Err(other),
                (None, r) => r,
            }
        })
    }

    /// Drop a prepared statement server-side; `true` if it existed.
    pub fn deallocate(&mut self, name: &str) -> NetResult<bool> {
        self.exchange(|c| {
            proto::write_frame(&mut c.stream, &proto::deallocate(name))?;
            match c.read_reply()? {
                NetReply::Affected(n) => Ok(n > 0),
                other => Err(NetError::protocol(format!(
                    "unexpected Deallocate reply {other:?}"
                ))),
            }
        })
    }

    /// Liveness round trip.
    pub fn ping(&mut self) -> NetResult<()> {
        self.exchange(|c| {
            proto::write_frame(&mut c.stream, &proto::bare(Op::Ping))?;
            let frame = c.expect_frame()?;
            match proto::split(&frame)? {
                (Op::Pong, _) => Ok(()),
                (op, _) => Err(NetError::protocol(format!("expected Pong, got {op:?}"))),
            }
        })
    }

    /// Execution report for this session's most recent statement: the
    /// interpreter counters and the optimizer pipeline's pass summary
    /// (what a local `LastExec` would show).
    pub fn last_stats(&mut self) -> NetResult<proto::ExecReport> {
        self.exchange(|c| {
            proto::write_frame(&mut c.stream, &proto::bare(Op::Stats))?;
            let frame = c.expect_frame()?;
            match proto::split(&frame)? {
                (Op::StatsReply, body) => proto::read_stats_reply(body),
                (Op::Error, body) => Err(proto::read_error(body)),
                (op, _) => Err(NetError::protocol(format!(
                    "expected StatsReply, got {op:?}"
                ))),
            }
        })
    }

    /// Snapshot of the server's engine-wide metrics registry: query
    /// counters by kind, latency histograms (query, WAL fsync,
    /// checkpoint), plan-cache hit/miss, tile churn, live sessions and
    /// wire byte counts.
    pub fn metrics(&mut self) -> NetResult<sciql_obs::MetricsSnapshot> {
        self.exchange(|c| {
            proto::write_frame(&mut c.stream, &proto::bare(Op::Metrics))?;
            let frame = c.expect_frame()?;
            match proto::split(&frame)? {
                (Op::MetricsReply, body) => proto::read_metrics_reply(body),
                (Op::Error, body) => Err(proto::read_error(body)),
                (op, _) => Err(NetError::protocol(format!(
                    "expected MetricsReply, got {op:?}"
                ))),
            }
        })
    }

    /// Switch per-session query tracing on or off server-side. While
    /// on, every statement this session executes records a span tree;
    /// fetch the latest with [`Client::fetch_trace`].
    pub fn set_tracing(&mut self, on: bool) -> NetResult<()> {
        self.exchange(|c| {
            proto::write_frame(&mut c.stream, &proto::trace_enable(on))?;
            let frame = c.expect_frame()?;
            match proto::split(&frame)? {
                (Op::Ok, _) => Ok(()),
                (Op::Error, body) => Err(proto::read_error(body)),
                (op, _) => Err(NetError::protocol(format!("expected Ok, got {op:?}"))),
            }
        })
    }

    /// The rendered span tree of this session's most recent traced
    /// statement, or `None` when tracing was off / nothing ran yet.
    pub fn fetch_trace(&mut self) -> NetResult<Option<String>> {
        self.exchange(|c| {
            proto::write_frame(&mut c.stream, &proto::bare(Op::TraceFetch))?;
            let frame = c.expect_frame()?;
            match proto::split(&frame)? {
                (Op::TraceReply, body) => proto::read_trace_reply(body),
                (Op::Error, body) => Err(proto::read_error(body)),
                (op, _) => Err(NetError::protocol(format!(
                    "expected TraceReply, got {op:?}"
                ))),
            }
        })
    }

    /// Ask the server to shut down gracefully (in-flight statements of
    /// other sessions finish first).
    pub fn shutdown_server(mut self) -> NetResult<()> {
        proto::write_frame(&mut self.stream, &proto::bare(Op::Shutdown))?;
        let frame = self.expect_frame()?;
        match proto::split(&frame)? {
            (Op::Ok, _) => Ok(()),
            (op, _) => Err(NetError::protocol(format!("expected Ok, got {op:?}"))),
        }
    }

    /// Orderly hangup.
    pub fn close(mut self) -> NetResult<()> {
        proto::write_frame(&mut self.stream, &proto::bare(Op::Close))
    }

    fn expect_frame(&mut self) -> NetResult<Vec<u8>> {
        proto::read_frame(&mut self.stream)?.ok_or_else(|| NetError::protocol("server hung up"))
    }

    /// Read one statement answer: `Affected`, `Error`, `Ok` (mapped to
    /// `Affected(0)`), or header + pages + done.
    fn read_reply(&mut self) -> NetResult<NetReply> {
        let frame = self.expect_frame()?;
        let (op, body) = proto::split(&frame)?;
        match op {
            Op::Error => Err(proto::read_error(body)),
            Op::Ok => Ok(NetReply::Affected(0)),
            Op::Affected => {
                let (n, token) = proto::read_affected(body)?;
                if token != (0, 0) {
                    self.last_token = token;
                }
                Ok(NetReply::Affected(n))
            }
            Op::ResultHeader => {
                let mut builder = ResultSetBuilder::from_header(body)
                    .map_err(|e| NetError::protocol(e.to_string()))?;
                let mut pages_seen: u32 = 0;
                loop {
                    let frame = self.expect_frame()?;
                    let (op, body) = proto::split(&frame)?;
                    match op {
                        Op::ResultPage => {
                            builder
                                .push_page(body)
                                .map_err(|e| NetError::protocol(e.to_string()))?;
                            pages_seen += 1;
                        }
                        Op::ResultDone => {
                            let mut r = Reader::new(body);
                            let rows = r
                                .u64()
                                .map_err(|_| NetError::protocol("malformed ResultDone"))?;
                            let pages = r
                                .u32()
                                .map_err(|_| NetError::protocol("malformed ResultDone"))?;
                            if pages != pages_seen || rows != builder.row_count() as u64 {
                                return Err(NetError::protocol(format!(
                                    "result stream torn: server sent {rows} rows in {pages} \
                                     pages, received {} rows in {pages_seen} pages",
                                    builder.row_count()
                                )));
                            }
                            return Ok(NetReply::Rows(builder.finish()));
                        }
                        Op::Error => return Err(proto::read_error(body)),
                        other => {
                            return Err(NetError::protocol(format!(
                                "unexpected {other:?} inside a result stream"
                            )))
                        }
                    }
                }
            }
            other => Err(NetError::protocol(format!(
                "unexpected statement reply {other:?}"
            ))),
        }
    }
}
