//! A minimal HTTP/1.1 scrape endpoint: `GET /metrics` serves the live
//! Prometheus exposition, `GET /healthz` a one-look health report.
//!
//! This is deliberately *not* a web server. It speaks just enough
//! HTTP/1.1 for `curl` and a Prometheus scraper — request line parsed,
//! headers skipped, `Connection: close` on every response — over plain
//! `std::net`, with no dependency and no interaction with the binary
//! frame protocol on the main port. Requests are served inline on the
//! accept thread: a scrape is a few kilobytes, and short socket
//! timeouts keep a stalled client from pinning the loop.

use crate::proto::NetResult;
use sciql::SharedEngine;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A bound, not-yet-serving metrics endpoint.
pub struct MetricsEndpoint {
    listener: TcpListener,
    engine: Arc<SharedEngine>,
}

impl MetricsEndpoint {
    /// Bind to `addr` (use port 0 for an ephemeral port). The engine is
    /// only consulted for `/healthz`; `/metrics` reads the process-wide
    /// registry.
    pub fn bind(engine: Arc<SharedEngine>, addr: impl ToSocketAddrs) -> NetResult<MetricsEndpoint> {
        let listener = TcpListener::bind(addr)?;
        Ok(MetricsEndpoint { listener, engine })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> NetResult<SocketAddr> {
        Ok(self.listener.local_addr()?)
    }

    /// Start serving on a background accept thread.
    pub fn serve(self) -> NetResult<MetricsHandle> {
        let addr = self.local_addr()?;
        // Poll so the loop notices shutdown without a wake-up connection.
        self.listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stop = Arc::clone(&shutdown);
        let engine = self.engine;
        let listener = self.listener;
        let accept = std::thread::Builder::new()
            .name("sciql-metrics-http".into())
            .spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _)) => serve_one(stream, &engine),
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(20));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(20)),
                    }
                }
            })
            .expect("spawn metrics http thread");
        Ok(MetricsHandle {
            addr,
            shutdown,
            accept: Some(accept),
        })
    }
}

/// Controls a serving [`MetricsEndpoint`].
pub struct MetricsHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl MetricsHandle {
    /// The serving address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Request shutdown (idempotent, non-blocking).
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// [`MetricsHandle::shutdown`], then block until the accept thread
    /// exits.
    pub fn stop(mut self) {
        self.shutdown();
        if let Some(h) = self.accept.take() {
            h.join().ok();
        }
    }
}

impl Drop for MetricsHandle {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(h) = self.accept.take() {
            h.join().ok();
        }
    }
}

/// Handle one HTTP exchange, inline and best-effort: any socket error
/// just drops the connection.
fn serve_one(mut stream: TcpStream, engine: &Arc<SharedEngine>) {
    stream.set_read_timeout(Some(Duration::from_secs(2))).ok();
    stream.set_write_timeout(Some(Duration::from_secs(2))).ok();
    let Some(request_line) = read_request_line(&mut stream) else {
        return;
    };
    let mut parts = request_line.split_ascii_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m, p),
        _ => {
            respond(&mut stream, "400 Bad Request", TEXT, "bad request\n");
            return;
        }
    };
    if method != "GET" {
        respond(&mut stream, "405 Method Not Allowed", TEXT, "GET only\n");
        return;
    }
    // Ignore any query string — scrapers sometimes append cache-busters.
    let path = path.split('?').next().unwrap_or(path);
    match path {
        "/metrics" => {
            let body = sciql_obs::global().snapshot().to_prometheus_text();
            respond(&mut stream, "200 OK", PROM, &body);
        }
        "/healthz" => {
            let stats = engine.stats();
            let body = format!(
                "ok\npersistent: {}\nsessions_opened: {}\nstatements: {}\n\
                 snapshot_reads: {}\nrows_returned: {}\n",
                engine.is_persistent(),
                stats.sessions_opened,
                stats.statements,
                stats.snapshot_reads,
                stats.rows_returned,
            );
            respond(&mut stream, "200 OK", TEXT, &body);
        }
        _ => respond(&mut stream, "404 Not Found", TEXT, "not found\n"),
    }
}

const TEXT: &str = "text/plain; charset=utf-8";
/// The Prometheus text exposition content type.
const PROM: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Read up to the end of the request head and return its first line.
/// `None` on timeout, hangup, or a head that never terminates.
fn read_request_line(stream: &mut TcpStream) -> Option<String> {
    let mut head = Vec::new();
    let mut buf = [0u8; 512];
    loop {
        let n = stream.read(&mut buf).ok()?;
        if n == 0 {
            return None;
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
        if head.len() > 8 * 1024 {
            return None; // a request head this large is not a scrape
        }
    }
    let text = String::from_utf8_lossy(&head);
    Some(text.lines().next().unwrap_or("").to_owned())
}

fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).ok();
    stream.write_all(body.as_bytes()).ok();
    stream.flush().ok();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn metrics_and_healthz_respond() {
        let engine = SharedEngine::in_memory();
        let mut s = engine.session();
        s.execute("CREATE TABLE t (a INT)").unwrap();
        s.execute("SELECT COUNT(*) FROM t").unwrap();
        let ep = MetricsEndpoint::bind(Arc::clone(&engine), "127.0.0.1:0").unwrap();
        let handle = ep.serve().unwrap();

        let m = get(handle.addr(), "/metrics");
        assert!(m.starts_with("HTTP/1.1 200 OK\r\n"), "{m}");
        assert!(m.contains("text/plain; version=0.0.4"), "{m}");
        assert!(
            m.contains("# TYPE sciql_queries_select_total counter"),
            "{m}"
        );

        let h = get(handle.addr(), "/healthz");
        assert!(h.starts_with("HTTP/1.1 200 OK\r\n"), "{h}");
        assert!(h.contains("ok\npersistent: false"), "{h}");

        assert!(get(handle.addr(), "/nope").starts_with("HTTP/1.1 404"));
        let mut s = TcpStream::connect(handle.addr()).unwrap();
        write!(s, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 405"), "{out}");

        handle.stop();
    }
}
