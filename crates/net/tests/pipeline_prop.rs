//! Property: pipelining is invisible in the reply stream. For any batch
//! of statements — including ones the server refuses mid-pipeline — the
//! raw reply bytes of a client that ships every request frame in one
//! socket write are identical, statement for statement and in order, to
//! those of a client that sends one frame at a time and waits. This is
//! the contract drivers rely on to batch without round trips: replies
//! are positional, an error frame occupies exactly its statement's
//! slot, and coalesced flushing never reorders or merges frames.

use proptest::prelude::*;
use sciql::SharedEngine;
use sciql_net::proto::{self, Op};
use sciql_net::Server;
use std::io::Write as _;
use std::net::TcpStream;

/// Statement pool the batches draw from: mutations, single- and
/// multi-row SELECTs, a parse error and a catalog error (the
/// mid-pipeline refusals).
const POOL: &[&str] = &[
    "INSERT INTO t VALUES (1, 'one')",
    "INSERT INTO t VALUES (2, 'two')",
    "UPDATE t SET s = 'x' WHERE a = 1",
    "SELECT a, s FROM t",
    "SELECT COUNT(*) FROM t",
    "SELECT a + a, s FROM t WHERE a > 1",
    "SELEC nonsense",
    "SELECT ghost FROM nowhere",
];

/// Connect and perform the Hello/HelloOk handshake on a raw socket.
fn handshake(addr: std::net::SocketAddr) -> TcpStream {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_nodelay(true).ok();
    proto::write_frame(&mut s, &proto::hello("pipeline-prop")).unwrap();
    let f = proto::read_frame(&mut s).unwrap().expect("HelloOk");
    let (op, _) = proto::split(&f).unwrap();
    assert_eq!(op, Op::HelloOk);
    s
}

/// Read exactly one statement's reply off the socket, concatenating its
/// frames: a single `Ok`/`Affected`/`Error`, or `ResultHeader` +
/// pages + (`ResultDone` | mid-stream `Error`).
fn read_statement_reply(r: &mut TcpStream) -> Vec<u8> {
    let first = proto::read_frame(r).unwrap().expect("reply frame");
    let (op, _) = proto::split(&first).unwrap();
    let mut out = first;
    if op == Op::ResultHeader {
        loop {
            let f = proto::read_frame(r).unwrap().expect("result frame");
            let (op, _) = proto::split(&f).unwrap();
            out.extend_from_slice(&f);
            if matches!(op, Op::ResultDone | Op::Error) {
                break;
            }
        }
    }
    out
}

/// Run `sqls` against a fresh in-memory server — pipelined (every
/// request frame in one socket write, replies read afterwards) or one
/// frame at a time — returning each statement's raw reply bytes.
fn run(sqls: &[&str], pipelined: bool) -> Vec<Vec<u8>> {
    let handle = Server::bind(SharedEngine::in_memory(), "127.0.0.1:0")
        .unwrap()
        .serve()
        .unwrap();
    let mut s = handshake(handle.addr());
    let mut replies = Vec::with_capacity(sqls.len());
    if pipelined {
        let mut batch = Vec::new();
        for sql in sqls {
            proto::write_frame(&mut batch, &proto::query((0, 0), sql)).unwrap();
        }
        s.write_all(&batch).unwrap();
        for _ in sqls {
            replies.push(read_statement_reply(&mut s));
        }
    } else {
        for sql in sqls {
            proto::write_frame(&mut s, &proto::query((0, 0), sql)).unwrap();
            replies.push(read_statement_reply(&mut s));
        }
    }
    proto::write_frame(&mut s, &proto::bare(Op::Close)).unwrap();
    drop(s);
    handle.stop();
    replies
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn pipelined_replies_byte_identical_and_in_order(
        picks in proptest::collection::vec(0usize..POOL.len(), 1..10)
    ) {
        // Both runs start from identical state (their own fresh engine,
        // the same leading CREATE), so reply bytes must agree exactly.
        let mut sqls = vec!["CREATE TABLE t (a INT, s VARCHAR)"];
        sqls.extend(picks.iter().map(|&i| POOL[i]));
        let piped = run(&sqls, true);
        let solo = run(&sqls, false);
        prop_assert_eq!(piped.len(), solo.len());
        for (i, (p, s)) in piped.iter().zip(&solo).enumerate() {
            prop_assert_eq!(p, s, "statement {} ({:?}) replies diverge", i, sqls[i]);
        }
    }
}
