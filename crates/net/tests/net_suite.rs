//! End-to-end suite for the network layer: handshake and statement
//! round trips, concurrent clients over one shared vault, torn-read
//! detection, graceful shutdown, and the acceptance criterion — network
//! results byte-identical to embedded results, across server restart and
//! crash recovery under ≥ 4 concurrent clients.

use sciql::{Connection, ResultSet, SharedEngine};
use sciql_net::{Client, NetError, NetReply, Server, ServerConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

fn tmp_dir(name: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "sciql-net-{}-{}-{name}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&d).ok();
    d
}

/// The full wire encoding of a result — the "byte-identical" yardstick.
fn wire_bytes(rs: &ResultSet) -> Vec<u8> {
    let mut out = rs.encode_header();
    for page in rs.encode_pages(1024) {
        out.extend_from_slice(&page);
    }
    out
}

#[test]
fn statement_roundtrips() {
    let handle = Server::bind(SharedEngine::in_memory(), "127.0.0.1:0")
        .unwrap()
        .serve()
        .unwrap();
    let mut c = Client::connect(handle.addr()).unwrap();
    assert!(c.session_id() > 0);
    assert!(c.server_name().starts_with("sciql-net/"));
    c.ping().unwrap();
    // DDL + DML round trips with affected counts.
    assert_eq!(
        c.execute(
            "CREATE ARRAY m (x INT DIMENSION[0:1:4], y INT DIMENSION[0:1:4], v INT DEFAULT 0)"
        )
        .unwrap()
        .affected()
        .unwrap(),
        16
    );
    c.execute("UPDATE m SET v = x + y").unwrap();
    // Multi-page SELECT (page size 3 forces paging).
    let rs = c.query("SELECT x, y, v FROM m").unwrap();
    assert_eq!(rs.row_count(), 16);
    assert_eq!(rs.column_count(), 3);
    // A statement error leaves the session usable.
    match c.execute("SELECT nonsense FROM nowhere") {
        Err(NetError::Server { code, message }) => {
            assert!(!message.is_empty());
            assert_eq!(code, sciql::ErrorCode::Catalog, "unknown table");
        }
        other => panic!("expected a server error, got {other:?}"),
    }
    let n = c.query("SELECT COUNT(*) FROM m").unwrap();
    assert_eq!(n.scalar_i64(), Some(16));
    // Prepared texts are session-scoped.
    c.prepare("q", "SELECT COUNT(*) FROM m WHERE v > 3")
        .unwrap();
    let rs = c.execute_prepared("q").unwrap().rows().unwrap();
    assert_eq!(rs.row_count(), 1);
    let mut other = Client::connect(handle.addr()).unwrap();
    assert!(matches!(
        other.execute_prepared("q"),
        Err(NetError::Server { .. })
    ));
    other.close().unwrap();
    c.shutdown_server().unwrap();
    handle.wait();
}

/// Small-page streaming: many pages reassemble exactly.
#[test]
fn stats_frame_reports_last_execution() {
    let handle = Server::bind(SharedEngine::in_memory(), "127.0.0.1:0")
        .unwrap()
        .serve()
        .unwrap();
    let mut c = Client::connect(handle.addr()).unwrap();
    // Before any statement: an all-zero report, not an error.
    let empty = c.last_stats().unwrap();
    assert_eq!(empty.instructions, 0);
    c.execute("CREATE ARRAY m (x INT DIMENSION[0:1:8], y INT DIMENSION[0:1:8], v INT DEFAULT 0)")
        .unwrap();
    c.execute("UPDATE m SET v = x + y").unwrap();
    c.query("SELECT SUM(v) FROM m WHERE x > 2").unwrap();
    let stats = c.last_stats().unwrap();
    assert!(stats.instructions > 0);
    assert!(
        stats.instrs_after_opt < stats.instrs_before_opt,
        "{stats:?}"
    );
    assert!(stats.fused >= 2, "candprop + selectagg fused: {stats:?}");
    assert!(stats.intermediates_avoided >= 2, "{stats:?}");
    assert!(stats.bytes_not_materialized > 0, "{stats:?}");
    // The report is per-session: a fresh client starts at zero again.
    let mut c2 = Client::connect(handle.addr()).unwrap();
    assert_eq!(c2.last_stats().unwrap().instructions, 0);
    c.close().unwrap();
    c2.close().unwrap();
    handle.stop();
}

#[test]
fn paged_results_reassemble() {
    let engine = SharedEngine::in_memory();
    {
        let mut s = engine.session();
        s.execute(
            "CREATE ARRAY big (x INT DIMENSION[0:1:32], y INT DIMENSION[0:1:32], v INT DEFAULT 0)",
        )
        .unwrap();
        s.execute("UPDATE big SET v = x * y").unwrap();
    }
    let cfg = ServerConfig {
        page_rows: 7, // deliberately tiny and non-divisor of 1024
        ..ServerConfig::default()
    };
    let handle = Server::bind_with_config(engine.clone(), "127.0.0.1:0", cfg)
        .unwrap()
        .serve()
        .unwrap();
    let mut c = Client::connect(handle.addr()).unwrap();
    let over_wire = c.query("SELECT x, y, v FROM big").unwrap();
    let (embedded, _) = {
        let mut s = engine.session();
        (s.query("SELECT x, y, v FROM big").unwrap(), ())
    };
    assert_eq!(over_wire.row_count(), 1024);
    assert_eq!(wire_bytes(&over_wire), wire_bytes(&embedded));
    c.shutdown_server().unwrap();
    handle.wait();
}

/// N clients hammering one durable server with mixed SELECT/UPDATE:
/// every read must be a consistent point-in-time image (whole-array
/// constant updates ⇒ a torn read would surface as two different
/// constants in one result).
#[test]
fn concurrent_clients_serializable_no_torn_reads() {
    let dir = tmp_dir("hammer");
    let engine = SharedEngine::open(&dir).unwrap();
    {
        let mut s = engine.session();
        s.execute(
            "CREATE ARRAY grid (x INT DIMENSION[0:1:8], y INT DIMENSION[0:1:8], v INT DEFAULT 0)",
        )
        .unwrap();
        s.execute("CREATE TABLE hits (who INT, k INT)").unwrap();
    }
    let handle = Server::bind(engine, "127.0.0.1:0")
        .unwrap()
        .serve()
        .unwrap();
    let addr = handle.addr();
    let writers = 2usize;
    let readers = 4usize;
    let rounds = 15i64;
    let mut threads = Vec::new();
    for w in 0..writers {
        threads.push(std::thread::spawn(move || {
            let mut c = Client::connect_named(addr, &format!("writer-{w}")).unwrap();
            for k in 0..rounds {
                // Whole-array constant write: the torn-read canary.
                c.execute(&format!("UPDATE grid SET v = {k}")).unwrap();
                c.execute(&format!("INSERT INTO hits VALUES ({w}, {k})"))
                    .unwrap()
                    .affected()
                    .unwrap();
            }
            c.close().unwrap();
        }));
    }
    for r in 0..readers {
        threads.push(std::thread::spawn(move || {
            let mut c = Client::connect_named(addr, &format!("reader-{r}")).unwrap();
            let mut last_count = 0i64;
            for _ in 0..rounds {
                let rs = c.query("SELECT x, y, v FROM grid").unwrap();
                let vals: Vec<_> = (0..rs.row_count()).map(|i| rs.get(i, 2)).collect();
                assert!(
                    vals.windows(2).all(|w| w[0] == w[1]),
                    "torn read across a whole-array update: {vals:?}"
                );
                // Per-statement serializability: committed row counts
                // never move backwards between two of our statements.
                let n = c
                    .query("SELECT COUNT(*) FROM hits")
                    .unwrap()
                    .scalar_i64()
                    .unwrap();
                assert!(n >= last_count, "count went backwards: {n} < {last_count}");
                last_count = n;
            }
            c.close().unwrap();
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    // All acknowledged writes are visible once the dust settles.
    let mut c = Client::connect(addr).unwrap();
    let n = c
        .query("SELECT COUNT(*) FROM hits")
        .unwrap()
        .scalar_i64()
        .unwrap();
    assert_eq!(n, writers as i64 * rounds);
    c.shutdown_server().unwrap();
    handle.wait();
    std::fs::remove_dir_all(&dir).ok();
}

/// The acceptance criterion: a query through `sciql_net::Client` against
/// a served vault returns byte-identical results to the same query on an
/// embedded `Connection` — including after a server restart and after
/// crash recovery (no checkpoint, WAL-tail replay), with ≥ 4 concurrent
/// clients having produced the state.
#[test]
fn network_results_byte_identical_to_embedded_across_recovery() {
    let dir = tmp_dir("accept");
    const PROBE: &str =
        "SELECT x, y, v, COUNT(*) FROM cells WHERE v >= 0 GROUP BY x, y, v ORDER BY x, y, v";

    // Phase 1: 4 concurrent clients build the state over the network.
    let engine = SharedEngine::open(&dir).unwrap();
    {
        let mut s = engine.session();
        s.execute(
            "CREATE ARRAY cells (x INT DIMENSION[0:1:6], y INT DIMENSION[0:1:6], v INT DEFAULT 0)",
        )
        .unwrap();
    }
    let handle = Server::bind(engine, "127.0.0.1:0")
        .unwrap()
        .serve()
        .unwrap();
    let addr = handle.addr();
    let mut threads = Vec::new();
    for t in 0..4i64 {
        threads.push(std::thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            // Disjoint row bands per client → a deterministic final state.
            c.execute(&format!("UPDATE cells SET v = {} WHERE x = {t}", t * 10))
                .unwrap();
            c.query("SELECT COUNT(*) FROM cells").unwrap();
            c.close().unwrap();
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    let mut c = Client::connect(addr).unwrap();
    let served_before = c.query(PROBE).unwrap();
    c.shutdown_server().unwrap();
    let engine = handle.wait();
    drop(engine); // releases the vault lock, nothing checkpointed: WAL replay ahead

    // Phase 2: embedded reopen (crash recovery) must agree byte for byte.
    let mut embedded = Connection::open(&dir).unwrap();
    let embedded_rs = embedded.query(PROBE).unwrap();
    assert_eq!(
        wire_bytes(&served_before),
        wire_bytes(&embedded_rs),
        "served vs embedded-after-recovery"
    );
    drop(embedded);

    // Phase 3: restart the server on the recovered vault; 4 concurrent
    // clients must all see the identical bytes again.
    let handle = Server::bind(SharedEngine::open(&dir).unwrap(), "127.0.0.1:0")
        .unwrap()
        .serve()
        .unwrap();
    let addr = handle.addr();
    let expect = wire_bytes(&embedded_rs);
    let mut threads = Vec::new();
    for _ in 0..4 {
        let expect = expect.clone();
        threads.push(std::thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            let rs = c.query(PROBE).unwrap();
            assert_eq!(wire_bytes(&rs), expect, "served-after-restart");
            c.close().unwrap();
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    Client::connect(addr).unwrap().shutdown_server().unwrap();
    handle.wait();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn graceful_shutdown_notifies_idle_sessions() {
    let handle = Server::bind(SharedEngine::in_memory(), "127.0.0.1:0")
        .unwrap()
        .serve()
        .unwrap();
    let mut idle = Client::connect(handle.addr()).unwrap();
    idle.ping().unwrap();
    assert_eq!(handle.active_sessions(), 1);
    handle.shutdown();
    let engine = handle.wait();
    assert_eq!(engine.stats().sessions_opened, 1);
    // The idle session was told: its next statement fails cleanly
    // (either the farewell Error frame or a dead socket).
    assert!(idle.execute("SELECT 1 + 1").is_err());
}

#[test]
fn idle_timeout_reaps_silent_sessions() {
    let cfg = ServerConfig {
        idle_timeout: Some(Duration::from_millis(150)),
        ..ServerConfig::default()
    };
    let handle = Server::bind_with_config(SharedEngine::in_memory(), "127.0.0.1:0", cfg)
        .unwrap()
        .serve()
        .unwrap();
    let mut c = Client::connect(handle.addr()).unwrap();
    c.ping().unwrap();
    std::thread::sleep(Duration::from_millis(600));
    assert_eq!(handle.active_sessions(), 0, "idle session reaped");
    assert!(c.ping().is_err(), "socket was closed by the server");
    handle.stop();
}

#[test]
fn handshake_is_mandatory_and_versioned() {
    use sciql_net::proto::{self, Op};
    use std::io::Write as _;
    let handle = Server::bind(SharedEngine::in_memory(), "127.0.0.1:0")
        .unwrap()
        .serve()
        .unwrap();
    // Skipping Hello gets an Error and a hangup.
    let mut raw = std::net::TcpStream::connect(handle.addr()).unwrap();
    proto::write_frame(&mut raw, &proto::query((0, 0), "SELECT 1")).unwrap();
    let reply = proto::read_frame(&mut raw).unwrap().unwrap();
    let (op, _) = proto::split(&reply).unwrap();
    assert_eq!(op, Op::Error);
    assert!(proto::read_frame(&mut raw).unwrap().is_none(), "hung up");
    // Garbage framing is refused without taking the server down.
    let mut raw = std::net::TcpStream::connect(handle.addr()).unwrap();
    raw.write_all(&u32::MAX.to_le_bytes()).unwrap();
    let mut ok = Client::connect(handle.addr()).unwrap();
    ok.ping().unwrap();
    ok.shutdown_server().unwrap();
    handle.wait();
}

/// A framing failure mid-exchange poisons the client: once the reply
/// stream may be out of step, further statements must refuse to run
/// rather than attribute a stale reply to the wrong request. Statement
/// errors, by contrast, never poison.
#[test]
fn client_poisons_on_protocol_failure_but_not_statement_errors() {
    use sciql_net::proto;
    use std::net::TcpListener;
    // A fake server: valid handshake, then an unknown opcode as the
    // "reply" to the first query.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let fake = std::thread::spawn(move || {
        let (mut s, _) = listener.accept().unwrap();
        let _hello = proto::read_frame(&mut s).unwrap().unwrap();
        proto::write_frame(&mut s, &proto::hello_ok("fake", 1)).unwrap();
        let _query = proto::read_frame(&mut s).unwrap().unwrap();
        proto::write_frame(&mut s, &[0x7f]).unwrap(); // unknown opcode
                                                      // Keep the socket open so the client's failure is the framing,
                                                      // not a hangup.
        std::thread::sleep(Duration::from_millis(300));
    });
    let mut c = Client::connect(addr).unwrap();
    assert!(!c.is_broken());
    assert!(matches!(
        c.execute("SELECT 1 + 1"),
        Err(NetError::Protocol(_))
    ));
    assert!(c.is_broken(), "framing failure must poison");
    assert!(
        matches!(c.execute("SELECT 1 + 1"), Err(NetError::Protocol(_))),
        "a broken client refuses further statements"
    );
    fake.join().unwrap();

    // Against a real server: a statement error does NOT poison.
    let handle = Server::bind(SharedEngine::in_memory(), "127.0.0.1:0")
        .unwrap()
        .serve()
        .unwrap();
    let mut c = Client::connect(handle.addr()).unwrap();
    assert!(matches!(
        c.execute("SELECT broken FROM nowhere"),
        Err(NetError::Server { .. })
    ));
    assert!(!c.is_broken());
    c.ping().unwrap();
    c.shutdown_server().unwrap();
    handle.wait();
}

/// `NetReply` accessors behave.
#[test]
fn reply_accessors() {
    let handle = Server::bind(SharedEngine::in_memory(), "127.0.0.1:0")
        .unwrap()
        .serve()
        .unwrap();
    let mut c = Client::connect(handle.addr()).unwrap();
    let r = c.execute("CREATE TABLE t (a INT)").unwrap();
    assert!(matches!(r, NetReply::Affected(0)));
    assert!(c.execute("SELECT 1 + 1").unwrap().affected().is_err());
    c.shutdown_server().unwrap();
    handle.wait();
}

/// Helper: scalar i64 out of a 1×1 result.
trait ScalarI64 {
    fn scalar_i64(&self) -> Option<i64>;
}

impl ScalarI64 for ResultSet {
    fn scalar_i64(&self) -> Option<i64> {
        if self.row_count() == 1 && self.column_count() == 1 {
            self.get(0, 0).as_i64()
        } else {
            None
        }
    }
}

/// Protocol v3: prepared statements with bound parameters over the wire.
/// Bind values round-trip bit-exactly, re-execution hits the server-side
/// plan cache, and server errors carry the same stable code the embedded
/// engine produces.
#[test]
fn bound_prepared_statements_over_the_wire() {
    use gdk::Value;
    let handle = Server::bind(SharedEngine::in_memory(), "127.0.0.1:0")
        .unwrap()
        .serve()
        .unwrap();
    let mut c = Client::connect(handle.addr()).unwrap();
    c.execute("CREATE ARRAY m (x INT DIMENSION[0:1:4], y INT DIMENSION[0:1:4], v INT DEFAULT 0)")
        .unwrap();
    c.execute("UPDATE m SET v = x + y").unwrap();
    // Prepare reports the slot count.
    let n = c
        .prepare("q", "SELECT COUNT(*) FROM m WHERE v < :t")
        .unwrap();
    assert_eq!(n, 1);
    // Bind + exec, twice with different values, matching inlined queries.
    for t in [1i64, 100] {
        let bound = c
            .execute_bound("q", &[Value::Lng(t)])
            .unwrap()
            .rows()
            .unwrap();
        let inlined = c
            .query(&format!("SELECT COUNT(*) FROM m WHERE v < {t}"))
            .unwrap();
        assert_eq!(wire_bytes(&bound), wire_bytes(&inlined), "t={t}");
    }
    // The second-and-later bound executions reused the cached plan.
    c.execute_bound("q", &[Value::Lng(5)]).unwrap();
    let stats = c.last_stats().unwrap();
    assert_eq!(stats.plan_cache_hits, 1, "server-side plan cache hit");
    // Unbound parameter: a typed Param error, session survives.
    c.prepare("q2", "SELECT COUNT(*) FROM m WHERE v < ?")
        .unwrap();
    match c.exec_bound("q2") {
        Err(NetError::Server { code, .. }) => assert_eq!(code, sciql::ErrorCode::Param),
        other => panic!("expected Param error, got {other:?}"),
    }
    // Error-code parity: a remote parse error carries ErrorCode::Parse,
    // exactly what an embedded session's EngineError::code() returns.
    match c.prepare("bad", "SELEC nonsense") {
        Err(NetError::Server { code, .. }) => assert_eq!(code, sciql::ErrorCode::Parse),
        other => panic!("expected Parse error, got {other:?}"),
    }
    let embedded_code = sciql::Connection::new()
        .execute("SELEC nonsense")
        .unwrap_err()
        .code();
    assert_eq!(embedded_code, sciql::ErrorCode::Parse);
    // Prepared DML with params mutates shared state.
    c.execute("CREATE TABLE t (a INT, s VARCHAR)").unwrap();
    c.prepare("ins", "INSERT INTO t VALUES (?, ?)").unwrap();
    let r = c
        .execute_bound("ins", &[Value::Int(7), Value::Str("it's".into())])
        .unwrap();
    assert!(matches!(r, NetReply::Affected(1)));
    let rs = c.query("SELECT s FROM t WHERE a = 7").unwrap();
    assert_eq!(rs.get(0, 0), Value::Str("it's".into()));
    c.shutdown_server().unwrap();
    handle.wait();
}

/// Bind hygiene: staging values for a name that was never prepared is
/// refused (bounding the staged-values map and failing typos early),
/// and Deallocate frees server-side statements.
#[test]
fn bind_requires_prepared_statement_and_deallocate_frees_it() {
    use gdk::Value;
    let handle = Server::bind(SharedEngine::in_memory(), "127.0.0.1:0")
        .unwrap()
        .serve()
        .unwrap();
    let mut c = Client::connect(handle.addr()).unwrap();
    c.execute("CREATE TABLE t (a INT)").unwrap();
    // Bind to a never-prepared name: refused with a Statement error.
    match c.bind("ghost", &[Value::Int(1)]) {
        Err(NetError::Server { code, .. }) => assert_eq!(code, sciql::ErrorCode::Statement),
        other => panic!("expected Statement error, got {other:?}"),
    }
    // The pipelined execute_bound reports the bind refusal as the root
    // cause and leaves the session usable.
    match c.execute_bound("ghost", &[Value::Int(1)]) {
        Err(NetError::Server { code, .. }) => assert_eq!(code, sciql::ErrorCode::Statement),
        other => panic!("expected Statement error, got {other:?}"),
    }
    assert!(!c.is_broken());
    // Prepared → bound → executed → deallocated → gone.
    c.prepare("q", "SELECT COUNT(*) FROM t WHERE a = ?")
        .unwrap();
    c.execute_bound("q", &[Value::Int(1)]).unwrap();
    assert!(c.deallocate("q").unwrap());
    assert!(!c.deallocate("q").unwrap(), "second deallocate is a no-op");
    match c.bind("q", &[Value::Int(1)]) {
        Err(NetError::Server { code, .. }) => assert_eq!(code, sciql::ErrorCode::Statement),
        other => panic!("deallocated name must refuse binds, got {other:?}"),
    }
    c.shutdown_server().unwrap();
    handle.wait();
}

/// Admission control: connections beyond `max_sessions` are refused
/// with a typed, retryable `ServerBusy` — never a thread-spawn panic —
/// and a slot freed by a disconnect is admitted again.
#[test]
fn max_sessions_refuses_with_server_busy() {
    let cfg = ServerConfig {
        max_sessions: 2,
        ..ServerConfig::default()
    };
    let handle = Server::bind_with_config(SharedEngine::in_memory(), "127.0.0.1:0", cfg)
        .unwrap()
        .serve()
        .unwrap();
    let addr = handle.addr();
    let mut a = Client::connect(addr).unwrap();
    let mut b = Client::connect(addr).unwrap();
    a.ping().unwrap();
    b.ping().unwrap();
    // Third connection: refused during the handshake with ServerBusy.
    match Client::connect(addr) {
        Err(NetError::Server { code, message }) => {
            assert_eq!(code, sciql::ErrorCode::ServerBusy);
            assert!(message.contains("session limit"), "{message}");
        }
        other => panic!("expected a ServerBusy refusal, got {other:?}"),
    }
    // The admitted sessions were untouched by the refusal.
    a.ping().unwrap();
    b.ping().unwrap();
    // Freeing a slot readmits: close one, and (after the server reaps
    // the handler) a new client gets in.
    b.close().unwrap();
    let mut c = None;
    for _ in 0..100 {
        match Client::connect(addr) {
            Ok(cl) => {
                c = Some(cl);
                break;
            }
            Err(NetError::Server { code, .. }) => {
                assert_eq!(code, sciql::ErrorCode::ServerBusy);
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(other) => panic!("unexpected connect failure: {other:?}"),
        }
    }
    let mut c = c.expect("a freed slot must be admitted again");
    c.ping().unwrap();
    c.shutdown_server().unwrap();
    handle.wait();
}

/// The result quota cuts off an oversized result set with a typed
/// mid-stream `QuotaExceeded` error — failing only the statement, not
/// the session, and leaving the reply stream aligned.
#[test]
fn result_quota_fails_statement_not_session() {
    let cfg = ServerConfig {
        max_result_bytes_per_session: 2048,
        ..ServerConfig::default()
    };
    let handle = Server::bind_with_config(SharedEngine::in_memory(), "127.0.0.1:0", cfg)
        .unwrap()
        .serve()
        .unwrap();
    let mut c = Client::connect(handle.addr()).unwrap();
    c.execute(
        "CREATE ARRAY big (x INT DIMENSION[0:1:32], y INT DIMENSION[0:1:32], v INT DEFAULT 0)",
    )
    .unwrap();
    c.execute("UPDATE big SET v = x * y").unwrap();
    // 1024 rows × 3 INT columns blows the 2 KiB quota.
    match c.query("SELECT x, y, v FROM big") {
        Err(NetError::Server { code, message }) => {
            assert_eq!(code, sciql::ErrorCode::QuotaExceeded);
            assert!(
                message.contains("max_result_bytes_per_session"),
                "{message}"
            );
        }
        other => panic!("expected QuotaExceeded, got {other:?}"),
    }
    // The session survives and small results still flow.
    assert!(!c.is_broken());
    let n = c.query("SELECT COUNT(*) FROM big").unwrap();
    assert_eq!(n.scalar_i64(), Some(1024));
    c.shutdown_server().unwrap();
    handle.wait();
}

/// Group commit keeps the durability contract: every acknowledged write
/// from concurrent clients survives a server stop + embedded crash
/// recovery, while the writers shared fsyncs (group_commits advanced).
#[test]
fn group_commit_acked_writes_survive_recovery() {
    let dir = tmp_dir("group-commit");
    let engine = SharedEngine::open(&dir).unwrap();
    {
        let mut s = engine.session();
        s.execute("CREATE TABLE acked (who INT, k INT)").unwrap();
    }
    let group_commits_before = sciql_obs::global()
        .snapshot()
        .counter("group_commits")
        .unwrap_or(0);
    let handle = Server::bind(engine, "127.0.0.1:0")
        .unwrap()
        .serve()
        .unwrap();
    let addr = handle.addr();
    let writers = 8i64;
    let rounds = 10i64;
    let mut threads = Vec::new();
    for w in 0..writers {
        threads.push(std::thread::spawn(move || {
            let mut c = Client::connect_named(addr, &format!("gc-writer-{w}")).unwrap();
            for k in 0..rounds {
                let n = c
                    .execute(&format!("INSERT INTO acked VALUES ({w}, {k})"))
                    .unwrap()
                    .affected()
                    .unwrap();
                assert_eq!(n, 1);
            }
            c.close().unwrap();
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    let group_commits_after = sciql_obs::global()
        .snapshot()
        .counter("group_commits")
        .unwrap_or(0);
    assert!(
        group_commits_after > group_commits_before,
        "the group-commit thread must have fsynced at least once"
    );
    handle.shutdown();
    drop(handle.wait()); // release the vault; nothing checkpointed since the writes
                         // Embedded reopen = WAL-tail replay: every acknowledged row is there.
    let mut embedded = Connection::open(&dir).unwrap();
    let rs = embedded.query("SELECT COUNT(*) FROM acked").unwrap();
    assert_eq!(rs.scalar_i64(), Some(writers * rounds));
    drop(embedded);
    std::fs::remove_dir_all(&dir).ok();
}

/// Pipelined batches: N statements in one socket write, N replies in
/// order, and a refused statement mid-batch occupies its own slot
/// without desynchronizing the ones behind it.
#[test]
fn pipelined_batch_replies_stay_in_order() {
    let handle = Server::bind(SharedEngine::in_memory(), "127.0.0.1:0")
        .unwrap()
        .serve()
        .unwrap();
    let mut c = Client::connect(handle.addr()).unwrap();
    let replies = c
        .execute_pipelined(&[
            "CREATE TABLE t (a INT)",
            "INSERT INTO t VALUES (1)",
            "INSERT INTO t VALUES (2)",
            "SELEC nonsense",
            "SELECT COUNT(*) FROM t",
        ])
        .unwrap();
    assert_eq!(replies.len(), 5);
    assert!(matches!(replies[0], Ok(NetReply::Affected(0))));
    assert!(matches!(replies[1], Ok(NetReply::Affected(1))));
    assert!(matches!(replies[2], Ok(NetReply::Affected(1))));
    match &replies[3] {
        Err(NetError::Server { code, .. }) => assert_eq!(*code, sciql::ErrorCode::Parse),
        other => panic!("slot 3 must hold the parse error, got {other:?}"),
    }
    match &replies[4] {
        Ok(NetReply::Rows(rs)) => assert_eq!(rs.scalar_i64(), Some(2)),
        other => panic!("slot 4 must hold the count, got {other:?}"),
    }
    // The mid-batch error never poisoned the connection.
    assert!(!c.is_broken());
    c.ping().unwrap();
    c.shutdown_server().unwrap();
    handle.wait();
}
