//! Property tests for the tiled column codec: a column sliced into tile
//! frames, encoded with the checksummed BAT codec and decoded back, must
//! reassemble bit-for-bit — including in-band nil sentinels and
//! string-heap columns — and its zone map must be insensitive to the
//! round trip. A durable twin check pushes the same columns through a
//! real vault checkpoint + reopen.

use gdk::zonemap::ZoneMap;
use gdk::{Bat, Value};
use proptest::prelude::*;
use sciql::Connection;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn fresh_dir() -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "sciql-tilecodec-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&d).ok();
    d
}

/// A random typed column with nils. Strings draw from a small pool (so
/// tiles repeat heap entries) plus per-row uniques (so heaps differ
/// across tiles).
fn column() -> impl Strategy<Value = Bat> {
    prop_oneof![
        proptest::collection::vec(proptest::option::weighted(0.8, -1000i32..1000), 0..200)
            .prop_map(Bat::from_opt_ints),
        proptest::collection::vec(proptest::option::weighted(0.8, -1000i64..1000), 0..200)
            .prop_map(|v| {
                let vals: Vec<Value> = v
                    .into_iter()
                    .map(|o| o.map_or(Value::Null, Value::Lng))
                    .collect();
                Bat::from_values(gdk::ScalarType::Lng, &vals).unwrap()
            }),
        proptest::collection::vec(proptest::option::weighted(0.8, -100i32..100), 0..200).prop_map(
            |v| {
                Bat::from_opt_dbls(
                    v.into_iter()
                        .map(|o| o.map(|i| f64::from(i) / 8.0))
                        .collect(),
                )
            }
        ),
        proptest::collection::vec(proptest::option::weighted(0.75, 0usize..24), 0..200).prop_map(
            |v| {
                const POOL: &[&str] = &["", "alpha", "beta", "γ-ray", "a,b\"c", "NULL"];
                let strs: Vec<Option<String>> = v
                    .iter()
                    .enumerate()
                    .map(|(i, o)| {
                        o.map(|k| {
                            if k < POOL.len() {
                                POOL[k].to_owned()
                            } else {
                                format!("row-{i}-{k}")
                            }
                        })
                    })
                    .collect();
                Bat::from_strs(strs)
            }
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// slice → encode → decode → concat is the identity on the column,
    /// and the zone map built from the reassembly equals the original's.
    #[test]
    fn tile_frames_round_trip(b in column(), tile_rows in 1usize..48) {
        let len = b.len();
        let mut rebuilt = Bat::new(b.tail_type());
        let mut at = 0;
        while at < len {
            let end = (at + tile_rows).min(len);
            let tile = gdk::project::slice(&b, at, end).unwrap();
            let bytes = gdk::codec::encode_bat(&tile);
            let back = gdk::codec::decode_bat(&bytes).unwrap();
            prop_assert_eq!(back.len(), end - at, "tile length survives");
            rebuilt.append_bat(&back).unwrap();
            at = end;
        }
        prop_assert_eq!(rebuilt.len(), len);
        for i in 0..len {
            prop_assert_eq!(rebuilt.get(i), b.get(i), "row {} survives", i);
        }
        let want = ZoneMap::build(&b, tile_rows.max(1));
        let got = ZoneMap::build(&rebuilt, tile_rows.max(1));
        prop_assert_eq!(got, want, "zone map is round-trip invariant");
    }

    /// A corrupted tile frame never decodes successfully (the CRC or
    /// structural checks must catch a single flipped byte).
    #[test]
    fn corrupted_tile_frames_are_rejected(b in column(), flip in 0usize..1024) {
        prop_assume!(!b.is_empty());
        let mut bytes = gdk::codec::encode_bat(&b);
        let pos = flip % bytes.len();
        bytes[pos] ^= 0x41;
        match gdk::codec::decode_bat(&bytes) {
            Err(_) => {}
            Ok(back) => {
                // A flip the codec tolerates must at least not silently
                // change the data (e.g. a flip in trailing padding).
                let same = back.len() == b.len()
                    && (0..b.len()).all(|i| back.get(i) == b.get(i));
                prop_assert!(same, "corruption at byte {} silently changed data", pos);
            }
        }
    }

    /// The same columns through a real vault: checkpoint tiles them onto
    /// disk with zone maps, reopen must reproduce every row — the
    /// durability twin of `tile_frames_round_trip` (exercises the
    /// string-heap path end to end).
    #[test]
    fn vault_checkpoint_reopen_preserves_columns(
        ints in proptest::collection::vec(proptest::option::weighted(0.8, -1000i32..1000), 1..60),
        strs in proptest::collection::vec(proptest::option::weighted(0.75, 0usize..6), 1..60),
    ) {
        let dir = fresh_dir();
        // ASCII pool: the INSERT path goes through the SQL lexer, which
        // does not preserve non-ASCII literals (the codec itself does —
        // see `tile_frames_round_trip`).
        const POOL: &[&str] = &["", "alpha", "beta", "g-ray", "it's", "NULL"];
        let rows: Vec<(Option<i32>, Option<&str>)> = ints
            .iter()
            .zip(strs.iter().cycle())
            .map(|(i, s)| (*i, s.map(|k| POOL[k % POOL.len()])))
            .collect();
        {
            let mut c = Connection::open(&dir).unwrap();
            c.execute("CREATE TABLE t (a INT, s TEXT)").unwrap();
            for (a, s) in &rows {
                let a = a.map_or("NULL".to_owned(), |v| v.to_string());
                let s = s.map_or("NULL".to_owned(), |v| format!("'{}'", v.replace('\'', "''")));
                c.execute(&format!("INSERT INTO t VALUES ({a}, {s})")).unwrap();
            }
            c.checkpoint().unwrap();
        }
        let mut c = Connection::open(&dir).unwrap();
        let rs = c.query("SELECT a, s FROM t").unwrap();
        prop_assert_eq!(rs.row_count(), rows.len());
        for (i, (a, s)) in rows.iter().enumerate() {
            prop_assert_eq!(&rs.bats[0].get(i), &a.map_or(Value::Null, Value::Int), "row {} int", i);
            let want = s.map_or(Value::Null, |v| Value::Str(v.to_owned()));
            prop_assert_eq!(&rs.bats[1].get(i), &want, "row {} str", i);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
