//! Replication acceptance suite: WAL-shipping primary → replica with
//! monotonic reads.
//!
//! The headline differential test pins the **byte-identical twin**
//! contract: after concurrent writers hammer a served primary and the
//! replica catches up, the two vault directories hold the same files
//! with the same bytes (LOCK excluded), across opt levels × thread
//! counts. A second differential interrupts the replica mid-stream,
//! restarts it over the same directory, and requires it to converge to
//! the same bytes as an uninterrupted twin. Bootstrap (primary
//! checkpointed past the replica's generation → chunked snapshot
//! transfer), monotonic-read tokens and the `ReplicaLagging` refusal
//! round out the contract.

use sciql_repro::driver::{Sciql, SciqlError};
use sciql_repro::gdk::Value;
use sciql_repro::net::Server;
use sciql_repro::repl::Replica;
use sciql_repro::sciql::{ErrorCode, SessionConfig, SharedEngine};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn fresh_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("sciql-repl-suite-{}-{}", tag, std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

/// Every file under `dir` (relative path → bytes), excluding the
/// process-scoped `LOCK` and any bootstrap staging leftovers.
fn dir_bytes(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    fn walk(root: &Path, dir: &Path, out: &mut BTreeMap<String, Vec<u8>>) {
        for entry in std::fs::read_dir(dir).unwrap() {
            let entry = entry.unwrap();
            let name = entry.file_name();
            if name == "LOCK" || name == ".repl-incoming" {
                continue;
            }
            let p = entry.path();
            if p.is_dir() {
                walk(root, &p, out);
            } else {
                let rel = p.strip_prefix(root).unwrap().to_string_lossy().into_owned();
                out.insert(rel, std::fs::read(&p).unwrap());
            }
        }
    }
    let mut out = BTreeMap::new();
    walk(dir, dir, &mut out);
    out
}

/// Assert two vault directories are byte-identical twins, with a
/// file-level diff in the failure message instead of a byte dump.
fn assert_twin_vaults(a: &Path, b: &Path, context: &str) {
    let (fa, fb) = (dir_bytes(a), dir_bytes(b));
    let names_a: Vec<&String> = fa.keys().collect();
    let names_b: Vec<&String> = fb.keys().collect();
    assert_eq!(names_a, names_b, "{context}: file sets differ");
    for (name, bytes) in &fa {
        let other = &fb[name];
        assert!(
            bytes == other,
            "{context}: {name} differs ({} vs {} bytes)",
            bytes.len(),
            other.len()
        );
    }
}

/// Poll until the replica's applied position reaches the primary's
/// durable one (or fail loudly after a generous deadline).
fn wait_caught_up(primary: &Arc<SharedEngine>, replica: &Replica, context: &str) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let durable = primary.durable_position();
        if replica.applied() == durable {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "{context}: replica stuck at {:?}, primary durable {:?}",
            replica.applied(),
            durable
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Full result encoding of a SELECT on an engine — the byte-level
/// yardstick for read equivalence.
fn select_bytes(engine: &Arc<SharedEngine>, sql: &str) -> Vec<u8> {
    let rs = engine.session().query(sql).unwrap();
    let mut bytes = rs.encode_header();
    for page in rs.encode_pages(64) {
        bytes.extend_from_slice(&page);
    }
    bytes
}

/// The headline differential: N concurrent writers over tcp against a
/// durable primary, a replica tailing the WAL live. Once caught up, the
/// replica answers reads byte-identically — and once both sides are
/// shut down, the two data directories are byte-identical twins. Runs
/// over opt levels × thread counts like the other acceptance suites.
#[test]
fn replica_vault_byte_identical_under_concurrent_writes() {
    for opt_level in [0u8, 2] {
        for threads in [1usize, 8] {
            let tag = format!("diff-o{opt_level}-t{threads}");
            let primary_dir = fresh_dir(&format!("{tag}-primary"));
            let replica_dir = fresh_dir(&format!("{tag}-replica"));
            let cfg = SessionConfig {
                threads,
                opt_level,
                ..SessionConfig::default()
            };
            let engine = SharedEngine::open_with_config(&primary_dir, cfg).unwrap();
            let handle = Server::bind(Arc::clone(&engine), "127.0.0.1:0")
                .unwrap()
                .serve()
                .unwrap();
            let url = format!("tcp://{}", handle.addr());
            let mut admin = Sciql::connect(&url).unwrap();
            admin
                .execute("CREATE TABLE log (writer INT, seq INT, note VARCHAR)")
                .unwrap();
            let replica = Replica::connect(&replica_dir, &handle.addr().to_string()).unwrap();

            // 4 writers × 24 acked inserts each, racing the shipper.
            std::thread::scope(|scope| {
                for w in 0..4 {
                    let url = url.clone();
                    scope.spawn(move || {
                        let mut conn = Sciql::connect(&url).unwrap();
                        for seq in 0..24 {
                            conn.execute(&format!(
                                "INSERT INTO log VALUES ({w}, {seq}, 'w{w}s{seq}')"
                            ))
                            .unwrap();
                        }
                        conn.close().unwrap();
                    });
                }
            });
            wait_caught_up(&engine, &replica, &tag);

            // Read equivalence while both are live.
            for sql in [
                "SELECT COUNT(*) FROM log",
                "SELECT writer, seq, note FROM log ORDER BY writer, seq",
                "SELECT writer, SUM(seq) FROM log GROUP BY writer ORDER BY writer",
            ] {
                assert_eq!(
                    select_bytes(&engine, sql),
                    select_bytes(replica.engine(), sql),
                    "{tag}: {sql}"
                );
            }
            // Gap-free: every acked (writer, seq) pair is present once.
            let rs = replica
                .engine()
                .session()
                .query("SELECT COUNT(*) FROM log")
                .unwrap();
            assert_eq!(rs.row(0), vec![Value::Lng(4 * 24)], "{tag}");

            replica.stop();
            admin.shutdown_server().unwrap();
            drop(admin);
            let engine = {
                drop(engine);
                handle.wait()
            };
            drop(engine);
            assert_twin_vaults(&primary_dir, &replica_dir, &tag);
            std::fs::remove_dir_all(&primary_dir).ok();
            std::fs::remove_dir_all(&replica_dir).ok();
        }
    }
}

/// Crash-resume: a replica interrupted mid-stream restarts over the
/// same directory, resumes from whatever its disk durably applied, and
/// converges to the same bytes as a twin that was never interrupted.
#[test]
fn interrupted_replica_matches_uninterrupted_twin() {
    let primary_dir = fresh_dir("crash-primary");
    let twin_dir = fresh_dir("crash-twin");
    let victim_dir = fresh_dir("crash-victim");
    let engine = SharedEngine::open(&primary_dir).unwrap();
    let handle = Server::bind(Arc::clone(&engine), "127.0.0.1:0")
        .unwrap()
        .serve()
        .unwrap();
    let addr = handle.addr().to_string();
    let mut conn = Sciql::connect(&format!("tcp://{addr}")).unwrap();
    conn.execute("CREATE TABLE t (k INT, v VARCHAR)").unwrap();

    let twin = Replica::connect(&twin_dir, &addr).unwrap();
    let victim = Replica::connect(&victim_dir, &addr).unwrap();
    for k in 0..40 {
        conn.execute(&format!("INSERT INTO t VALUES ({k}, 'pre-{k}')"))
            .unwrap();
    }
    wait_caught_up(&engine, &victim, "victim pre-interrupt");
    // Interrupt the victim mid-deployment; keep writing while it's down.
    victim.stop();
    for k in 40..80 {
        conn.execute(&format!("INSERT INTO t VALUES ({k}, 'mid-{k}')"))
            .unwrap();
    }
    // Restart over the same directory: it recovers its own WAL, hellos
    // with the recovered position, and catches up record-by-record.
    let victim = Replica::connect(&victim_dir, &addr).unwrap();
    for k in 80..100 {
        conn.execute(&format!("INSERT INTO t VALUES ({k}, 'post-{k}')"))
            .unwrap();
    }
    wait_caught_up(&engine, &victim, "victim post-restart");
    wait_caught_up(&engine, &twin, "twin");

    let rs = victim
        .engine()
        .session()
        .query("SELECT COUNT(*) FROM t")
        .unwrap();
    assert_eq!(rs.row(0), vec![Value::Lng(100)]);

    victim.stop();
    twin.stop();
    conn.shutdown_server().unwrap();
    drop(conn);
    drop(engine);
    drop(handle.wait());
    assert_twin_vaults(&victim_dir, &twin_dir, "victim vs twin");
    assert_twin_vaults(&primary_dir, &victim_dir, "primary vs victim");
    for d in [&primary_dir, &twin_dir, &victim_dir] {
        std::fs::remove_dir_all(d).ok();
    }
}

/// Bootstrap: a replica that disconnects, misses a primary checkpoint
/// (which rotates the WAL generation and garbage-collects the one the
/// replica was tailing), and reconnects is re-seeded with a chunked
/// snapshot transfer — and ends byte-identical anyway.
#[test]
fn replica_bootstraps_across_primary_checkpoint() {
    let primary_dir = fresh_dir("boot-primary");
    let replica_dir = fresh_dir("boot-replica");
    let engine = SharedEngine::open(&primary_dir).unwrap();
    let handle = Server::bind(Arc::clone(&engine), "127.0.0.1:0")
        .unwrap()
        .serve()
        .unwrap();
    let addr = handle.addr().to_string();
    let mut conn = Sciql::connect(&format!("tcp://{addr}")).unwrap();
    conn.execute("CREATE ARRAY grid (x INT DIMENSION[0:1:8], v INT DEFAULT 0)")
        .unwrap();
    conn.execute("UPDATE grid SET v = x * x").unwrap();

    let replica = Replica::connect(&replica_dir, &addr).unwrap();
    wait_caught_up(&engine, &replica, "pre-checkpoint");
    replica.stop();

    // The replica's generation disappears while it is away.
    conn.execute("UPDATE grid SET v = v + 1").unwrap();
    engine.checkpoint().unwrap();
    conn.execute("CREATE TABLE after (n INT)").unwrap();
    conn.execute("INSERT INTO after VALUES (42)").unwrap();

    let replica = Replica::connect(&replica_dir, &addr).unwrap();
    wait_caught_up(&engine, &replica, "post-bootstrap");
    assert_eq!(
        select_bytes(&engine, "SELECT x, v FROM grid"),
        select_bytes(replica.engine(), "SELECT x, v FROM grid"),
    );
    let rs = replica
        .engine()
        .session()
        .query("SELECT n FROM after")
        .unwrap();
    assert_eq!(rs.row(0), vec![Value::Int(42)]);

    replica.stop();
    conn.shutdown_server().unwrap();
    drop(conn);
    drop(engine);
    drop(handle.wait());
    assert_twin_vaults(&primary_dir, &replica_dir, "post-bootstrap twin");
    std::fs::remove_dir_all(&primary_dir).ok();
    std::fs::remove_dir_all(&replica_dir).ok();
}

/// Monotonic reads through the routed driver: every read that follows a
/// write on the same connection observes that write, even though the
/// read is served by a replica racing the WAL stream. Also pins the
/// `sys.replication` view having live rows for both link ends.
#[test]
fn routed_driver_reads_own_writes_via_replica() {
    let primary_dir = fresh_dir("mono-primary");
    let replica_dir = fresh_dir("mono-replica");
    let engine = SharedEngine::open(&primary_dir).unwrap();
    let phandle = Server::bind(Arc::clone(&engine), "127.0.0.1:0")
        .unwrap()
        .serve()
        .unwrap();
    let paddr = phandle.addr().to_string();
    let replica = Replica::connect(&replica_dir, &paddr).unwrap();
    let rhandle = Server::bind(Arc::clone(replica.engine()), "127.0.0.1:0")
        .unwrap()
        .serve()
        .unwrap();
    let mut conn = Sciql::connect(&format!("tcp://{paddr},{}", rhandle.addr())).unwrap();
    assert_eq!(conn.transport_kind(), "tcp-routed");
    conn.execute("CREATE TABLE counter (n INT)").unwrap();
    for i in 0..25i64 {
        conn.execute(&format!("INSERT INTO counter VALUES ({i})"))
            .unwrap();
        // Served by the replica; the write token forces it fresh.
        let mut rows = conn.query("SELECT COUNT(*) FROM counter").unwrap();
        assert_eq!(
            rows.next_row().unwrap().get::<i64>(0).unwrap(),
            i + 1,
            "read after write {i} observed a stale count"
        );
    }
    // An all-read batch fans out over every endpoint and keeps slots.
    let sqls = vec!["SELECT COUNT(*) FROM counter"; 6];
    for outcome in conn.run_batch(&sqls).unwrap() {
        let sciql_repro::driver::Outcome::Rows(rs) = outcome.unwrap() else {
            panic!("expected rows");
        };
        assert_eq!(rs.row(0), vec![Value::Lng(25)]);
    }
    // Both link ends publish into sys.replication (one registry in
    // this process, so both rows are visible from either engine).
    let rs = replica
        .engine()
        .session()
        .query("SELECT role, peer, lag_bytes FROM sys.replication ORDER BY role")
        .unwrap();
    let roles: Vec<Value> = (0..rs.row_count()).map(|i| rs.row(i)[0].clone()).collect();
    assert!(roles.contains(&Value::Str("primary".into())), "{roles:?}");
    assert!(roles.contains(&Value::Str("replica".into())), "{roles:?}");
    // The shipping counters moved.
    let text = sciql_repro::obs::global().snapshot().to_prometheus_text();
    assert!(text.contains("repl_records_shipped"), "{text}");
    assert!(text.contains("repl_records_applied"), "{text}");

    conn.close().unwrap();
    replica.stop();
    for addr in [paddr, rhandle.addr().to_string()] {
        let mut admin = Sciql::connect(&format!("tcp://{addr}")).unwrap();
        admin.shutdown_server().unwrap();
        drop(admin);
    }
    drop(phandle.wait());
    drop(rhandle.wait());
    std::fs::remove_dir_all(&primary_dir).ok();
    std::fs::remove_dir_all(&replica_dir).ok();
}

/// A replica that cannot catch up answers token-carrying reads with the
/// typed `ReplicaLagging` (1107) refusal instead of stale data.
#[test]
fn stalled_replica_refuses_with_replica_lagging() {
    let primary_dir = fresh_dir("lag-primary");
    let stalled_dir = fresh_dir("lag-stalled");
    let engine = SharedEngine::open(&primary_dir).unwrap();
    let phandle = Server::bind(Arc::clone(&engine), "127.0.0.1:0")
        .unwrap()
        .serve()
        .unwrap();
    // A replica engine with no tailer: it will never apply anything.
    let stalled = SharedEngine::open_replica(&stalled_dir).unwrap();
    let shandle = Server::bind(Arc::clone(&stalled), "127.0.0.1:0")
        .unwrap()
        .serve()
        .unwrap();
    let mut conn = Sciql::connect(&format!("tcp://{},{}", phandle.addr(), shandle.addr())).unwrap();
    conn.execute("CREATE TABLE t (x INT)").unwrap();
    conn.execute("INSERT INTO t VALUES (1)").unwrap();
    match conn.query("SELECT COUNT(*) FROM t") {
        Err(e @ SciqlError::ReplicaLagging(_)) => {
            assert_eq!(e.code(), ErrorCode::ReplicaLagging);
        }
        other => panic!("expected ReplicaLagging, got {other:?}"),
    }
    conn.close().ok();
    let mut admin = Sciql::connect(&format!("tcp://{}", phandle.addr())).unwrap();
    admin.shutdown_server().unwrap();
    drop(admin);
    let mut admin = Sciql::connect(&format!("tcp://{}", shandle.addr())).unwrap();
    admin.shutdown_server().unwrap();
    drop(admin);
    drop(phandle.wait());
    drop(shandle.wait());
    drop(engine);
    drop(stalled);
    std::fs::remove_dir_all(&primary_dir).ok();
    std::fs::remove_dir_all(&stalled_dir).ok();
}

/// Clean shutdown releases the replica vault's `LOCK` even while other
/// `Arc` handles to its engine are still alive, so the directory can be
/// reopened immediately — by this process or the next.
#[test]
fn replica_stop_releases_vault_lock() {
    let primary_dir = fresh_dir("lock-primary");
    let replica_dir = fresh_dir("lock-replica");
    let engine = SharedEngine::open(&primary_dir).unwrap();
    let handle = Server::bind(Arc::clone(&engine), "127.0.0.1:0")
        .unwrap()
        .serve()
        .unwrap();
    let addr = handle.addr().to_string();
    let mut conn = Sciql::connect(&format!("tcp://{addr}")).unwrap();
    conn.execute("CREATE TABLE t (x INT)").unwrap();
    conn.execute("INSERT INTO t VALUES (7)").unwrap();

    let replica = Replica::connect(&replica_dir, &addr).unwrap();
    wait_caught_up(&engine, &replica, "lock test");
    // A lingering engine handle (a dashboard, a metrics endpoint…)
    // must not pin the LOCK past stop().
    let lingering = Arc::clone(replica.engine());
    assert!(replica_dir.join("LOCK").exists());
    replica.stop();
    assert!(
        !replica_dir.join("LOCK").exists(),
        "stop() must release the vault LOCK"
    );
    drop(lingering);
    // The directory reopens at its durable position, no primary needed.
    let reopened = SharedEngine::open_replica(&replica_dir).unwrap();
    let rs = reopened.session().query("SELECT x FROM t").unwrap();
    assert_eq!(rs.row(0), vec![Value::Int(7)]);
    drop(reopened);

    conn.shutdown_server().unwrap();
    drop(conn);
    drop(engine);
    drop(handle.wait());
    std::fs::remove_dir_all(&primary_dir).ok();
    std::fs::remove_dir_all(&replica_dir).ok();
}
