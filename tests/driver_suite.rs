//! Driver acceptance suite: one `sciql::driver` surface over embedded
//! and network transports.
//!
//! The headline differential test pins **byte-identical result pages**
//! for bound-parameter prepared statements across `mem:` (embedded) vs
//! `tcp://` (served) transports × opt_level {0, 2} × threads {1, 8},
//! plus a property test that random parameter values round-trip through
//! protocol-v3 `Bind` frames bit-exactly (nil sentinels and strings
//! included).

use proptest::prelude::*;
use sciql_repro::driver::{Conn, Rows, Sciql, SciqlError};
use sciql_repro::gdk::Value;
use sciql_repro::net::proto;
use sciql_repro::net::Server;
use sciql_repro::params;
use sciql_repro::sciql::{Connection, ErrorCode, SessionConfig, SharedEngine};

/// Statements that build the shared test state: an array with computed
/// cells and a table with strings and NULL holes.
const SEED: &[&str] = &[
    "CREATE ARRAY m (x INT DIMENSION[0:1:6], y INT DIMENSION[0:1:6], v INT DEFAULT 0)",
    "UPDATE m SET v = x * y - x",
    "DELETE FROM m WHERE x = 5 AND y = 5",
    "CREATE TABLE t (a INT, s VARCHAR)",
    "INSERT INTO t VALUES (1, 'alpha'), (2, 'it''s'), (3, NULL), (4, 'Δδ'), (5, 'beta')",
];

/// The prepared statements under test, with two parameter vectors each
/// (so the second execution exercises the plan cache).
fn cases() -> Vec<(&'static str, Vec<Vec<Value>>)> {
    vec![
        (
            "SELECT [x], [y], v FROM m WHERE v >= :lo AND v < :hi",
            vec![
                vec![Value::Int(0), Value::Int(10)],
                vec![Value::Int(-5), Value::Int(3)],
            ],
        ),
        (
            "SELECT COUNT(*) FROM m WHERE x > ?",
            vec![vec![Value::Int(1)], vec![Value::Int(4)]],
        ),
        (
            "SELECT a, s FROM t WHERE a BETWEEN ? AND ? ORDER BY a",
            vec![
                vec![Value::Int(1), Value::Int(5)],
                vec![Value::Int(2), Value::Int(3)],
            ],
        ),
        (
            "SELECT a FROM t WHERE s = ?",
            vec![
                vec![Value::Str("it's".into())],
                vec![Value::Str("Δδ".into())],
            ],
        ),
    ]
}

/// The full wire encoding of a result — the "byte-identical" yardstick
/// (page size 3 forces multi-page results).
fn wire_bytes(rows: &Rows) -> Vec<u8> {
    let rs = rows.result_set();
    let mut bytes = rs.encode_header();
    for page in rs.encode_pages(3) {
        bytes.extend_from_slice(&page);
    }
    bytes
}

fn seed(conn: &mut Conn) {
    for stmt in SEED {
        conn.execute(stmt).expect(stmt);
    }
}

/// The acceptance criterion: `Sciql::connect("tcp://…")` and
/// `Sciql::connect("mem:")` execute the same prepared statement with the
/// same bound parameters and yield byte-identical result pages, at every
/// optimizer level and thread count.
#[test]
fn bound_params_byte_identical_across_transports() {
    for opt_level in [0u8, 2] {
        for threads in [1usize, 8] {
            let cfg = SessionConfig {
                threads,
                opt_level,
                ..SessionConfig::default()
            };
            // Embedded side.
            let mut local = Sciql::connect_with_config("mem:", cfg).unwrap();
            seed(&mut local);
            // Served side: same config, same seed, reached over TCP.
            let engine = SharedEngine::new(Connection::with_config(cfg));
            let handle = Server::bind(engine, "127.0.0.1:0")
                .unwrap()
                .serve()
                .unwrap();
            let mut remote = Sciql::connect(&format!("tcp://{}", handle.addr())).unwrap();
            seed(&mut remote);

            for (sql, param_sets) in cases() {
                let lstmt = local.prepare(sql).unwrap();
                let rstmt = remote.prepare(sql).unwrap();
                assert_eq!(lstmt.param_count(), rstmt.param_count(), "{sql}");
                for (i, ps) in param_sets.iter().enumerate() {
                    let lrows = local.query_bound(&lstmt, ps).unwrap();
                    let rrows = remote.query_bound(&rstmt, ps).unwrap();
                    assert_eq!(
                        wire_bytes(&lrows),
                        wire_bytes(&rrows),
                        "opt={opt_level} threads={threads} sql={sql} params#{i}"
                    );
                    if i > 0 {
                        // Re-execution hit the plan cache on both sides.
                        assert_eq!(local.last_plan_cache_hits().unwrap(), 1, "{sql}");
                        assert_eq!(remote.last_plan_cache_hits().unwrap(), 1, "{sql}");
                    }
                }
            }
            remote.shutdown_server().unwrap();
            handle.wait();
        }
    }
}

/// Error parity: the same failure yields the same `SciqlError` variant
/// (and stable code) on both transports.
#[test]
fn errors_unify_across_transports() {
    let engine = SharedEngine::in_memory();
    let handle = Server::bind(engine, "127.0.0.1:0")
        .unwrap()
        .serve()
        .unwrap();
    let mut remote = Sciql::connect(&format!("tcp://{}", handle.addr())).unwrap();
    let mut local = Sciql::connect("mem:").unwrap();

    let check = |local_err: SciqlError, remote_err: SciqlError, code: ErrorCode| {
        assert_eq!(local_err.code(), code, "{local_err}");
        assert_eq!(remote_err.code(), code, "{remote_err}");
        assert_eq!(
            std::mem::discriminant(&local_err),
            std::mem::discriminant(&remote_err)
        );
    };
    // Parse error.
    check(
        local.execute("SELEC nonsense").unwrap_err(),
        remote.execute("SELEC nonsense").unwrap_err(),
        ErrorCode::Parse,
    );
    // Catalog error.
    check(
        local.query("SELECT v FROM nowhere").unwrap_err(),
        remote.query("SELECT v FROM nowhere").unwrap_err(),
        ErrorCode::Catalog,
    );
    // Param error: prepared statement executed with a missing value.
    for conn in [&mut local, &mut remote] {
        conn.execute("CREATE TABLE e (a INT)").unwrap();
    }
    let ls = local.prepare("SELECT a FROM e WHERE a = ?").unwrap();
    let rs = remote.prepare("SELECT a FROM e WHERE a = ?").unwrap();
    check(
        local.query_bound(&ls, &[]).unwrap_err(),
        remote.query_bound(&rs, &[]).unwrap_err(),
        ErrorCode::Param,
    );
    remote.shutdown_server().unwrap();
    handle.wait();
}

/// Named binding, FromSql typed accessors and cursor semantics.
#[test]
fn typed_rows_and_named_params() {
    let mut conn = Sciql::connect("mem:").unwrap();
    seed(&mut conn);
    let stmt = conn
        .prepare("SELECT a, s FROM t WHERE a >= :lo AND a <= :hi ORDER BY a")
        .unwrap();
    let outcome = conn
        .run_named(&stmt, &[(":hi", Value::Int(3)), ("lo", Value::Int(2))])
        .unwrap();
    let sciql_repro::driver::Outcome::Rows(rs) = outcome else {
        panic!("expected rows");
    };
    assert_eq!(rs.row_count(), 2);
    let mut rows = conn.query_bound(&stmt, params![2, 3]).unwrap();
    let first = rows.next_row().unwrap();
    assert_eq!(first.get::<i64>(0).unwrap(), 2);
    assert_eq!(first.get::<String>(1).unwrap(), "it's");
    let second = rows.next_row().unwrap();
    assert_eq!(second.get_by_name::<i64>("a").unwrap(), 3);
    assert_eq!(second.get::<Option<String>>(1).unwrap(), None, "SQL NULL");
    assert!(rows.next_row().is_none(), "cursor exhausted");
    // Type mismatches are statement errors, not panics.
    assert!(matches!(
        rows.row(0).unwrap().get::<String>(0),
        Err(SciqlError::Statement(_))
    ));
    // Unknown named parameter.
    assert!(matches!(
        conn.run_named(&stmt, &[("nope", Value::Int(1))]),
        Err(SciqlError::Param(_))
    ));
    // Unbound named parameter.
    assert!(matches!(
        conn.run_named(&stmt, &[("lo", Value::Int(1))]),
        Err(SciqlError::Param(_))
    ));
}

/// Prepared DML through the driver mutates identically over both
/// transports, and `file:` URLs recover their state.
#[test]
fn file_url_durability_roundtrip() {
    let dir = std::env::temp_dir().join(format!("sciql-driver-vault-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let url = format!("file:{}", dir.display());
    {
        let mut conn = Sciql::connect(&url).unwrap();
        conn.execute("CREATE TABLE kv (k INT, v VARCHAR)").unwrap();
        let ins = conn.prepare("INSERT INTO kv VALUES (?, ?)").unwrap();
        for (k, v) in [(1, "one"), (2, "two")] {
            assert_eq!(conn.execute_bound(&ins, params![k, v]).unwrap(), 1);
        }
        conn.close().unwrap();
    }
    let mut conn = Sciql::connect(&url).unwrap();
    let mut rows = conn.query("SELECT v FROM kv WHERE k = 2").unwrap();
    assert_eq!(rows.next_row().unwrap().get::<String>(0).unwrap(), "two");
    std::fs::remove_dir_all(&dir).ok();
}

/// Driver connections over one in-process `SharedEngine` share state.
#[test]
fn attach_shares_an_engine() {
    let engine = SharedEngine::in_memory();
    let mut a = Sciql::attach(&engine);
    let mut b = Sciql::attach(&engine);
    a.execute("CREATE TABLE shared (x INT)").unwrap();
    a.execute("INSERT INTO shared VALUES (7)").unwrap();
    let stmt = b
        .prepare("SELECT COUNT(*) FROM shared WHERE x = ?")
        .unwrap();
    let mut rows = b.query_bound(&stmt, params![7]).unwrap();
    assert_eq!(rows.next_row().unwrap().get::<i64>(0).unwrap(), 1);
    assert_eq!(b.transport_kind(), "engine");
}

/// Bad URLs fail with the Connection code, not a panic.
#[test]
fn connect_rejects_bad_urls() {
    for url in ["", "http://x", "file:", "tcp://"] {
        match Sciql::connect(url) {
            Err(e) => assert_eq!(e.code(), ErrorCode::Connection, "{url}"),
            Ok(_) => panic!("{url} should not connect"),
        }
    }
}

// ---------------------------------------------------------------------
// property: Bind frames round-trip bit-exactly
// ---------------------------------------------------------------------

fn value_strategy() -> BoxedStrategy<Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bit),
        (-1_000_000i32..1_000_000).prop_map(Value::Int),
        (-1_000_000_000_000i64..1_000_000_000_000).prop_map(Value::Lng),
        (-1.0e12f64..1.0e12).prop_map(Value::Dbl),
        "[ -~]{0,24}".prop_map(Value::Str),
        Just(Value::Str("Δδ π — ünïcode".into())),
        Just(Value::Dbl(f64::NAN)),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random parameter vectors (nil sentinels, strings with quotes,
    /// NaN doubles) survive the Bind frame encode/decode bit-exactly:
    /// re-encoding the decoded values reproduces the original payload
    /// byte for byte.
    #[test]
    fn bind_frames_roundtrip_bit_exactly(
        values in proptest::collection::vec(value_strategy(), 0..8),
        name in "[a-z][a-z0-9_]{0,12}",
    ) {
        let payload = proto::bind(&name, &values);
        let (op, body) = proto::split(&payload)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(op, proto::Op::Bind);
        let (dname, dvalues) = proto::read_bind(body)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(&dname, &name);
        prop_assert_eq!(dvalues.len(), values.len());
        // Bit-exactness: the re-encoded payload is identical (this also
        // covers NaN, which is not == to itself at the Value level).
        let reencoded = proto::bind(&dname, &dvalues);
        prop_assert_eq!(reencoded, payload);
    }
}

/// Statement handles are pinned to the connection that prepared them —
/// a foreign handle is refused instead of silently addressing an
/// unrelated statement with the same generated name.
#[test]
fn statements_are_connection_local() {
    let mut a = Sciql::connect("mem:").unwrap();
    let mut b = Sciql::connect("mem:").unwrap();
    for conn in [&mut a, &mut b] {
        conn.execute("CREATE TABLE t (x INT)").unwrap();
        conn.execute("INSERT INTO t VALUES (1)").unwrap();
    }
    let stmt_a = a.prepare("SELECT COUNT(*) FROM t WHERE x = ?").unwrap();
    // Same generated name slot on b, very different statement.
    let _stmt_b = b.prepare("DELETE FROM t WHERE x = ?").unwrap();
    match b.run_bound(&stmt_a, &[Value::Int(1)]) {
        Err(SciqlError::Statement(_)) => {}
        other => panic!("foreign statement must be refused, got {other:?}"),
    }
    assert!(b.deallocate(stmt_a).is_err(), "deallocate checks too");
    // b's own table is untouched by the refused call.
    let mut rows = b.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(rows.next_row().unwrap().get::<i64>(0).unwrap(), 1);
}
