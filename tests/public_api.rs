//! Public-API snapshot guard for the driver surface.
//!
//! The test scrapes every public item declaration out of `src/driver.rs`
//! and compares the normalized list against the committed snapshot in
//! `tests/snapshots/driver_api.txt`. A future PR that renames, removes
//! or re-types a public driver item fails here and must consciously
//! update the snapshot (regenerate with
//! `UPDATE_API_SNAPSHOT=1 cargo test --test public_api`).

use std::fmt::Write as _;
use std::path::PathBuf;

/// Extract normalized public item signatures from a Rust source file:
/// `pub fn/struct/enum/trait/type` declarations (and exported macros),
/// captured up to the opening brace or semicolon, whitespace-collapsed.
fn public_items(source: &str) -> Vec<String> {
    const STARTERS: &[&str] = &[
        "pub fn ",
        "pub struct ",
        "pub enum ",
        "pub trait ",
        "pub type ",
        "macro_rules! ",
    ];
    let mut items = Vec::new();
    let mut capture: Option<String> = None;
    for raw in source.lines() {
        let line = raw.trim();
        if capture.is_none() && STARTERS.iter().any(|s| line.starts_with(s)) {
            capture = Some(String::new());
        }
        if let Some(buf) = capture.as_mut() {
            buf.push_str(line);
            buf.push(' ');
            if line.contains('{') || line.contains(';') {
                let sig = buf
                    .split(['{', ';'])
                    .next()
                    .unwrap_or_default()
                    .split_whitespace()
                    .collect::<Vec<_>>()
                    .join(" ");
                items.push(sig);
                capture = None;
            }
        }
    }
    items.sort();
    items
}

#[test]
fn driver_public_api_matches_snapshot() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let source = std::fs::read_to_string(root.join("src/driver.rs")).expect("read src/driver.rs");
    let mut generated = String::new();
    writeln!(
        generated,
        "# Public items of sciql_repro::driver (generated — see tests/public_api.rs)"
    )
    .unwrap();
    for item in public_items(&source) {
        writeln!(generated, "{item}").unwrap();
    }
    let snap_path = root.join("tests/snapshots/driver_api.txt");
    if std::env::var_os("UPDATE_API_SNAPSHOT").is_some() {
        std::fs::create_dir_all(snap_path.parent().unwrap()).unwrap();
        std::fs::write(&snap_path, &generated).unwrap();
        return;
    }
    let committed = std::fs::read_to_string(&snap_path).unwrap_or_else(|_| {
        panic!(
            "missing snapshot {}; generate it with UPDATE_API_SNAPSHOT=1 cargo test --test public_api",
            snap_path.display()
        )
    });
    assert_eq!(
        committed, generated,
        "the public driver API changed; if intentional, regenerate the snapshot with \
         UPDATE_API_SNAPSHOT=1 cargo test --test public_api"
    );
}

#[test]
fn scraper_sees_the_core_surface() {
    // Guard the guard: if the scraper silently broke, the snapshot would
    // degenerate to an empty list and stop protecting anything.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let source = std::fs::read_to_string(root.join("src/driver.rs")).unwrap();
    let items = public_items(&source);
    for needle in [
        "pub fn connect(url: &str) -> Result<Conn>",
        "pub struct Conn",
        "pub struct Statement",
        "pub struct Rows",
        "pub trait FromSql: Sized",
        "pub trait Transport",
        "pub enum SciqlError",
    ] {
        assert!(
            items.iter().any(|i| i.starts_with(needle)),
            "scraper lost {needle:?}; items: {items:#?}"
        );
    }
    assert!(items.len() >= 40, "suspiciously few items: {}", items.len());
}
