//! E6/E7: the storage layout of Fig 3 and the compilation pipeline of
//! Fig 2 — verified end to end.

use gdk::Value;
use mal::OptConfig;
use sciql::Connection;
use sciql_algebra::CodegenOptions;

/// Fig 3: `CREATE ARRAY matrix` materialises exactly three BATs with the
/// 16-row layout printed in the paper.
#[test]
fn fig3_bat_layout() {
    let mut c = Connection::new();
    c.execute(
        "CREATE ARRAY matrix (x INT DIMENSION[0:1:4], y INT DIMENSION[0:1:4], \
         v INT DEFAULT 0)",
    )
    .unwrap();
    let store = c.array_store("matrix").unwrap();
    assert_eq!(store.dims.len(), 2, "one BAT per dimension");
    assert_eq!(store.attrs.len(), 1, "one BAT per attribute");
    // The exact tails of Fig 3.
    assert_eq!(
        store.dims[0].as_ints().unwrap(),
        &[0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3],
        "x = array.series(0,1,4,4,1)"
    );
    assert_eq!(
        store.dims[1].as_ints().unwrap(),
        &[0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3],
        "y = array.series(0,1,4,1,4)"
    );
    assert_eq!(
        store.attrs[0].as_ints().unwrap(),
        &[0; 16],
        "v = array.filler(16,0)"
    );
}

/// Fig 2: EXPLAIN shows every pipeline stage — logical plan, generated
/// MAL, optimised MAL.
#[test]
fn explain_exposes_pipeline_stages() {
    let mut c = Connection::new();
    c.execute(
        "CREATE ARRAY matrix (x INT DIMENSION[0:1:8], y INT DIMENSION[0:1:8], \
         v INT DEFAULT 0)",
    )
    .unwrap();
    let text = c
        .explain("SELECT [x], [y], AVG(v) FROM matrix GROUP BY matrix[x:x+2][y:y+2]")
        .unwrap();
    assert!(text.contains("-- logical plan"), "{text}");
    assert!(text.contains("Tile cells=4"), "{text}");
    assert!(text.contains("-- MAL (generated)"), "{text}");
    assert!(text.contains("array.shift"), "{text}");
    assert!(text.contains("-- MAL (optimised)"), "{text}");
    assert!(text.contains("sql.bind"), "{text}");
}

fn fig1c_session() -> Connection {
    let mut c = Connection::new();
    c.execute_script(
        "CREATE ARRAY matrix (x INT DIMENSION[0:1:16], y INT DIMENSION[0:1:16], \
         v INT DEFAULT 0); \
         UPDATE matrix SET v = CASE WHEN x > y THEN x + y WHEN x < y THEN x - y \
         ELSE 0 END; \
         DELETE FROM matrix WHERE x > y AND y MOD 3 = 0;",
    )
    .unwrap();
    c
}

const QUERIES: &[&str] = &[
    "SELECT x, y, v FROM matrix WHERE x > 2 AND y <= 9",
    "SELECT [x], [y], AVG(v) FROM matrix GROUP BY matrix[x:x+2][y:y+2]",
    "SELECT v, COUNT(*) FROM matrix GROUP BY v ORDER BY v",
    "SELECT [x], [y], SUM(v) - v FROM matrix GROUP BY matrix[x-1:x+2][y-1:y+2]",
    "SELECT DISTINCT v FROM matrix ORDER BY v LIMIT 5",
    "SELECT COUNT(*), MIN(v), MAX(v), AVG(v) FROM matrix WHERE v IS NOT NULL",
];

/// A1 sanity: the optimizer pipeline must never change results.
#[test]
fn optimised_and_unoptimised_agree() {
    for sql in QUERIES {
        let mut on = fig1c_session();
        on.set_optimizer(OptConfig::default());
        let a = on.query(sql).unwrap();
        let mut off = fig1c_session();
        off.set_optimizer(OptConfig::none());
        let b = off.query(sql).unwrap();
        assert_eq!(a.row_count(), b.row_count(), "{sql}");
        for r in 0..a.row_count() {
            assert_eq!(a.row(r), b.row(r), "{sql} row {r}");
        }
        // And the pipeline genuinely removed instructions somewhere.
        assert!(on.last_exec().instrs_after_opt <= on.last_exec().instrs_before_opt);
    }
}

/// A2 sanity: candidate pushdown and mask filtering compute identical
/// results.
#[test]
fn candidate_and_mask_codegen_agree() {
    for sql in QUERIES {
        let mut cands = fig1c_session();
        cands.set_codegen(CodegenOptions {
            candidate_pushdown: true,
            ..CodegenOptions::default()
        });
        let a = cands.query(sql).unwrap();
        let mut masks = fig1c_session();
        masks.set_codegen(CodegenOptions {
            candidate_pushdown: false,
            ..CodegenOptions::default()
        });
        let b = masks.query(sql).unwrap();
        assert_eq!(a.row_count(), b.row_count(), "{sql}");
        for r in 0..a.row_count() {
            assert_eq!(a.row(r), b.row(r), "{sql} row {r}");
        }
    }
}

/// The optimizer measurably shrinks the tiling program (CSE collapses the
/// repeated shift/isnil subtrees).
#[test]
fn optimizer_shrinks_tiling_program() {
    let mut c = fig1c_session();
    c.query("SELECT [x], [y], AVG(v) FROM matrix GROUP BY matrix[x-1:x+2][y-1:y+2]")
        .unwrap();
    let stats = c.last_exec();
    assert!(
        stats.instrs_after_opt < stats.instrs_before_opt,
        "expected shrink, got {} -> {}",
        stats.instrs_before_opt,
        stats.instrs_after_opt
    );
    assert!(stats.opt.total_removed() > 0);
}

/// The tuples-produced counter separates candidate from mask execution:
/// with pushdown the selective filter materialises fewer intermediates.
#[test]
fn candidate_pushdown_produces_fewer_tuples() {
    let sql = "SELECT v FROM matrix WHERE x = 3 AND y = 4";
    let mut cands = fig1c_session();
    cands.set_codegen(CodegenOptions {
        candidate_pushdown: true,
        ..CodegenOptions::default()
    });
    cands.query(sql).unwrap();
    let with = cands.last_exec().exec.tuples_produced;
    let mut masks = fig1c_session();
    masks.set_codegen(CodegenOptions {
        candidate_pushdown: false,
        ..CodegenOptions::default()
    });
    masks.query(sql).unwrap();
    let without = masks.last_exec().exec.tuples_produced;
    assert!(
        with < without,
        "candidates should materialise fewer tuples ({with} vs {without})"
    );
}

/// Join recognition: the EXPLAIN for the bit-mask AOI query must show a
/// hash join, not a cross product.
#[test]
fn join_recognition_in_pipeline() {
    let mut c = Connection::new();
    c.execute("CREATE ARRAY img (x INT DIMENSION[0:1:8], y INT DIMENSION[0:1:8], v INT DEFAULT 1)")
        .unwrap();
    c.execute(
        "CREATE ARRAY mask (x INT DIMENSION[0:1:8], y INT DIMENSION[0:1:8], v INT DEFAULT 0)",
    )
    .unwrap();
    let text = c
        .explain(
            "SELECT a.v FROM img a, mask m \
             WHERE a.x = m.x AND a.y = m.y AND m.v = 1",
        )
        .unwrap();
    assert!(text.contains("EquiJoin keys=2 residual=true"), "{text}");
    assert!(text.contains("algebra.joinn"), "{text}");
    assert!(!text.contains("crossproduct"), "{text}");
}

/// Aggregates over the Fig 1(c) matrix: nils are invisible to aggregation
/// but COUNT(*) still counts cells.
#[test]
fn aggregate_null_semantics_end_to_end() {
    let mut c = Connection::new();
    c.execute_script(
        "CREATE ARRAY m (x INT DIMENSION[0:1:4], v INT DEFAULT 2); \
         DELETE FROM m WHERE x = 1;",
    )
    .unwrap();
    let rs = c
        .query("SELECT COUNT(*), COUNT(v), SUM(v), AVG(v) FROM m")
        .unwrap();
    assert_eq!(rs.get(0, 0), Value::Lng(4), "COUNT(*) counts cells");
    assert_eq!(rs.get(0, 1), Value::Lng(3), "COUNT(v) skips the hole");
    assert_eq!(rs.get(0, 2), Value::Lng(6));
    assert_eq!(rs.get(0, 3), Value::Dbl(2.0));
}
