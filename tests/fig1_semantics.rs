//! E1–E5: reproduce Figure 1 of the paper — the complete array-operation
//! walkthrough (creation, guarded update, insert/delete, tiling, dimension
//! expansion) with the exact values printed in the paper.

use gdk::Value;
use sciql::Connection;

fn setup_fig1a() -> Connection {
    let mut c = Connection::new();
    c.execute(
        "CREATE ARRAY matrix (
           x INT DIMENSION[0:1:4], y INT DIMENSION[0:1:4],
           v INT DEFAULT 0)",
    )
    .unwrap();
    c
}

/// Fetch v at (x,y) via SQL.
fn v_at(c: &mut Connection, x: i64, y: i64) -> Value {
    let rs = c
        .query(&format!("SELECT v FROM matrix WHERE x = {x} AND y = {y}"))
        .unwrap();
    assert_eq!(rs.row_count(), 1, "exactly one cell at ({x},{y})");
    rs.get(0, 0)
}

/// The full 4×4 grid of Fig 1(b) (row = y from top 0, col = x), transposed
/// to our (x,y) addressing: grid[y][x].
fn expect_grid(c: &mut Connection, grid: [[Option<i32>; 4]; 4]) {
    for (y, row) in grid.iter().enumerate() {
        for (x, cell) in row.iter().enumerate() {
            let want = cell.map(Value::Int).unwrap_or(Value::Null);
            assert_eq!(v_at(c, x as i64, y as i64), want, "cell (x={x}, y={y})");
        }
    }
}

#[test]
fn fig1a_creation_yields_zero_matrix() {
    let mut c = setup_fig1a();
    let rs = c.query("SELECT x, y, v FROM matrix").unwrap();
    assert_eq!(rs.row_count(), 16);
    assert!(rs.rows().all(|r| r[2] == Value::Int(0)));
}

#[test]
fn fig1b_guarded_update() {
    let mut c = setup_fig1a();
    c.execute(
        "UPDATE matrix SET v = CASE WHEN x > y THEN x + y \
         WHEN x < y THEN x - y ELSE 0 END",
    )
    .unwrap();
    // Fig 1(b): reading each row top-to-bottom as y = 0..3:
    //   y=0: -3 -2 -1 0  ← wait, Fig 1(b) shows row y=3 at top.
    // The figure draws y increasing upward; cell (x,y) holds:
    //   x > y → x+y ; x < y → x−y ; else 0.
    expect_grid(
        &mut c,
        [
            // y = 0: x=0..3 → 0, 1, 2, 3  (x>y for x≥1)
            [Some(0), Some(1), Some(2), Some(3)],
            // y = 1: x=0 → 0-1=-1; x=1 → 0; x=2 → 3; x=3 → 4
            [Some(-1), Some(0), Some(3), Some(4)],
            // y = 2: -2, -1, 0, 5
            [Some(-2), Some(-1), Some(0), Some(5)],
            // y = 3: -3, -2, -1, 0
            [Some(-3), Some(-2), Some(-1), Some(0)],
        ],
    );
}

fn setup_fig1c() -> Connection {
    let mut c = setup_fig1a();
    c.execute(
        "UPDATE matrix SET v = CASE WHEN x > y THEN x + y \
         WHEN x < y THEN x - y ELSE 0 END",
    )
    .unwrap();
    c.execute("INSERT INTO matrix SELECT [x], [y], x * y FROM matrix WHERE x = y")
        .unwrap();
    c.execute("DELETE FROM matrix WHERE x > y").unwrap();
    c
}

#[test]
fn fig1c_insert_overwrites_and_delete_punches_holes() {
    let mut c = setup_fig1c();
    // INSERT overwrote the diagonal with x*y: 0, 1, 4, 9.
    // DELETE punched holes where x > y.
    expect_grid(
        &mut c,
        [
            [Some(0), None, None, None],
            [Some(-1), Some(1), None, None],
            [Some(-2), Some(-1), Some(4), None],
            [Some(-3), Some(-2), Some(-1), Some(9)],
        ],
    );
    // 6 holes were punched (cells with x > y).
    let rs = c
        .query("SELECT COUNT(*) FROM matrix WHERE v IS NULL")
        .unwrap();
    assert_eq!(rs.scalar().unwrap(), Value::Lng(6));
}

#[test]
fn fig1d_e_tiling_with_having() {
    let mut c = setup_fig1c();
    // The exact query from §2 of the paper.
    let rs = c
        .query(
            "SELECT [x], [y], AVG(v) FROM matrix \
             GROUP BY matrix[x:x+2][y:y+2] \
             HAVING x MOD 2 = 1 AND y MOD 2 = 1",
        )
        .unwrap();
    // Four anchors qualify: (1,1), (1,3), (3,1), (3,3).
    assert_eq!(rs.row_count(), 4);
    let view = rs.to_array_view().unwrap();
    // Fig 1(e):
    //   anchor (1,1): cells (1,1)=1,(2,1)=nil,(1,2)=-1,(2,2)=4 → AVG = 4/3
    assert_eq!(view.at(&[1, 1]), Some(&Value::Dbl(4.0 / 3.0)));
    //   anchor (1,3): cells (1,3)=-2,(2,3)=-1,(1,4)⊥,(2,4)⊥ → AVG = -1.5
    assert_eq!(view.at(&[1, 3]), Some(&Value::Dbl(-1.5)));
    //   anchor (3,1): cells (3,1)=nil,(3,2)=nil,(4,·)⊥ → all holes → NULL
    assert_eq!(view.at(&[3, 1]), Some(&Value::Null));
    //   anchor (3,3): cells (3,3)=9,(4,·)⊥,(3,4)⊥ → AVG = 9
    assert_eq!(view.at(&[3, 3]), Some(&Value::Dbl(9.0)));
}

#[test]
fn fig1f_dimension_expansion() {
    let mut c = setup_fig1c();
    c.execute("ALTER ARRAY matrix ALTER DIMENSION x SET RANGE [-1:1:5]")
        .unwrap();
    c.execute("ALTER ARRAY matrix ALTER DIMENSION y SET RANGE [-1:1:5]")
        .unwrap();
    let rs = c.query("SELECT x, y, v FROM matrix").unwrap();
    assert_eq!(
        rs.row_count(),
        36,
        "6×6 after expanding by 1 in all directions"
    );
    // Old values preserved (Fig 1(f) keeps the Fig 1(c) interior).
    assert_eq!(v_at(&mut c, 3, 3), Value::Int(9));
    assert_eq!(v_at(&mut c, 0, 1), Value::Int(-1));
    assert_eq!(v_at(&mut c, 1, 0), Value::Null, "hole survives expansion");
    // New border cells take the default 0 (the figure's zero ring).
    for i in -1..5i64 {
        assert_eq!(v_at(&mut c, i, -1), Value::Int(0), "bottom border");
        assert_eq!(v_at(&mut c, -1, i), Value::Int(0), "left border");
        assert_eq!(v_at(&mut c, i, 4), Value::Int(0), "top border");
        assert_eq!(v_at(&mut c, 4, i), Value::Int(0), "right border");
    }
}

#[test]
fn array_table_coercions_roundtrip() {
    // §2 "Array and Table Coercions": array → table → array.
    let mut c = setup_fig1c();
    c.execute("CREATE TABLE mtable (x INT, y INT, v INT)")
        .unwrap();
    c.execute("INSERT INTO mtable SELECT x, y, v FROM matrix")
        .unwrap();
    let rs = c.query("SELECT x, y, v FROM mtable").unwrap();
    assert_eq!(rs.row_count(), 16);
    // Table → array with the [x], [y] qualifiers.
    let view = c
        .query("SELECT [x], [y], v FROM mtable")
        .unwrap()
        .to_array_view()
        .unwrap();
    assert_eq!(view.sizes, vec![4, 4]);
    assert_eq!(view.at(&[3, 3]), Some(&Value::Int(9)));
    assert_eq!(view.at(&[1, 0]), Some(&Value::Null));
}
