//! End-to-end tests for the tiled-store bulk-ingest path:
//! `COPY <target> FROM '<path>' (FORMAT csv|binary)`, per-batch WAL
//! logging, tile-granular crash recovery, and the zone-map tile-skipping
//! differential (skipping on vs off must be byte-identical).

use gdk::{Bat, Value};
use sciql::{write_copy_binary, Connection, SessionConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const TILE_ROWS: usize = 8192;

fn fresh_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "sciql-copy-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&d).ok();
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn copy_csv_into_table_parses_types_nulls_and_quotes() {
    let dir = fresh_dir("csv");
    let csv = dir.join("rows.csv");
    std::fs::write(
        &csv,
        "1,hello,1.5\n\
         2,\"with, comma\",2.5\n\
         3,,\n\
         4,\"say \"\"hi\"\"\",0.25\n\
         5,\"NULL\",NULL\n",
    )
    .unwrap();
    let mut c = Connection::new();
    c.execute("CREATE TABLE t (a INT, s TEXT, d DOUBLE)")
        .unwrap();
    let n = c
        .execute(&format!("COPY t FROM '{}' (FORMAT csv)", csv.display()))
        .unwrap()
        .affected()
        .unwrap();
    assert_eq!(n, 5);
    let rs = c.query("SELECT s FROM t WHERE a = 2").unwrap();
    assert_eq!(rs.scalar().unwrap(), Value::Str("with, comma".into()));
    let rs = c.query("SELECT s FROM t WHERE a = 4").unwrap();
    assert_eq!(rs.scalar().unwrap(), Value::Str("say \"hi\"".into()));
    // Unquoted empties are nil; a quoted "NULL" is the string.
    let rs = c.query("SELECT COUNT(*) FROM t WHERE s IS NULL").unwrap();
    assert_eq!(rs.scalar().unwrap(), Value::Lng(1));
    let rs = c.query("SELECT a FROM t WHERE s = 'NULL'").unwrap();
    assert_eq!(rs.scalar().unwrap(), Value::Int(5));
    let rs = c.query("SELECT COUNT(*) FROM t WHERE d IS NULL").unwrap();
    assert_eq!(rs.scalar().unwrap(), Value::Lng(2));
    // Type errors carry the offending line number.
    std::fs::write(&csv, "1,ok,1.0\nbad,x,2.0\n").unwrap();
    let err = c
        .execute(&format!("COPY t FROM '{}' (FORMAT csv)", csv.display()))
        .unwrap_err()
        .to_string();
    assert!(err.contains("line 2"), "error names the line: {err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn copy_binary_multi_tile_survives_crash_recovery() {
    let dir = fresh_dir("bin");
    let vault = dir.join("db");
    let file = dir.join("rows.bin");
    // 2.5 tiles of rows → three CopyBatch WAL records.
    let rows = TILE_ROWS * 2 + TILE_ROWS / 2;
    let ks: Vec<i32> = (0..rows as i32).collect();
    let vs: Vec<f64> = (0..rows).map(|i| (i % 97) as f64 / 7.0).collect();
    write_copy_binary(&file, &[Bat::from_ints(ks), Bat::from_dbls(vs)]).unwrap();
    {
        let mut c = Connection::open(&vault).unwrap();
        c.execute("CREATE TABLE big (k INT, v DOUBLE)").unwrap();
        let n = c
            .execute(&format!(
                "COPY big FROM '{}' (FORMAT binary)",
                file.display()
            ))
            .unwrap()
            .affected()
            .unwrap();
        assert_eq!(n, rows);
        let s = c.vault_stats().unwrap();
        assert_eq!(s.wal_records, 1 + 3, "CREATE + one record per batch");
    } // crash: no checkpoint — recovery must replay the CopyBatch records
    let mut c = Connection::open(&vault).unwrap();
    let rs = c.query("SELECT COUNT(*), SUM(k) FROM big").unwrap();
    assert_eq!(rs.bats[0].get(0), Value::Lng(rows as i64));
    let want: i64 = (0..rows as i64).sum();
    assert_eq!(rs.bats[1].get(0), Value::Lng(want));
    // And the replayed state checkpoints into tiles cleanly.
    c.checkpoint().unwrap();
    let s = c.vault_stats().unwrap();
    assert!(
        s.tile_files >= 6,
        "2 columns × ≥3 tiles, got {}",
        s.tile_files
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn copy_into_array_fills_cells_and_enforces_cardinality() {
    let dir = fresh_dir("arr");
    let csv = dir.join("cells.csv");
    let lines: Vec<String> = (0..16).map(|i| format!("{}.5", i)).collect();
    std::fs::write(&csv, lines.join("\n")).unwrap();
    let mut c = Connection::new();
    c.execute(
        "CREATE ARRAY m (x INT DIMENSION[0:1:4], y INT DIMENSION[0:1:4], v DOUBLE DEFAULT 0.0)",
    )
    .unwrap();
    let n = c
        .execute(&format!("COPY m FROM '{}' (FORMAT csv)", csv.display()))
        .unwrap()
        .affected()
        .unwrap();
    assert_eq!(n, 16);
    let rs = c.query("SELECT v FROM m WHERE x = 3 AND y = 3").unwrap();
    assert_eq!(rs.scalar().unwrap(), Value::Dbl(15.5));
    // A row-count mismatch is an error naming both cardinalities.
    std::fs::write(&csv, "1.0\n2.0\n").unwrap();
    let err = c
        .execute(&format!("COPY m FROM '{}' (FORMAT csv)", csv.display()))
        .unwrap_err()
        .to_string();
    assert!(
        err.contains("2 rows") && err.contains("16 cells"),
        "error names both cardinalities: {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Build a clustered table (k ascending ⇒ tight per-tile min/max) of
/// `tiles` tiles via binary COPY and return the connection.
fn clustered(cfg: SessionConfig, tiles: usize, dir: &std::path::Path) -> Connection {
    let rows = TILE_ROWS * tiles;
    let file = dir.join(format!("clustered-{}-{}.bin", cfg.threads, cfg.opt_level));
    let ks: Vec<i32> = (0..rows as i32).collect();
    let tags: Vec<Option<&str>> = (0..rows)
        .map(|i| Some(["red", "green", "blue"][i % 3]))
        .collect();
    write_copy_binary(&file, &[Bat::from_ints(ks), Bat::from_strs(tags)]).unwrap();
    let mut c = Connection::with_config(cfg);
    c.execute("CREATE TABLE ev (k INT, tag TEXT)").unwrap();
    c.execute(&format!(
        "COPY ev FROM '{}' (FORMAT binary)",
        file.display()
    ))
    .unwrap();
    c
}

/// Probes whose range/point predicates cluster into few tiles.
const SKIP_PROBES: &[&str] = &[
    "SELECT COUNT(*) FROM ev WHERE k >= 100 AND k < 300",
    "SELECT SUM(k) FROM ev WHERE k > 20000",
    "SELECT tag FROM ev WHERE k = 12345",
    "SELECT COUNT(*) FROM ev WHERE k < 0",
    "SELECT k FROM ev WHERE k >= 24570 ORDER BY k DESC LIMIT 5",
];

#[test]
fn zone_skipping_is_byte_identical_and_actually_skips() {
    let dir = fresh_dir("diff");
    for opt_level in [0u8, 2] {
        for threads in [1usize, 8] {
            let on = SessionConfig {
                threads,
                opt_level,
                zone_skip: true,
                ..SessionConfig::default()
            };
            let off = SessionConfig {
                zone_skip: false,
                ..on
            };
            let mut skipping = clustered(on, 3, &dir);
            let mut full = clustered(off, 3, &dir);
            let mut skipped_total = 0usize;
            for probe in SKIP_PROBES {
                let a = skipping.query(probe).unwrap().render();
                skipped_total += skipping.last_exec().exec.tiles_skipped;
                let b = full.query(probe).unwrap().render();
                assert_eq!(
                    full.last_exec().exec.tiles_skipped,
                    0,
                    "zone_skip=false must never skip"
                );
                assert_eq!(a, b, "probe {probe} diverged (opt {opt_level}, {threads}t)");
            }
            assert!(
                skipped_total > 0,
                "clustered workload skipped no tiles (opt {opt_level}, {threads}t)"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Kill a checkpoint mid-write (after two tile files, before the
/// manifest flips) and verify recovery lands on the *previous* durable
/// state plus the WAL — identical, probe for probe, to an uninterrupted
/// twin. Then verify GC removes the aborted checkpoint's orphans.
#[test]
fn crash_mid_checkpoint_recovers_tile_granular_state() {
    let interrupted_dir = fresh_dir("midckpt-a");
    let twin_dir = fresh_dir("midckpt-b");
    let setup = "CREATE TABLE t (a INT, s TEXT); \
                 CREATE ARRAY m (x INT DIMENSION[0:1:4], v INT DEFAULT 0);";
    let mutate = [
        "INSERT INTO t VALUES (1, 'one'), (2, 'two'), (3, 'three')",
        "UPDATE m SET v = x * 3 WHERE x > 1",
        "INSERT INTO m VALUES (0, 42)",
    ];
    let probes = [
        "SELECT a, s FROM t",
        "SELECT x, v FROM m",
        "SELECT SUM(v) FROM m",
    ];
    {
        let mut interrupted = Connection::open(&interrupted_dir).unwrap();
        let mut twin = Connection::open(&twin_dir).unwrap();
        for c in [&mut interrupted, &mut twin] {
            c.execute_script(setup).unwrap();
            c.checkpoint().unwrap();
            for sql in &mutate {
                c.execute(sql).unwrap();
            }
        }
        // Only the interrupted store attempts (and fails) a checkpoint.
        interrupted.set_checkpoint_fault(2);
        assert!(interrupted.checkpoint().is_err(), "injected fault fires");
    } // both crash
    let mut interrupted = Connection::open(&interrupted_dir).unwrap();
    let mut twin = Connection::open(&twin_dir).unwrap();
    for probe in &probes {
        assert_eq!(
            interrupted.query(probe).unwrap().render(),
            twin.query(probe).unwrap().render(),
            "probe {probe} diverged after mid-checkpoint crash"
        );
    }
    // The aborted checkpoint's tile files are orphans until a successful
    // checkpoint garbage-collects them.
    let col_files = |d: &std::path::Path| {
        std::fs::read_dir(d.join("cols"))
            .map(|rd| rd.flatten().count())
            .unwrap_or(0)
    };
    let before = col_files(&interrupted_dir.join("")); // vault root == dir
    interrupted.checkpoint().unwrap();
    let after = col_files(&interrupted_dir.join(""));
    assert!(
        after <= before + 4,
        "orphans were collected ({before} files before, {after} after)"
    );
    // Still fully durable after the recovery + fresh checkpoint.
    drop(interrupted);
    let mut again = Connection::open(&interrupted_dir).unwrap();
    assert_eq!(
        again.query("SELECT SUM(v) FROM m").unwrap().render(),
        twin.query("SELECT SUM(v) FROM m").unwrap().render()
    );
    std::fs::remove_dir_all(&interrupted_dir).ok();
    std::fs::remove_dir_all(&twin_dir).ok();
}

/// `ExecStats::tiles_skipped` surfaces through `LastExec` on the
/// clustered workload (the acceptance criterion's observable).
#[test]
fn tiles_skipped_stat_is_reported() {
    let dir = fresh_dir("stat");
    let mut c = clustered(SessionConfig::default(), 3, &dir);
    c.query("SELECT tag FROM ev WHERE k = 12345").unwrap();
    let skipped = c.last_exec().exec.tiles_skipped;
    assert!(
        skipped >= 2,
        "expected ≥2 of 3 tiles skipped, got {skipped}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
