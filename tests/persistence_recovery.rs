//! Crash-recovery property test for the `sciql-store` vault.
//!
//! A random trace of mutating statements (with checkpoints sprinkled at
//! random positions) is executed twice: on a durable connection backed by
//! a vault directory and on a plain in-memory connection. The durable
//! connection is then dropped mid-trace **without** a final checkpoint —
//! the simulated crash — and a torn partial record is appended to the WAL
//! to model a statement that died mid-write without being acknowledged.
//! Reopening the vault must replay the checkpoint + WAL tail to a state
//! that answers every probe query identically to the uninterrupted
//! in-memory run.

use proptest::prelude::*;
use sciql::Connection;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// One step of a statement trace over the fixed schema below.
#[derive(Debug, Clone)]
enum Op {
    /// Overwrite one cell of the 4×4 array.
    InsertCell { x: i64, y: i64, v: i32 },
    /// Guarded bulk update of the array attribute.
    UpdateArray { delta: i32, threshold: i64 },
    /// Punch NULL holes into the array.
    DeleteArray { threshold: i32 },
    /// Append one row to the table.
    InsertRow { a: i32, s: u8 },
    /// Update table rows below a pivot.
    UpdateTable { pivot: i32, to: i32 },
    /// Remove table rows below a pivot.
    DeleteTable { pivot: i32 },
    /// Write a vault checkpoint (no-op on the in-memory twin).
    Checkpoint,
}

impl Op {
    /// The statement text, or `None` for the checkpoint pseudo-op.
    fn sql(&self) -> Option<String> {
        match self {
            Op::InsertCell { x, y, v } => Some(format!("INSERT INTO m VALUES ({x}, {y}, {v})")),
            Op::UpdateArray { delta, threshold } => Some(format!(
                "UPDATE m SET v = v + {delta} WHERE x + y > {threshold}"
            )),
            Op::DeleteArray { threshold } => Some(format!("DELETE FROM m WHERE v > {threshold}")),
            Op::InsertRow { a, s } => Some(format!("INSERT INTO t VALUES ({a}, 'w{s}')")),
            Op::UpdateTable { pivot, to } => {
                Some(format!("UPDATE t SET a = {to} WHERE a < {pivot}"))
            }
            Op::DeleteTable { pivot } => Some(format!("DELETE FROM t WHERE a < {pivot}")),
            Op::Checkpoint => None,
        }
    }
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0i64..4, 0i64..4, -50i32..50).prop_map(|(x, y, v)| Op::InsertCell { x, y, v }),
        (-5i32..5, 0i64..6).prop_map(|(delta, threshold)| Op::UpdateArray { delta, threshold }),
        (-20i32..40).prop_map(|threshold| Op::DeleteArray { threshold }),
        (-50i32..50, 0u8..4).prop_map(|(a, s)| Op::InsertRow { a, s }),
        (-20i32..20, -50i32..50).prop_map(|(pivot, to)| Op::UpdateTable { pivot, to }),
        (-20i32..20).prop_map(|pivot| Op::DeleteTable { pivot }),
        Just(Op::Checkpoint),
    ]
}

const SETUP: &str = "CREATE ARRAY m (x INT DIMENSION[0:1:4], y INT DIMENSION[0:1:4], \
                    v INT DEFAULT 0); \
                    CREATE TABLE t (a INT, s TEXT);";

/// Probes covering both objects: full scans, filters, aggregates and
/// string columns.
const PROBES: &[&str] = &[
    "SELECT x, y, v FROM m",
    "SELECT SUM(v) FROM m",
    "SELECT COUNT(v) FROM m",
    "SELECT v FROM m WHERE v IS NOT NULL ORDER BY v",
    "SELECT a, s FROM t",
    "SELECT COUNT(*) FROM t",
    "SELECT SUM(a) FROM t",
];

fn fresh_dir() -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "sciql-recovery-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&d).ok();
    d
}

/// Append a torn frame to the generation's WAL: a header promising more
/// payload than follows, as a crash mid-`write` would leave behind.
fn tear_wal_tail(dir: &PathBuf) {
    let wal = std::fs::read_dir(dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .find(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".log"))
        })
        .expect("vault has an active WAL");
    let mut f = std::fs::OpenOptions::new().append(true).open(wal).unwrap();
    f.write_all(&500u32.to_le_bytes()).unwrap();
    f.write_all(&0x1234_5678u32.to_le_bytes()).unwrap();
    f.write_all(b"UPDATE m SET v = torn off mid-wr").unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Checkpoint + WAL-tail recovery reproduces the uninterrupted run
    /// query-for-query, even with a torn final WAL record.
    #[test]
    fn crash_recovery_matches_uninterrupted_run(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        let dir = fresh_dir();
        let mut mem = Connection::new();
        mem.execute_script(SETUP).unwrap();
        {
            let mut durable = Connection::open(&dir).unwrap();
            durable.execute_script(SETUP).unwrap();
            for op in &ops {
                match op.sql() {
                    Some(sql) => {
                        let a = durable.execute(&sql).unwrap().affected().unwrap();
                        let b = mem.execute(&sql).unwrap().affected().unwrap();
                        prop_assert_eq!(a, b, "affected counts diverged on {}", sql);
                    }
                    None => durable.checkpoint().unwrap(),
                }
            }
        } // crash: dropped with the WAL tail unflushed past its sync points
        tear_wal_tail(&dir);
        let mut reopened = Connection::open(&dir).unwrap();
        for probe in PROBES {
            let want = mem.query(probe).unwrap().render();
            let got = reopened.query(probe).unwrap().render();
            prop_assert_eq!(got, want, "probe {} diverged after recovery", probe);
        }
        // The reopened store keeps working durably: one more statement,
        // one more crash-free reopen.
        reopened.execute("INSERT INTO t VALUES (777, 'post')").unwrap();
        drop(reopened);
        let mut again = Connection::open(&dir).unwrap();
        let rs = again.query("SELECT COUNT(*) FROM t WHERE a = 777").unwrap();
        prop_assert_eq!(rs.scalar().unwrap(), gdk::Value::Lng(1));
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// The vault's single-writer `LOCK` file is released by a clean
/// `Connection` drop — a second open must not have to wait for stale-pid
/// breaking (which only rescues locks left by *dead* processes; within a
/// live process a leaked lock would deadlock every reopen).
#[test]
fn clean_drop_releases_vault_lock() {
    let dir = fresh_dir();
    let lock = dir.join("LOCK");
    {
        let mut conn = Connection::open(&dir).unwrap();
        conn.execute("CREATE TABLE held (a INT)").unwrap();
        assert!(lock.exists(), "LOCK held while the connection lives");
        // While held, a same-process reopen is refused (the pid is alive,
        // so stale-lock breaking must NOT kick in).
        match Connection::open(&dir) {
            Err(e) => assert!(
                e.to_string().contains("already open"),
                "expected a lock error, got: {e}"
            ),
            Ok(_) => panic!("second open succeeded while locked"),
        }
        assert!(lock.exists(), "failed open must not break a live lock");
    }
    assert!(!lock.exists(), "clean drop must remove LOCK");
    // And the release is real: an immediate reopen works.
    let mut again = Connection::open(&dir).unwrap();
    again.execute("INSERT INTO held VALUES (1)").unwrap();
    drop(again);
    assert!(!lock.exists(), "second clean drop releases LOCK too");
    std::fs::remove_dir_all(&dir).ok();
}

/// A shared engine behaves the same: dropping the last `Arc` releases
/// the lock (the `sciql-net` server relies on this between restarts).
#[test]
fn shared_engine_drop_releases_vault_lock() {
    let dir = fresh_dir();
    let lock = dir.join("LOCK");
    {
        let engine = sciql::SharedEngine::open(&dir).unwrap();
        engine
            .session()
            .execute("CREATE TABLE held (a INT)")
            .unwrap();
        assert!(lock.exists());
    }
    assert!(!lock.exists(), "engine drop must remove LOCK");
    std::fs::remove_dir_all(&dir).ok();
}
