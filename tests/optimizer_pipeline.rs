//! Differential tests for the MAL optimizer pipeline v2: for a spread of
//! Fig-2 query shapes, the result *pages* (the exact bytes the net
//! protocol would put on the wire) must be identical between
//! `opt_level = 0` (naive generated plan) and every higher level, across
//! worker-thread counts {1, 2, 8} — for value-based and
//! structural-tiling GROUP BY alike.

use sciql::{Connection, SessionConfig};

const QUERIES: &[&str] = &[
    // select+project (thetaselect → selectproject fusion)
    "SELECT v FROM m WHERE x > 5",
    "SELECT v FROM m WHERE x > 2 AND y <= 11",
    // select+aggregate (→ selectagg fusion), every aggregate
    "SELECT SUM(v) FROM m WHERE x > 5",
    "SELECT COUNT(v) FROM m WHERE y < 9",
    "SELECT MIN(v), MAX(v) FROM m WHERE x <= 10",
    "SELECT AVG(v) FROM m WHERE y >= 3",
    // complex predicate (maskselect path, no theta chain)
    "SELECT v FROM m WHERE x + y > 12",
    // expression projection over a filter
    "SELECT v * 2 + x FROM m WHERE v > 10",
    // value-based GROUP BY (grouped aggregates stay unfused)
    "SELECT x, SUM(v), COUNT(*) FROM m GROUP BY x",
    "SELECT v, COUNT(*) FROM m GROUP BY v",
    // structural-tiling GROUP BY
    "SELECT [x], [y], AVG(v) FROM m GROUP BY m[x:x+2][y:y+2]",
    "SELECT [x], [y], SUM(v) FROM m GROUP BY m[x-1:x+1][y-1:y+1]",
    // ordering, limits, distinct
    "SELECT v FROM m ORDER BY v DESC LIMIT 7",
    "SELECT DISTINCT v FROM m",
    // scalar aggregate without a filter (candidate-free)
    "SELECT SUM(v), AVG(v) FROM m",
];

fn session(opt_level: u8, threads: usize) -> Connection {
    let mut c = Connection::with_config(SessionConfig {
        threads,
        // Force the slice drivers on even for this small array.
        parallel_threshold: 1,
        opt_level,
        zone_skip: true,
        slow_query_ns: 0,
    });
    c.execute("CREATE ARRAY m (x INT DIMENSION[0:1:16], y INT DIMENSION[0:1:16], v INT DEFAULT 0)")
        .unwrap();
    c.execute("UPDATE m SET v = CASE WHEN x > y THEN x * y WHEN x < y THEN x - 2 * y ELSE x END")
        .unwrap();
    // Punch holes so the nil paths are exercised everywhere.
    c.execute("DELETE FROM m WHERE (x + 2 * y) % 7 = 0")
        .unwrap();
    c
}

/// The exact wire bytes of a result: header plus every page.
fn page_bytes(conn: &mut Connection, sql: &str) -> Vec<u8> {
    let rs = conn.query(sql).unwrap();
    let mut bytes = rs.encode_header();
    for page in rs.encode_pages(7) {
        bytes.extend_from_slice(&page);
    }
    bytes
}

#[test]
fn all_levels_and_thread_counts_are_bit_identical() {
    let mut reference = session(0, 1);
    for sql in QUERIES {
        let expect = page_bytes(&mut reference, sql);
        for level in [0u8, 1, 2] {
            for threads in [1usize, 2, 8] {
                let mut conn = session(level, threads);
                let got = page_bytes(&mut conn, sql);
                assert_eq!(
                    got, expect,
                    "result pages diverged for {sql:?} at opt_level={level} threads={threads}"
                );
            }
        }
    }
}

#[test]
fn pass_stats_surface_through_last_exec() {
    let mut c2 = session(2, 1);
    c2.query("SELECT SUM(v) FROM m WHERE x > 5").unwrap();
    let le = c2.last_exec();
    assert!(le.opt.fusions() >= 2, "candprop + selectagg: {:?}", le.opt);
    assert_eq!(le.opt.instrs_before, le.instrs_before_opt);
    assert!(le.instrs_after_opt < le.instrs_before_opt);
    assert!(le.exec.intermediates_avoided >= 2, "{:?}", le.exec);
    assert!(le.exec.bytes_not_materialized > 0, "{:?}", le.exec);

    let mut c1 = session(1, 1);
    c1.query("SELECT SUM(v) FROM m WHERE x > 5").unwrap();
    let le1 = c1.last_exec();
    assert_eq!(le1.opt.fusions(), 0, "level 1 has no fusion passes");
    assert!(le1.opt.total_removed() > 0, "level 1 still shrinks");
    assert_eq!(le1.exec.intermediates_avoided, 0);

    let mut c0 = session(0, 1);
    c0.query("SELECT SUM(v) FROM m WHERE x > 5").unwrap();
    let le0 = c0.last_exec();
    assert_eq!(le0.opt.total_removed() + le0.opt.fusions(), 0);
    assert_eq!(le0.instrs_before_opt, le0.instrs_after_opt);
}

#[test]
fn explain_shows_fused_kernels_only_at_level_two() {
    let c2 = session(2, 1);
    let text = c2.explain("SELECT SUM(v) FROM m WHERE x > 5").unwrap();
    let optimised = text.split("-- MAL (optimised)").nth(1).unwrap();
    assert!(optimised.contains("aggr.selectagg"), "{optimised}");
    assert!(!optimised.contains("thetaselect"), "{optimised}");

    let ctext = c2.explain("SELECT v FROM m WHERE x > 5").unwrap();
    let coptimised = ctext.split("-- MAL (optimised)").nth(1).unwrap();
    assert!(coptimised.contains("algebra.selectproject"), "{coptimised}");

    let c1 = session(1, 1);
    let text1 = c1.explain("SELECT SUM(v) FROM m WHERE x > 5").unwrap();
    let optimised1 = text1.split("-- MAL (optimised)").nth(1).unwrap();
    assert!(!optimised1.contains("selectagg"), "{optimised1}");
    assert!(optimised1.contains("thetaselect"), "{optimised1}");
}

#[test]
fn session_config_opt_level_roundtrips() {
    let mut c = Connection::new();
    assert_eq!(c.session_config().opt_level, 2, "full pipeline by default");
    c.set_session_config(SessionConfig::with_opt_level(0));
    assert_eq!(c.session_config().opt_level, 0);
    c.set_session_config(SessionConfig::with_opt_level(1));
    assert_eq!(c.session_config().opt_level, 1);
}

#[test]
fn per_pass_ablation_survives_unrelated_reconfiguration() {
    use mal::OptConfig;
    let mut c = session(2, 1);
    // Ablate one pass, then change only the thread count: the custom
    // pass set must survive (opt_level did not change).
    c.set_optimizer(OptConfig {
        fuse_select_aggregate: false,
        ..OptConfig::full()
    });
    let mut cfg = c.session_config();
    cfg.threads = 2;
    c.set_session_config(cfg);
    c.query("SELECT SUM(v) FROM m WHERE x > 5").unwrap();
    let le = c.last_exec();
    assert_eq!(le.opt.select_aggregate_fused, 0, "ablation survived");
    assert!(le.opt.candprop > 0, "other passes still ran");
    // Changing the level does rebuild the pass set.
    c.set_session_config(SessionConfig::with_opt_level(0));
    c.query("SELECT SUM(v) FROM m WHERE x > 5").unwrap();
    assert_eq!(c.last_exec().opt.fusions(), 0);
}
