//! Observability acceptance suite.
//!
//! Pins the four load-bearing guarantees of the tracing/metrics
//! subsystem:
//!
//! * `StatsReply` round-trips **every** `ExecReport` field bit-exactly
//!   (distinct sentinel values catch field swaps; length checks catch
//!   half-wired fields).
//! * Tracing is invisible in results: the same query yields
//!   byte-identical wire pages with tracing off and on, across
//!   optimizer levels and thread counts.
//! * `EXPLAIN ANALYZE` produces the same span-tree *shape* (names +
//!   nesting) whether the statement runs embedded or over `tcp://`;
//!   only the measured values may differ.
//! * `Conn::metrics()` over the wire reports WAL fsync counts and
//!   latency plus the plan-cache hit ratio after a scripted workload.

use sciql::{write_copy_binary, Connection, SessionConfig, SharedEngine};
use sciql_repro::driver::{Conn, Rows, Sciql};
use sciql_repro::gdk::Bat;
use sciql_repro::net::proto;
use sciql_repro::net::Server;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const TILE_ROWS: usize = 8192;

fn fresh_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "sciql-obs-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&d).ok();
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// The full wire encoding of a result (page size 3 forces paging).
fn wire_bytes(rows: &Rows) -> Vec<u8> {
    let rs = rows.result_set();
    let mut bytes = rs.encode_header();
    for page in rs.encode_pages(3) {
        bytes.extend_from_slice(&page);
    }
    bytes
}

/// Every `ExecReport` field survives the `StatsReply` codec, and the
/// runtime guards complement the compile-time exhaustive-destructure
/// guard in `proto::stats_reply`: the payload length is exactly the
/// field count, and both trailing garbage and truncation are loud
/// protocol errors rather than silently dropped or zeroed fields.
#[test]
fn stats_reply_roundtrips_every_field() {
    // Distinct sentinel per field: any swap or misordering in either
    // codec direction breaks the equality below.
    let report = proto::ExecReport {
        instructions: 101,
        par_instructions: 102,
        max_threads: 103,
        instrs_before_opt: 104,
        instrs_after_opt: 105,
        eliminated: 106,
        fused: 107,
        intermediates_avoided: 108,
        bytes_not_materialized: 109,
        plan_cache_hits: 110,
        tiles_skipped: 111,
        tuples_produced: 112,
    };
    let payload = proto::stats_reply(&report);
    assert_eq!(payload[0], proto::Op::StatsReply as u8);
    // 12 u64 fields: if this assertion fires you added an ExecReport
    // field — update it *and* the sentinel struct above.
    assert_eq!(payload.len(), 1 + 12 * 8, "StatsReply field-count drift");

    let back = proto::read_stats_reply(&payload[1..]).unwrap();
    assert_eq!(back, report);

    let mut long = payload[1..].to_vec();
    long.push(0);
    assert!(
        proto::read_stats_reply(&long).is_err(),
        "trailing bytes must be rejected"
    );
    assert!(
        proto::read_stats_reply(&payload[1..payload.len() - 1]).is_err(),
        "truncated payload must be rejected"
    );
}

/// Tracing must never change what a query returns: with the tracer on,
/// result pages stay byte-identical to the untraced run, at every
/// optimizer level × thread count. (The ≤5% wall-clock bound for the
/// *off* direction is enforced by bench-guard's `EXPECT_CLOSE` gate.)
#[test]
fn tracing_leaves_results_byte_identical() {
    const QUERIES: &[&str] = &[
        "SELECT SUM(v) FROM m WHERE x > 3",
        "SELECT [x], [y], v FROM m WHERE v >= 2 AND v < 9",
        "SELECT COUNT(*), MAX(v) FROM m",
    ];
    for opt_level in [0u8, 2] {
        for threads in [1usize, 8] {
            let cfg = SessionConfig {
                threads,
                opt_level,
                ..SessionConfig::default()
            };
            let mut conn = Sciql::connect_with_config("mem:", cfg).unwrap();
            conn.execute(
                "CREATE ARRAY m (x INT DIMENSION[0:1:8], \
                 y INT DIMENSION[0:1:8], v INT DEFAULT 0)",
            )
            .unwrap();
            conn.execute("UPDATE m SET v = x * y - x").unwrap();
            for sql in QUERIES {
                conn.set_tracing(false).unwrap();
                let plain = wire_bytes(&conn.query(sql).unwrap());
                assert_eq!(conn.last_trace_text().unwrap(), None, "{sql}");

                conn.set_tracing(true).unwrap();
                let traced = wire_bytes(&conn.query(sql).unwrap());
                let trace = conn.last_trace_text().unwrap();

                assert_eq!(plain, traced, "opt={opt_level} threads={threads} sql={sql}");
                let text = trace.expect("tracing on records a trace");
                assert!(text.starts_with("trace: "), "{text}");
            }
        }
    }
}

/// Span-tree *shape*: the indented span name column with the measured
/// values stripped. Durations and annotation values vary run to run;
/// the names, nesting and annotation keys must not.
fn shape(lines: &[String]) -> Vec<String> {
    lines
        .iter()
        .map(|line| {
            // Render format: `{name:<40} {dur:>12}  k=v ...` — the
            // first 40 columns are the indented name.
            let name = if line.len() > 40 {
                line[..40].trim_end().to_owned()
            } else {
                line.trim_end().to_owned()
            };
            let keys: Vec<&str> = line
                .get(40..)
                .unwrap_or("")
                .split_whitespace()
                .filter_map(|tok| tok.split_once('=').map(|(k, _)| k))
                .collect();
            if keys.is_empty() {
                name
            } else {
                format!("{name} [{}]", keys.join(","))
            }
        })
        .collect()
}

fn text_rows(mut rows: Rows) -> Vec<String> {
    let mut out = Vec::new();
    while let Some(row) = rows.next_row() {
        out.push(row.get::<String>(0).unwrap());
    }
    out
}

/// Seed 4 tiles of ascending keys via binary COPY, so `k > 24576`
/// (the last tile boundary) is zone-skippable.
fn seed_tiled(conn: &mut Conn, dir: &std::path::Path, tag: &str) {
    let rows = TILE_ROWS * 4;
    let file = dir.join(format!("tiled-{tag}.bin"));
    let ks: Vec<i32> = (0..rows as i32).collect();
    let vs: Vec<f64> = (0..rows).map(|i| i as f64 * 0.5).collect();
    write_copy_binary(&file, &[Bat::from_ints(ks), Bat::from_dbls(vs)]).unwrap();
    conn.execute("CREATE TABLE ev (k INT, v DOUBLE)").unwrap();
    conn.execute(&format!(
        "COPY ev FROM '{}' (FORMAT binary)",
        file.display()
    ))
    .unwrap();
}

/// The acceptance criterion: EXPLAIN ANALYZE on a COPY-ingested,
/// zone-skippable query shows per-MAL-instruction wall times, thread
/// counts and tiles skipped — and the span structure is identical
/// embedded vs over `tcp://` (values may differ, shape may not).
#[test]
fn explain_analyze_shape_identical_across_transports() {
    let dir = fresh_dir("explain");
    let cfg = SessionConfig {
        threads: 4,
        opt_level: 2,
        ..SessionConfig::default()
    };
    const SQL: &str = "EXPLAIN ANALYZE SELECT SUM(v) FROM ev WHERE k > 24576";

    let mut local = Sciql::connect_with_config("mem:", cfg).unwrap();
    seed_tiled(&mut local, &dir, "local");

    let engine = SharedEngine::new(Connection::with_config(cfg));
    let handle = Server::bind(engine, "127.0.0.1:0")
        .unwrap()
        .serve()
        .unwrap();
    let mut remote = Sciql::connect(&format!("tcp://{}", handle.addr())).unwrap();
    seed_tiled(&mut remote, &dir, "remote");

    let local_lines = text_rows(local.query(SQL).unwrap());
    let remote_lines = text_rows(remote.query(SQL).unwrap());

    // Per-MAL-instruction spans with thread counts and zone-map skips
    // are present (tiles 0..=2 hold k ≤ 24575, so 3 of 4 are skipped).
    let text = local_lines.join("\n");
    assert!(text.starts_with("trace: "), "{text}");
    // (No `parse` span: EXPLAIN ANALYZE hands the already-parsed inner
    // SELECT to the traced pipeline.)
    for phase in ["bind", "optimize", "codegen", "mal", "result"] {
        assert!(text.contains(phase), "missing phase {phase}:\n{text}");
    }
    assert!(
        local_lines
            .iter()
            .any(|l| l.contains("[0") && l.contains('.')),
        "per-instruction spans missing:\n{text}"
    );
    assert!(text.contains("threads="), "thread counts missing:\n{text}");
    assert!(
        text.contains("tiles_skipped=3"),
        "zone-map skips missing:\n{text}"
    );

    // Identical shape across transports.
    assert_eq!(
        shape(&local_lines),
        shape(&remote_lines),
        "span structure diverged:\nlocal:\n{}\nremote:\n{}",
        local_lines.join("\n"),
        remote_lines.join("\n"),
    );

    remote.shutdown_server().unwrap();
    handle.wait();
}

/// The other acceptance criterion: after a scripted workload against a
/// durable server, `Conn::metrics()` over the wire reports the fsync
/// count and latency histogram and the plan-cache hit ratio.
#[test]
fn metrics_over_the_wire_report_fsyncs_and_plan_cache() {
    let dir = fresh_dir("metrics");
    let engine = SharedEngine::new(Connection::open(dir.join("vault")).unwrap());
    let handle = Server::bind(engine, "127.0.0.1:0")
        .unwrap()
        .serve()
        .unwrap();
    let mut conn = Sciql::connect(&format!("tcp://{}", handle.addr())).unwrap();

    // Scripted workload: durable DML (WAL appends + fsyncs) and a
    // prepared statement executed twice (plan-cache miss then hit).
    conn.execute("CREATE TABLE kv (a INT, s VARCHAR)").unwrap();
    for i in 0..4 {
        conn.execute(&format!("INSERT INTO kv VALUES ({i}, 'row-{i}')"))
            .unwrap();
    }
    let stmt = conn.prepare("SELECT s FROM kv WHERE a >= ?").unwrap();
    for bound in [0i32, 2] {
        let rows = conn
            .query_bound(&stmt, &[sciql_repro::gdk::Value::Int(bound)])
            .unwrap();
        assert!(rows.row_count() > 0);
    }

    let snap = conn.metrics().unwrap();
    let fsyncs = snap.counter("wal_fsyncs").unwrap();
    assert!(fsyncs > 0, "durable workload must fsync");
    assert!(snap.counter("wal_appends").unwrap() > 0);
    let h = snap.histogram("wal_fsync_ns").unwrap();
    assert!(h.count > 0, "fsync latency histogram is empty");
    assert!(h.sum_ns > 0, "fsyncs take nonzero time");
    assert_eq!(
        h.counts.iter().sum::<u64>(),
        h.count,
        "bucket counts must sum to the total"
    );

    let ratio = snap
        .plan_cache_hit_ratio()
        .expect("plan cache was exercised");
    assert!(ratio > 0.0 && ratio <= 1.0, "hit ratio {ratio}");
    assert!(snap.counter("plan_cache_hits").unwrap() >= 1);

    // The server side of this very connection shows up too.
    assert!(snap.counter("sessions_opened").unwrap() >= 1);
    assert!(snap.counter("bytes_in").unwrap() > 0);
    assert!(snap.counter("bytes_out").unwrap() > 0);
    assert!(snap.gauge("sessions_open").unwrap() >= 1);

    // And the snapshot renders in both human and Prometheus form.
    assert!(snap.render_table().contains("wal_fsyncs"));
    let prom = snap.to_prometheus_text();
    assert!(prom.contains("# TYPE sciql_wal_fsyncs_total counter"));
    assert!(prom.contains("sciql_wal_fsync_seconds_bucket{le=\"+Inf\"}"));

    conn.shutdown_server().unwrap();
    handle.wait();
}
