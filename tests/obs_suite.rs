//! Observability acceptance suite.
//!
//! Pins the four load-bearing guarantees of the tracing/metrics
//! subsystem:
//!
//! * `StatsReply` round-trips **every** `ExecReport` field bit-exactly
//!   (distinct sentinel values catch field swaps; length checks catch
//!   half-wired fields).
//! * Tracing is invisible in results: the same query yields
//!   byte-identical wire pages with tracing off and on, across
//!   optimizer levels and thread counts.
//! * `EXPLAIN ANALYZE` produces the same span-tree *shape* (names +
//!   nesting) whether the statement runs embedded or over `tcp://`;
//!   only the measured values may differ.
//! * `Conn::metrics()` over the wire reports WAL fsync counts and
//!   latency plus the plan-cache hit ratio after a scripted workload.

use sciql::{write_copy_binary, Connection, SessionConfig, SharedEngine};
use sciql_repro::driver::{Conn, Rows, Sciql};
use sciql_repro::gdk::Bat;
use sciql_repro::net::proto;
use sciql_repro::net::Server;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const TILE_ROWS: usize = 8192;

fn fresh_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "sciql-obs-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&d).ok();
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// The full wire encoding of a result (page size 3 forces paging).
fn wire_bytes(rows: &Rows) -> Vec<u8> {
    let rs = rows.result_set();
    let mut bytes = rs.encode_header();
    for page in rs.encode_pages(3) {
        bytes.extend_from_slice(&page);
    }
    bytes
}

/// Every `ExecReport` field survives the `StatsReply` codec, and the
/// runtime guards complement the compile-time exhaustive-destructure
/// guard in `proto::stats_reply`: the payload length is exactly the
/// field count, and both trailing garbage and truncation are loud
/// protocol errors rather than silently dropped or zeroed fields.
#[test]
fn stats_reply_roundtrips_every_field() {
    // Distinct sentinel per field: any swap or misordering in either
    // codec direction breaks the equality below.
    let report = proto::ExecReport {
        instructions: 101,
        par_instructions: 102,
        max_threads: 103,
        instrs_before_opt: 104,
        instrs_after_opt: 105,
        eliminated: 106,
        fused: 107,
        intermediates_avoided: 108,
        bytes_not_materialized: 109,
        plan_cache_hits: 110,
        tiles_skipped: 111,
        tuples_produced: 112,
    };
    let payload = proto::stats_reply(&report);
    assert_eq!(payload[0], proto::Op::StatsReply as u8);
    // 12 u64 fields: if this assertion fires you added an ExecReport
    // field — update it *and* the sentinel struct above.
    assert_eq!(payload.len(), 1 + 12 * 8, "StatsReply field-count drift");

    let back = proto::read_stats_reply(&payload[1..]).unwrap();
    assert_eq!(back, report);

    let mut long = payload[1..].to_vec();
    long.push(0);
    assert!(
        proto::read_stats_reply(&long).is_err(),
        "trailing bytes must be rejected"
    );
    assert!(
        proto::read_stats_reply(&payload[1..payload.len() - 1]).is_err(),
        "truncated payload must be rejected"
    );
}

/// Tracing must never change what a query returns: with the tracer on,
/// result pages stay byte-identical to the untraced run, at every
/// optimizer level × thread count. (The ≤5% wall-clock bound for the
/// *off* direction is enforced by bench-guard's `EXPECT_CLOSE` gate.)
#[test]
fn tracing_leaves_results_byte_identical() {
    const QUERIES: &[&str] = &[
        "SELECT SUM(v) FROM m WHERE x > 3",
        "SELECT [x], [y], v FROM m WHERE v >= 2 AND v < 9",
        "SELECT COUNT(*), MAX(v) FROM m",
    ];
    for opt_level in [0u8, 2] {
        for threads in [1usize, 8] {
            let cfg = SessionConfig {
                threads,
                opt_level,
                ..SessionConfig::default()
            };
            let mut conn = Sciql::connect_with_config("mem:", cfg).unwrap();
            conn.execute(
                "CREATE ARRAY m (x INT DIMENSION[0:1:8], \
                 y INT DIMENSION[0:1:8], v INT DEFAULT 0)",
            )
            .unwrap();
            conn.execute("UPDATE m SET v = x * y - x").unwrap();
            for sql in QUERIES {
                conn.set_tracing(false).unwrap();
                let plain = wire_bytes(&conn.query(sql).unwrap());
                assert_eq!(conn.last_trace_text().unwrap(), None, "{sql}");

                conn.set_tracing(true).unwrap();
                let traced = wire_bytes(&conn.query(sql).unwrap());
                let trace = conn.last_trace_text().unwrap();

                assert_eq!(plain, traced, "opt={opt_level} threads={threads} sql={sql}");
                let text = trace.expect("tracing on records a trace");
                assert!(text.starts_with("trace: "), "{text}");
            }
        }
    }
}

/// Span-tree *shape*: the indented span name column with the measured
/// values stripped. Durations and annotation values vary run to run;
/// the names, nesting and annotation keys must not.
fn shape(lines: &[String]) -> Vec<String> {
    lines
        .iter()
        .map(|line| {
            // Render format: `{name:<40} {dur:>12}  k=v ...` — the
            // first 40 columns are the indented name.
            let name = if line.len() > 40 {
                line[..40].trim_end().to_owned()
            } else {
                line.trim_end().to_owned()
            };
            let keys: Vec<&str> = line
                .get(40..)
                .unwrap_or("")
                .split_whitespace()
                .filter_map(|tok| tok.split_once('=').map(|(k, _)| k))
                .collect();
            if keys.is_empty() {
                name
            } else {
                format!("{name} [{}]", keys.join(","))
            }
        })
        .collect()
}

fn text_rows(mut rows: Rows) -> Vec<String> {
    let mut out = Vec::new();
    while let Some(row) = rows.next_row() {
        out.push(row.get::<String>(0).unwrap());
    }
    out
}

/// Seed 4 tiles of ascending keys via binary COPY, so `k > 24576`
/// (the last tile boundary) is zone-skippable.
fn seed_tiled(conn: &mut Conn, dir: &std::path::Path, tag: &str) {
    let rows = TILE_ROWS * 4;
    let file = dir.join(format!("tiled-{tag}.bin"));
    let ks: Vec<i32> = (0..rows as i32).collect();
    let vs: Vec<f64> = (0..rows).map(|i| i as f64 * 0.5).collect();
    write_copy_binary(&file, &[Bat::from_ints(ks), Bat::from_dbls(vs)]).unwrap();
    conn.execute("CREATE TABLE ev (k INT, v DOUBLE)").unwrap();
    conn.execute(&format!(
        "COPY ev FROM '{}' (FORMAT binary)",
        file.display()
    ))
    .unwrap();
}

/// The acceptance criterion: EXPLAIN ANALYZE on a COPY-ingested,
/// zone-skippable query shows per-MAL-instruction wall times, thread
/// counts and tiles skipped — and the span structure is identical
/// embedded vs over `tcp://` (values may differ, shape may not).
#[test]
fn explain_analyze_shape_identical_across_transports() {
    let dir = fresh_dir("explain");
    let cfg = SessionConfig {
        threads: 4,
        opt_level: 2,
        ..SessionConfig::default()
    };
    const SQL: &str = "EXPLAIN ANALYZE SELECT SUM(v) FROM ev WHERE k > 24576";

    let mut local = Sciql::connect_with_config("mem:", cfg).unwrap();
    seed_tiled(&mut local, &dir, "local");

    let engine = SharedEngine::new(Connection::with_config(cfg));
    let handle = Server::bind(engine, "127.0.0.1:0")
        .unwrap()
        .serve()
        .unwrap();
    let mut remote = Sciql::connect(&format!("tcp://{}", handle.addr())).unwrap();
    seed_tiled(&mut remote, &dir, "remote");

    let local_lines = text_rows(local.query(SQL).unwrap());
    let remote_lines = text_rows(remote.query(SQL).unwrap());

    // Per-MAL-instruction spans with thread counts and zone-map skips
    // are present (tiles 0..=2 hold k ≤ 24575, so 3 of 4 are skipped).
    let text = local_lines.join("\n");
    assert!(text.starts_with("trace: "), "{text}");
    // (No `parse` span: EXPLAIN ANALYZE hands the already-parsed inner
    // SELECT to the traced pipeline.)
    for phase in ["bind", "optimize", "codegen", "mal", "result"] {
        assert!(text.contains(phase), "missing phase {phase}:\n{text}");
    }
    assert!(
        local_lines
            .iter()
            .any(|l| l.contains("[0") && l.contains('.')),
        "per-instruction spans missing:\n{text}"
    );
    assert!(text.contains("threads="), "thread counts missing:\n{text}");
    assert!(
        text.contains("tiles_skipped=3"),
        "zone-map skips missing:\n{text}"
    );

    // Identical shape across transports.
    assert_eq!(
        shape(&local_lines),
        shape(&remote_lines),
        "span structure diverged:\nlocal:\n{}\nremote:\n{}",
        local_lines.join("\n"),
        remote_lines.join("\n"),
    );

    remote.shutdown_server().unwrap();
    handle.wait();
}

/// The other acceptance criterion: after a scripted workload against a
/// durable server, `Conn::metrics()` over the wire reports the fsync
/// count and latency histogram and the plan-cache hit ratio.
#[test]
fn metrics_over_the_wire_report_fsyncs_and_plan_cache() {
    let dir = fresh_dir("metrics");
    let engine = SharedEngine::new(Connection::open(dir.join("vault")).unwrap());
    let handle = Server::bind(engine, "127.0.0.1:0")
        .unwrap()
        .serve()
        .unwrap();
    let mut conn = Sciql::connect(&format!("tcp://{}", handle.addr())).unwrap();

    // Scripted workload: durable DML (WAL appends + fsyncs) and a
    // prepared statement executed twice (plan-cache miss then hit).
    conn.execute("CREATE TABLE kv (a INT, s VARCHAR)").unwrap();
    for i in 0..4 {
        conn.execute(&format!("INSERT INTO kv VALUES ({i}, 'row-{i}')"))
            .unwrap();
    }
    let stmt = conn.prepare("SELECT s FROM kv WHERE a >= ?").unwrap();
    for bound in [0i32, 2] {
        let rows = conn
            .query_bound(&stmt, &[sciql_repro::gdk::Value::Int(bound)])
            .unwrap();
        assert!(rows.row_count() > 0);
    }

    let snap = conn.metrics().unwrap();
    let fsyncs = snap.counter("wal_fsyncs").unwrap();
    assert!(fsyncs > 0, "durable workload must fsync");
    assert!(snap.counter("wal_appends").unwrap() > 0);
    let h = snap.histogram("wal_fsync_ns").unwrap();
    assert!(h.count > 0, "fsync latency histogram is empty");
    assert!(h.sum_ns > 0, "fsyncs take nonzero time");
    assert_eq!(
        h.counts.iter().sum::<u64>(),
        h.count,
        "bucket counts must sum to the total"
    );

    let ratio = snap
        .plan_cache_hit_ratio()
        .expect("plan cache was exercised");
    assert!(ratio > 0.0 && ratio <= 1.0, "hit ratio {ratio}");
    assert!(snap.counter("plan_cache_hits").unwrap() >= 1);

    // The server side of this very connection shows up too.
    assert!(snap.counter("sessions_opened").unwrap() >= 1);
    assert!(snap.counter("bytes_in").unwrap() > 0);
    assert!(snap.counter("bytes_out").unwrap() > 0);
    assert!(snap.gauge("sessions_open").unwrap() >= 1);

    // And the snapshot renders in both human and Prometheus form.
    assert!(snap.render_table().contains("wal_fsyncs"));
    let prom = snap.to_prometheus_text();
    assert!(prom.contains("# TYPE sciql_wal_fsyncs_total counter"));
    assert!(prom.contains("sciql_wal_fsync_seconds_bucket{le=\"+Inf\"}"));

    conn.shutdown_server().unwrap();
    handle.wait();
}

/// The `sys.metrics` view and `Conn::metrics()` are two faces of the
/// same registry: for counters no concurrent test mutates (the wal/
/// checkpoint family is only touched by WAL work we control), the view
/// scanned over tcp:// must report exactly the snapshot's values.
#[test]
fn sys_metrics_view_matches_metrics_snapshot_over_tcp() {
    let engine = SharedEngine::in_memory();
    let handle = Server::bind(engine, "127.0.0.1:0")
        .unwrap()
        .serve()
        .unwrap();
    let mut conn = Sciql::connect(&format!("tcp://{}", handle.addr())).unwrap();

    // Counters that only change when *this* process does WAL work; a
    // stable before/after snapshot proves the interleaved view read saw
    // the same values (counters are monotonic).
    const STABLE: &[&str] = &[
        "wal_appends",
        "wal_fsyncs",
        "checkpoints",
        "tiles_rewritten",
    ];
    let sql = "SELECT name, value FROM sys.metrics ORDER BY name";
    let mut ok = false;
    for _ in 0..50 {
        let before = conn.metrics().unwrap();
        let mut rows = conn.query(sql).unwrap();
        let mut seen = std::collections::HashMap::new();
        while let Some(row) = rows.next_row() {
            seen.insert(row.get::<String>(0).unwrap(), row.get::<i64>(1).unwrap());
        }
        let after = conn.metrics().unwrap();
        if STABLE.iter().any(|n| before.counter(n) != after.counter(n)) {
            continue; // another test's WAL work raced the read — retry
        }
        for n in STABLE {
            assert_eq!(
                seen.get(*n).copied(),
                before.counter(n).map(|v| v as i64),
                "sys.metrics diverges from Conn::metrics() on {n}"
            );
        }
        // The view carries every registered counter and gauge, typed.
        assert!(seen.len() >= 16, "only {} metrics in the view", seen.len());
        assert!(seen.contains_key("sessions_open"));
        ok = true;
        break;
    }
    assert!(ok, "metrics never quiesced across 50 attempts");

    // This very session is visible in sys.sessions, with its TCP peer
    // address and a live statement count.
    let mut rows = conn
        .query("SELECT peer, queries FROM sys.sessions")
        .unwrap();
    let mut found_tcp = false;
    while let Some(row) = rows.next_row() {
        let peer = row.get::<String>(0).unwrap();
        if peer.starts_with("127.0.0.1:") {
            assert!(row.get::<i64>(1).unwrap() >= 1);
            found_tcp = true;
        }
    }
    assert!(found_tcp, "own session missing from sys.sessions");

    conn.shutdown_server().unwrap();
    handle.wait();
}

/// Acceptance criterion: the same system-view query — WHERE LIKE and
/// all — produces byte-identical wire pages embedded and over tcp://.
/// (The registry is process-global, so both transports read the same
/// counters; a stability sandwich rules out racing WAL work.)
#[test]
fn sys_metrics_like_filter_byte_identical_across_transports() {
    const SQL: &str = "SELECT name, value FROM sys.metrics WHERE name LIKE 'wal%' ORDER BY name";
    let mut local = Sciql::connect("mem:").unwrap();
    let engine = SharedEngine::in_memory();
    let handle = Server::bind(engine, "127.0.0.1:0")
        .unwrap()
        .serve()
        .unwrap();
    let mut remote = Sciql::connect(&format!("tcp://{}", handle.addr())).unwrap();

    let mut ok = false;
    for _ in 0..50 {
        let e0 = wire_bytes(&local.query(SQL).unwrap());
        let t = wire_bytes(&remote.query(SQL).unwrap());
        let e1 = wire_bytes(&local.query(SQL).unwrap());
        if e0 != e1 {
            continue; // wal counters moved under us — retry
        }
        assert_eq!(e0, t, "sys.metrics bytes diverge embedded vs tcp");
        ok = true;
        break;
    }
    assert!(ok, "wal counters never quiesced across 50 attempts");

    remote.shutdown_server().unwrap();
    handle.wait();
}

/// An armed slow-query threshold flags offending statements in
/// `sys.query_log` and retains their span trace even with tracing off.
#[test]
fn slow_queries_are_flagged_and_traced_in_query_log() {
    let mut conn = Sciql::connect("mem:").unwrap();
    conn.execute(
        "CREATE ARRAY slowmark (x INT DIMENSION[0:1:32], y INT DIMENSION[0:1:32], \
         v INT DEFAULT 1)",
    )
    .unwrap();

    // 1 ns: every statement qualifies as slow.
    conn.embedded_connection().unwrap().set_slow_query_ns(1);
    conn.query("SELECT SUM(v) FROM slowmark WHERE x > 7")
        .unwrap();

    // The slow statement left its full span trace despite tracing off.
    {
        let emb = conn.embedded_connection().unwrap();
        assert!(!emb.tracing(), "tracing stays off");
        let trace = emb.last_trace().expect("slow statement keeps its trace");
        assert!(trace.render().contains("mal"), "trace lacks exec spans");
    }

    // Disarm, then read the log through SQL: the marked statement is
    // there, flagged slow; the disarmed follow-up read is not flagged.
    conn.embedded_connection().unwrap().set_slow_query_ns(0);
    // The log stores the canonical printed statement, so match on the
    // distinctive table name rather than the raw input text.
    let mut rows = conn
        .query("SELECT text, slow, error FROM sys.query_log ORDER BY id DESC LIMIT 200")
        .unwrap();
    let mut marked_slow = false;
    while let Some(row) = rows.next_row() {
        let text = row.get::<String>(0).unwrap();
        if text.contains("SUM(v)") && text.contains("slowmark") {
            marked_slow |= row.get::<bool>(1).unwrap();
        }
    }
    assert!(
        marked_slow,
        "marked statement not flagged slow in sys.query_log"
    );

    // Failed statements land in the log with their error text.
    assert!(conn.query("SELECT nope FROM slowmark").is_err());
    let mut rows = conn
        .query("SELECT text, error FROM sys.query_log ORDER BY id DESC LIMIT 5")
        .unwrap();
    let mut failed_logged = false;
    while let Some(row) = rows.next_row() {
        if row.get::<String>(0).unwrap().contains("nope") {
            failed_logged = row.get::<String>(1).is_ok();
        }
    }
    assert!(
        failed_logged,
        "failed statement missing error in sys.query_log"
    );
}

/// `sys.tiles` agrees with the store's tile accounting: one row per
/// (column, tile) with zone-map min/max matching the ingested data.
#[test]
fn sys_tiles_agrees_with_store_accounting() {
    let dir = fresh_dir("systiles");
    let mut conn = Sciql::connect(&format!("file:{}", dir.join("vault").display())).unwrap();
    seed_tiled(&mut conn, &dir, "systiles");

    // 2 columns × 4 tiles of TILE_ROWS rows each.
    let n = conn
        .query("SELECT COUNT(*) FROM sys.tiles WHERE object = 'ev'")
        .unwrap()
        .row(0)
        .unwrap()
        .get::<i64>(0)
        .unwrap();
    assert_eq!(n as usize, 2 * 4, "tile rows for ev");

    // Zone-map extrema match the data: k runs 0..4*TILE_ROWS.
    let mut rows = conn
        .query(
            "SELECT tile, rows, min, max FROM sys.tiles \
             WHERE object = 'ev' AND column = 'k' ORDER BY tile",
        )
        .unwrap();
    let mut tile = 0i64;
    while let Some(row) = rows.next_row() {
        assert_eq!(row.get::<i64>(0).unwrap(), tile);
        assert_eq!(row.get::<i64>(1).unwrap() as usize, TILE_ROWS);
        assert_eq!(
            row.get::<f64>(2).unwrap(),
            (tile as usize * TILE_ROWS) as f64
        );
        assert_eq!(
            row.get::<f64>(3).unwrap(),
            ((tile as usize + 1) * TILE_ROWS - 1) as f64
        );
        tile += 1;
    }
    assert_eq!(tile, 4);

    // sys.wal mirrors VaultStats for this connection's vault.
    let stats = conn
        .embedded_connection()
        .unwrap()
        .vault_stats()
        .expect("durable connection has vault stats");
    let mut rows = conn
        .query("SELECT position, generation FROM sys.wal")
        .unwrap();
    let row = rows.next_row().expect("sys.wal has one row when durable");
    assert_eq!(row.get::<i64>(0).unwrap() as u64, stats.wal_bytes);
    assert_eq!(row.get::<i64>(1).unwrap() as u64, stats.generation);
}

/// Acceptance criterion: the HTTP scrape endpoint answers with the live
/// exposition *while* a workload runs on the frame protocol next door.
#[test]
fn metrics_endpoint_serves_during_workload() {
    use std::io::{Read as _, Write as _};

    let engine = SharedEngine::in_memory();
    let handle = Server::bind(std::sync::Arc::clone(&engine), "127.0.0.1:0")
        .unwrap()
        .serve()
        .unwrap();
    let scrape = sciql_repro::net::MetricsEndpoint::bind(engine, "127.0.0.1:0")
        .unwrap()
        .serve()
        .unwrap();

    let addr = format!("tcp://{}", handle.addr());
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
    let worker_stop = std::sync::Arc::clone(&stop);
    let worker = std::thread::spawn(move || {
        let mut conn = Sciql::connect(&addr).unwrap();
        conn.execute("CREATE TABLE w (a INT)").unwrap();
        let mut i = 0;
        while worker_stop.load(Ordering::Relaxed) == 0 {
            conn.execute(&format!("INSERT INTO w VALUES ({i})"))
                .unwrap();
            conn.query("SELECT COUNT(*) FROM w").unwrap();
            i += 1;
        }
        conn.close().unwrap();
    });

    // Scrape mid-workload: live 200s with the Prometheus content type.
    for _ in 0..5 {
        let mut s = std::net::TcpStream::connect(scrape.addr()).unwrap();
        write!(s, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut body = String::new();
        s.read_to_string(&mut body).unwrap();
        assert!(body.starts_with("HTTP/1.1 200 OK\r\n"), "{body}");
        assert!(body.contains("text/plain; version=0.0.4"), "{body}");
        assert!(body.contains("sciql_queries_select_total"), "{body}");
    }
    let mut s = std::net::TcpStream::connect(scrape.addr()).unwrap();
    write!(s, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let mut health = String::new();
    s.read_to_string(&mut health).unwrap();
    assert!(health.starts_with("HTTP/1.1 200 OK\r\n"), "{health}");
    assert!(health.contains("\nstatements: "), "{health}");

    stop.store(1, Ordering::Relaxed);
    worker.join().unwrap();
    scrape.stop();
    handle.stop();
}
