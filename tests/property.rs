//! Property-based tests: SciQL query semantics checked against
//! brute-force reference implementations on randomly generated arrays.

use gdk::Value;
use proptest::prelude::*;
use sciql::Connection;

/// Build a session holding a `w × h` int array with the given cell
/// values (None = hole).
fn array_session(w: usize, h: usize, cells: &[Option<i32>]) -> Connection {
    let mut c = Connection::new();
    c.execute(&format!(
        "CREATE ARRAY a (x INT DIMENSION[0:1:{w}], y INT DIMENSION[0:1:{h}], v INT)"
    ))
    .unwrap();
    for x in 0..w {
        for y in 0..h {
            if let Some(v) = cells[x * h + y] {
                c.execute(&format!("INSERT INTO a VALUES ({x}, {y}, {v})"))
                    .unwrap();
            }
        }
    }
    c
}

/// Brute-force tile aggregation reference: for each anchor, gather values
/// at anchor+offsets that are in range and non-hole.
fn reference_tile_sum(
    w: usize,
    h: usize,
    cells: &[Option<i32>],
    offsets: &[(i64, i64)],
) -> Vec<Option<i64>> {
    let mut out = Vec::with_capacity(w * h);
    for x in 0..w as i64 {
        for y in 0..h as i64 {
            let mut sum = 0i64;
            let mut any = false;
            for &(dx, dy) in offsets {
                let (nx, ny) = (x + dx, y + dy);
                if nx >= 0 && ny >= 0 && (nx as usize) < w && (ny as usize) < h {
                    if let Some(v) = cells[nx as usize * h + ny as usize] {
                        sum += i64::from(v);
                        any = true;
                    }
                }
            }
            out.push(any.then_some(sum));
        }
    }
    out
}

fn small_grid() -> impl Strategy<Value = (usize, usize, Vec<Option<i32>>)> {
    (2usize..6, 2usize..6).prop_flat_map(|(w, h)| {
        proptest::collection::vec(proptest::option::weighted(0.8, -20i32..20), w * h)
            .prop_map(move |cells| (w, h, cells))
    })
}

/// Render a query result as exact wire bytes (header + pages), the
/// representation the optimizer-ablation property compares.
fn result_pages(c: &mut Connection, sql: &str) -> Result<Vec<u8>, String> {
    let rs = c.query(sql).map_err(|e| e.to_string())?;
    let mut bytes = rs.encode_header();
    for page in rs.encode_pages(5) {
        bytes.extend_from_slice(&page);
    }
    Ok(bytes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random Fig-2 pipelines produce byte-identical result pages with
    /// and without each individual optimizer pass: the full pipeline
    /// minus any one pass, the pass alone, and the empty pipeline all
    /// agree with the naive plan.
    #[test]
    fn optimizer_passes_preserve_result_pages(
        (w, h, cells) in small_grid(),
        threshold in -20i32..20,
        agg_ix in 0usize..5,
    ) {
        use mal::OptConfig;
        let agg = ["SUM", "COUNT", "AVG", "MIN", "MAX"][agg_ix];
        let queries = [
            format!("SELECT v FROM a WHERE v > {threshold}"),
            format!("SELECT {agg}(v) FROM a WHERE v <= {threshold}"),
            format!("SELECT {agg}(v + 1) FROM a WHERE x > 1 AND v < {threshold}"),
            "SELECT [x], [y], SUM(v) FROM a GROUP BY a[x:x+2][y:y+2]".to_owned(),
            format!("SELECT v, {agg}(v) FROM a GROUP BY v"),
        ];
        // Each single pass toggled on alone, and off from the full set.
        let toggles: [fn(&mut OptConfig) -> &mut bool; 7] = [
            |c| &mut c.constfold,
            |c| &mut c.cse,
            |c| &mut c.alias,
            |c| &mut c.dce,
            |c| &mut c.candprop,
            |c| &mut c.fuse_select_project,
            |c| &mut c.fuse_select_aggregate,
        ];
        let mut configs = vec![OptConfig::none(), OptConfig::full()];
        for t in &toggles {
            let mut only = OptConfig::none();
            *t(&mut only) = true;
            let mut all_but = OptConfig::full();
            *t(&mut all_but) = false;
            configs.push(only);
            configs.push(all_but);
        }
        let mut c = array_session(w, h, &cells);
        for sql in &queries {
            c.set_optimizer(OptConfig::none());
            let expect = result_pages(&mut c, sql);
            for cfg in &configs {
                c.set_optimizer(*cfg);
                let got = result_pages(&mut c, sql);
                prop_assert_eq!(
                    &got, &expect,
                    "pages diverged for {:?} under {:?}", sql, cfg
                );
            }
        }
    }

    /// SciQL 2×2 tiling SUM equals the brute-force reference, including
    /// hole and boundary handling.
    #[test]
    fn tiling_sum_matches_reference((w, h, cells) in small_grid()) {
        let mut c = array_session(w, h, &cells);
        let rs = c
            .query("SELECT [x], [y], SUM(v) FROM a GROUP BY a[x:x+2][y:y+2]")
            .unwrap();
        prop_assert_eq!(rs.row_count(), w * h);
        let view = rs.to_array_view().unwrap();
        let want = reference_tile_sum(w, h, &cells, &[(0, 0), (0, 1), (1, 0), (1, 1)]);
        for x in 0..w {
            for y in 0..h {
                let got = view.at(&[x as i64, y as i64]).cloned().unwrap();
                let expect = match want[x * h + y] {
                    None => Value::Null,
                    Some(s) => Value::Lng(s),
                };
                prop_assert_eq!(got, expect, "anchor ({}, {})", x, y);
            }
        }
    }

    /// Tiling COUNT counts exactly the in-range non-hole tile cells.
    #[test]
    fn tiling_count_matches_reference((w, h, cells) in small_grid()) {
        let mut c = array_session(w, h, &cells);
        let rs = c
            .query("SELECT [x], [y], COUNT(v) FROM a GROUP BY a[x-1:x+2][y-1:y+2]")
            .unwrap();
        let view = rs.to_array_view().unwrap();
        for x in 0..w as i64 {
            for y in 0..h as i64 {
                let mut expect = 0i64;
                for dx in -1..=1 {
                    for dy in -1..=1 {
                        let (nx, ny) = (x + dx, y + dy);
                        if nx >= 0
                            && ny >= 0
                            && (nx as usize) < w
                            && (ny as usize) < h
                            && cells[nx as usize * h + ny as usize].is_some()
                        {
                            expect += 1;
                        }
                    }
                }
                prop_assert_eq!(
                    view.at(&[x, y]).cloned().unwrap(),
                    Value::Lng(expect),
                    "anchor ({}, {})", x, y
                );
            }
        }
    }

    /// Grouped SUM partitions the total: Σ(group sums) = overall sum.
    #[test]
    fn group_sums_partition_total((w, h, cells) in small_grid()) {
        let mut c = array_session(w, h, &cells);
        let total = c
            .query("SELECT SUM(v) FROM a")
            .unwrap()
            .scalar()
            .unwrap();
        let rs = c.query("SELECT v MOD 3, SUM(v) FROM a GROUP BY v MOD 3").unwrap();
        let group_total: i64 = rs
            .rows()
            .filter_map(|r| r[1].as_i64())
            .sum();
        let want = total.as_i64().unwrap_or(0);
        prop_assert_eq!(group_total, want);
    }

    /// ORDER BY yields a sorted permutation of the same multiset.
    #[test]
    fn order_by_is_sorted_permutation((w, h, cells) in small_grid()) {
        let mut c = array_session(w, h, &cells);
        let unsorted = c.query("SELECT v FROM a").unwrap();
        let sorted = c.query("SELECT v FROM a ORDER BY v").unwrap();
        prop_assert_eq!(unsorted.row_count(), sorted.row_count());
        let mut want: Vec<Option<i64>> =
            unsorted.rows().map(|r| r[0].as_i64()).collect();
        want.sort();
        let got: Vec<Option<i64>> = sorted.rows().map(|r| r[0].as_i64()).collect();
        prop_assert_eq!(got, want, "NULLs sort first, then ascending");
    }

    /// DELETE + COUNT bookkeeping: holes plus survivors equals cells.
    #[test]
    fn delete_bookkeeping((w, h, cells) in small_grid(), threshold in -20i32..20) {
        let mut c = array_session(w, h, &cells);
        c.execute(&format!("DELETE FROM a WHERE v < {threshold}")).unwrap();
        let holes = c
            .query("SELECT COUNT(*) FROM a WHERE v IS NULL")
            .unwrap()
            .scalar()
            .unwrap()
            .as_i64()
            .unwrap();
        let survivors = c
            .query("SELECT COUNT(v) FROM a")
            .unwrap()
            .scalar()
            .unwrap()
            .as_i64()
            .unwrap();
        prop_assert_eq!(holes + survivors, (w * h) as i64);
        // Survivors all respect the predicate.
        let bad = c
            .query(&format!("SELECT COUNT(*) FROM a WHERE v < {threshold}"))
            .unwrap()
            .scalar()
            .unwrap();
        prop_assert_eq!(bad, Value::Lng(0));
    }

    /// Array→table→array round trip preserves every non-hole cell.
    #[test]
    fn coercion_roundtrip((w, h, cells) in small_grid()) {
        let mut c = array_session(w, h, &cells);
        c.execute("CREATE TABLE t (x INT, y INT, v INT)").unwrap();
        c.execute("INSERT INTO t SELECT x, y, v FROM a").unwrap();
        c.execute("CREATE ARRAY b (x INT DIMENSION[0:1:64], y INT DIMENSION[0:1:64], v INT)")
            .unwrap();
        c.execute("INSERT INTO b SELECT [x], [y], v FROM t").unwrap();
        for x in 0..w {
            for y in 0..h {
                let orig = c
                    .query(&format!("SELECT v FROM a WHERE x = {x} AND y = {y}"))
                    .unwrap()
                    .scalar()
                    .unwrap();
                let back = c
                    .query(&format!("SELECT v FROM b WHERE x = {x} AND y = {y}"))
                    .unwrap()
                    .scalar()
                    .unwrap();
                prop_assert_eq!(orig, back, "cell ({}, {})", x, y);
            }
        }
    }
}
