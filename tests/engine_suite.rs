//! Broad engine coverage: the SQL substrate (tables, joins, sorting,
//! grouping, NULLs, strings), array shapes beyond 2-D, unbounded arrays,
//! and error paths.

use gdk::Value;
use sciql::Connection;

fn conn() -> Connection {
    Connection::new()
}

// ----------------------------------------------------------------------
// plain SQL over tables
// ----------------------------------------------------------------------

#[test]
fn table_crud_lifecycle() {
    let mut c = conn();
    c.execute("CREATE TABLE t (a INT, b VARCHAR, d DOUBLE DEFAULT 1.5)")
        .unwrap();
    c.execute("INSERT INTO t VALUES (1, 'one', 0.1), (2, 'two', 0.2)")
        .unwrap();
    c.execute("INSERT INTO t (a) VALUES (3)").unwrap();
    let rs = c.query("SELECT a, b, d FROM t ORDER BY a").unwrap();
    assert_eq!(rs.row_count(), 3);
    assert_eq!(rs.get(2, 1), Value::Null, "missing column is NULL");
    assert_eq!(rs.get(2, 2), Value::Dbl(1.5), "DEFAULT applies");

    let n = c.execute("UPDATE t SET d = d * 10 WHERE a < 3").unwrap();
    assert_eq!(n.affected().unwrap(), 2);
    let rs = c.query("SELECT d FROM t WHERE a = 2").unwrap();
    assert_eq!(rs.scalar().unwrap(), Value::Dbl(2.0));

    let n = c.execute("DELETE FROM t WHERE a = 1").unwrap();
    assert_eq!(n.affected().unwrap(), 1);
    let rs = c.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(rs.scalar().unwrap(), Value::Lng(2));

    c.execute("DROP TABLE t").unwrap();
    assert!(c.query("SELECT a FROM t").is_err());
}

#[test]
fn joins_between_tables() {
    let mut c = conn();
    c.execute_script(
        "CREATE TABLE emp (id INT, dept INT, name VARCHAR); \
         CREATE TABLE dept (id INT, dname VARCHAR); \
         INSERT INTO emp VALUES (1, 10, 'ada'), (2, 20, 'bob'), (3, 10, 'eve'); \
         INSERT INTO dept VALUES (10, 'science'), (20, 'art');",
    )
    .unwrap();
    // Comma join + WHERE.
    let rs = c
        .query(
            "SELECT name, dname FROM emp, dept WHERE emp.dept = dept.id \
             ORDER BY name",
        )
        .unwrap();
    assert_eq!(rs.row_count(), 3);
    assert_eq!(rs.get(0, 0), Value::Str("ada".into()));
    assert_eq!(rs.get(0, 1), Value::Str("science".into()));
    // Explicit JOIN … ON desugars to the same thing.
    let rs2 = c
        .query(
            "SELECT name, dname FROM emp JOIN dept ON emp.dept = dept.id \
             ORDER BY name",
        )
        .unwrap();
    assert_eq!(rs.row_count(), rs2.row_count());
    for r in 0..rs.row_count() {
        assert_eq!(rs.row(r), rs2.row(r));
    }
    // Grouped join.
    let rs = c
        .query(
            "SELECT dname, COUNT(*) FROM emp, dept WHERE emp.dept = dept.id \
             GROUP BY dname ORDER BY dname",
        )
        .unwrap();
    assert_eq!(rs.row(0), vec![Value::Str("art".into()), Value::Lng(1)]);
    assert_eq!(rs.row(1), vec![Value::Str("science".into()), Value::Lng(2)]);
}

#[test]
fn sorting_distinct_limits() {
    let mut c = conn();
    c.execute_script(
        "CREATE TABLE t (a INT, b INT); \
         INSERT INTO t VALUES (3, 1), (1, 2), (3, 0), (2, 5), (1, 1);",
    )
    .unwrap();
    let rs = c.query("SELECT a, b FROM t ORDER BY a, b DESC").unwrap();
    let rows: Vec<Vec<Value>> = rs.rows().collect();
    assert_eq!(rows[0], vec![Value::Int(1), Value::Int(2)]);
    assert_eq!(rows[1], vec![Value::Int(1), Value::Int(1)]);
    assert_eq!(rows[4], vec![Value::Int(3), Value::Int(0)]);

    let rs = c.query("SELECT DISTINCT a FROM t ORDER BY a").unwrap();
    assert_eq!(rs.row_count(), 3);

    let rs = c
        .query("SELECT a FROM t ORDER BY a LIMIT 2 OFFSET 1")
        .unwrap();
    assert_eq!(rs.row_count(), 2);
    assert_eq!(rs.get(0, 0), Value::Int(1));
    assert_eq!(rs.get(1, 0), Value::Int(2));
}

#[test]
fn three_valued_logic_in_where() {
    let mut c = conn();
    c.execute_script(
        "CREATE TABLE t (a INT); \
         INSERT INTO t VALUES (1), (NULL), (3);",
    )
    .unwrap();
    // NULL comparisons never qualify.
    assert_eq!(
        c.query("SELECT COUNT(*) FROM t WHERE a > 0")
            .unwrap()
            .scalar()
            .unwrap(),
        Value::Lng(2)
    );
    assert_eq!(
        c.query("SELECT COUNT(*) FROM t WHERE NOT a > 0")
            .unwrap()
            .scalar()
            .unwrap(),
        Value::Lng(0)
    );
    assert_eq!(
        c.query("SELECT COUNT(*) FROM t WHERE a IS NULL")
            .unwrap()
            .scalar()
            .unwrap(),
        Value::Lng(1)
    );
    assert_eq!(
        c.query("SELECT COUNT(*) FROM t WHERE a IS NOT NULL")
            .unwrap()
            .scalar()
            .unwrap(),
        Value::Lng(2)
    );
    // IN and BETWEEN with NULLs.
    assert_eq!(
        c.query("SELECT COUNT(*) FROM t WHERE a IN (1, 2)")
            .unwrap()
            .scalar()
            .unwrap(),
        Value::Lng(1)
    );
    assert_eq!(
        c.query("SELECT COUNT(*) FROM t WHERE a BETWEEN 1 AND 3")
            .unwrap()
            .scalar()
            .unwrap(),
        Value::Lng(2)
    );
}

#[test]
fn expressions_and_functions() {
    let mut c = conn();
    assert_eq!(
        c.query("SELECT 1 + 2 * 3").unwrap().scalar().unwrap(),
        Value::Int(7)
    );
    assert_eq!(
        c.query("SELECT ABS(-4) + 10 MOD 3")
            .unwrap()
            .scalar()
            .unwrap(),
        Value::Int(5)
    );
    assert_eq!(
        c.query("SELECT CAST(2.6 AS INT)")
            .unwrap()
            .scalar()
            .unwrap(),
        Value::Int(3)
    );
    assert_eq!(
        c.query("SELECT CASE WHEN 1 > 2 THEN 'a' ELSE 'b' END")
            .unwrap()
            .scalar()
            .unwrap(),
        Value::Str("b".into())
    );
    assert!(
        c.query("SELECT 1 / 0").is_err(),
        "division by zero is an error"
    );
}

// ----------------------------------------------------------------------
// arrays beyond the 2-D demo
// ----------------------------------------------------------------------

#[test]
fn one_dimensional_time_series() {
    let mut c = conn();
    c.execute("CREATE ARRAY ts (t INT DIMENSION[0:1:10], v DOUBLE DEFAULT 0.0)")
        .unwrap();
    c.execute("UPDATE ts SET v = t * 1.5").unwrap();
    // Moving average over a 3-wide window via 1-D tiling.
    let rs = c
        .query("SELECT [t], AVG(v) FROM ts GROUP BY ts[t-1:t+2]")
        .unwrap();
    assert_eq!(rs.row_count(), 10);
    let view = rs.to_array_view().unwrap();
    // interior point t=5: avg(6.0, 7.5, 9.0) = 7.5
    assert_eq!(view.at(&[5]), Some(&Value::Dbl(7.5)));
    // boundary t=0: avg(0.0, 1.5) = 0.75 (out-of-range ignored)
    assert_eq!(view.at(&[0]), Some(&Value::Dbl(0.75)));
}

#[test]
fn three_dimensional_array() {
    let mut c = conn();
    c.execute(
        "CREATE ARRAY cube (x INT DIMENSION[0:1:3], y INT DIMENSION[0:1:3], \
         z INT DIMENSION[0:1:3], v INT DEFAULT 1)",
    )
    .unwrap();
    assert_eq!(
        c.query("SELECT COUNT(*) FROM cube")
            .unwrap()
            .scalar()
            .unwrap(),
        Value::Lng(27)
    );
    c.execute("UPDATE cube SET v = x * 9 + y * 3 + z").unwrap();
    let rs = c
        .query("SELECT v FROM cube WHERE x = 2 AND y = 1 AND z = 0")
        .unwrap();
    assert_eq!(rs.scalar().unwrap(), Value::Int(21));
    // 3-D tiling: 2×2×2 sums.
    let rs = c
        .query(
            "SELECT [x], [y], [z], SUM(v) FROM cube \
             GROUP BY cube[x:x+2][y:y+2][z:z+2] \
             HAVING x = 0 AND y = 0 AND z = 0",
        )
        .unwrap();
    // cells: (0,0,0)=0,(0,0,1)=1,(0,1,0)=3,(0,1,1)=4,(1,0,0)=9,(1,0,1)=10,(1,1,0)=12,(1,1,1)=13
    assert_eq!(rs.get(0, 3), Value::Lng(52));
}

#[test]
fn non_unit_step_dimension() {
    let mut c = conn();
    c.execute("CREATE ARRAY s (x INT DIMENSION[0:10:50], v INT DEFAULT 7)")
        .unwrap();
    let rs = c.query("SELECT x, v FROM s ORDER BY x").unwrap();
    assert_eq!(rs.row_count(), 5);
    assert_eq!(rs.get(4, 0), Value::Int(40));
    // Off-grid insert is rejected.
    assert!(c.execute("INSERT INTO s VALUES (15, 1)").is_err());
    c.execute("INSERT INTO s VALUES (20, 1)").unwrap();
    assert_eq!(
        c.query("SELECT v FROM s WHERE x = 20")
            .unwrap()
            .scalar()
            .unwrap(),
        Value::Int(1)
    );
}

#[test]
fn unbounded_array_derives_range_on_insert() {
    let mut c = conn();
    c.execute("CREATE ARRAY u (x INT DIMENSION, v INT DEFAULT 0)")
        .unwrap();
    // Not materialised yet: scanning fails cleanly.
    assert!(c.query("SELECT v FROM u").is_err());
    c.execute("CREATE TABLE src (x INT, v INT)").unwrap();
    c.execute("INSERT INTO src VALUES (3, 30), (7, 70), (5, 50)")
        .unwrap();
    c.execute("INSERT INTO u SELECT x, v FROM src").unwrap();
    // Derived range [3, 8) with step 1 — all cells exist, holes default 0.
    let rs = c.query("SELECT COUNT(*) FROM u").unwrap();
    assert_eq!(rs.scalar().unwrap(), Value::Lng(5));
    assert_eq!(
        c.query("SELECT v FROM u WHERE x = 5")
            .unwrap()
            .scalar()
            .unwrap(),
        Value::Int(50)
    );
    assert_eq!(
        c.query("SELECT v FROM u WHERE x = 4")
            .unwrap()
            .scalar()
            .unwrap(),
        Value::Int(0),
        "gap cell exists with the default"
    );
}

#[test]
fn negative_and_shrinking_ranges() {
    let mut c = conn();
    c.execute("CREATE ARRAY m (x INT DIMENSION[-2:1:3], v INT DEFAULT 5)")
        .unwrap();
    assert_eq!(
        c.query("SELECT COUNT(*) FROM m").unwrap().scalar().unwrap(),
        Value::Lng(5)
    );
    c.execute("UPDATE m SET v = x WHERE x < 0").unwrap();
    c.execute("ALTER ARRAY m ALTER DIMENSION x SET RANGE [-1:1:2]")
        .unwrap();
    let rs = c.query("SELECT x, v FROM m ORDER BY x").unwrap();
    assert_eq!(rs.row_count(), 3);
    assert_eq!(rs.row(0), vec![Value::Int(-1), Value::Int(-1)]);
    assert_eq!(rs.row(1), vec![Value::Int(0), Value::Int(5)]);
}

#[test]
fn multi_attribute_array() {
    let mut c = conn();
    c.execute(
        "CREATE ARRAY obs (t INT DIMENSION[0:1:4], temp DOUBLE DEFAULT 0.0, \
         flag INT DEFAULT 1)",
    )
    .unwrap();
    c.execute("UPDATE obs SET temp = t * 0.5, flag = 0 WHERE t >= 2")
        .unwrap();
    let rs = c.query("SELECT t, temp, flag FROM obs ORDER BY t").unwrap();
    assert_eq!(
        rs.row(3),
        vec![Value::Int(3), Value::Dbl(1.5), Value::Int(0)]
    );
    assert_eq!(
        rs.row(1),
        vec![Value::Int(1), Value::Dbl(0.0), Value::Int(1)]
    );
    // DELETE punches holes in all attributes.
    c.execute("DELETE FROM obs WHERE t = 0").unwrap();
    let rs = c.query("SELECT temp, flag FROM obs WHERE t = 0").unwrap();
    assert_eq!(rs.row(0), vec![Value::Null, Value::Null]);
}

// ----------------------------------------------------------------------
// error paths
// ----------------------------------------------------------------------

#[test]
fn error_paths_are_clean() {
    let mut c = conn();
    c.execute("CREATE ARRAY m (x INT DIMENSION[0:1:4], v INT DEFAULT 0)")
        .unwrap();
    // Duplicate object.
    assert!(c.execute("CREATE TABLE m (a INT)").is_err());
    // Kind mismatch on DROP.
    assert!(c.execute("DROP TABLE m").is_err());
    // Unknown columns / objects.
    assert!(c.query("SELECT nope FROM m").is_err());
    assert!(c.query("SELECT v FROM nope").is_err());
    // Dimensions cannot be UPDATEd.
    assert!(c.execute("UPDATE m SET x = 1").is_err());
    // Out-of-range insert.
    assert!(c.execute("INSERT INTO m VALUES (99, 1)").is_err());
    // Aggregates in WHERE.
    assert!(c.query("SELECT v FROM m WHERE SUM(v) > 1").is_err());
    // Tile over the wrong array.
    assert!(c
        .query("SELECT [x], AVG(v) FROM m GROUP BY other[x]")
        .is_err());
    // Parse errors surface with position info.
    let err = c.execute("SELEC 1").unwrap_err();
    assert!(err.to_string().contains("offset"), "{err}");
    // The session survives all of the above.
    assert_eq!(
        c.query("SELECT COUNT(*) FROM m").unwrap().scalar().unwrap(),
        Value::Lng(4)
    );
}

#[test]
fn string_columns_work_through_the_stack() {
    let mut c = conn();
    c.execute_script(
        "CREATE TABLE s (k INT, name VARCHAR); \
         INSERT INTO s VALUES (1, 'alpha'), (2, 'beta'), (3, 'alpha');",
    )
    .unwrap();
    let rs = c
        .query("SELECT name, COUNT(*) FROM s GROUP BY name ORDER BY name")
        .unwrap();
    assert_eq!(rs.row(0), vec![Value::Str("alpha".into()), Value::Lng(2)]);
    let rs = c.query("SELECT k FROM s WHERE name = 'beta'").unwrap();
    assert_eq!(rs.scalar().unwrap(), Value::Int(2));
}

#[test]
fn insert_select_reads_pre_insert_state() {
    // INSERT INTO m SELECT … FROM m must not observe its own writes.
    let mut c = conn();
    c.execute("CREATE ARRAY m (x INT DIMENSION[0:1:4], v INT DEFAULT 1)")
        .unwrap();
    c.execute("UPDATE m SET v = x").unwrap();
    // Shift everything one to the right using a self-read.
    c.execute("INSERT INTO m SELECT [x], m[x-1] FROM m WHERE x > 0")
        .unwrap();
    let rs = c.query("SELECT v FROM m ORDER BY x").unwrap();
    let vals: Vec<Value> = rs.rows().map(|r| r[0].clone()).collect();
    assert_eq!(
        vals,
        vec![Value::Int(0), Value::Int(0), Value::Int(1), Value::Int(2)],
        "each cell must receive the OLD left neighbour"
    );
}
