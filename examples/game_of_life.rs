//! Demo Scenario I: Conway's Game of Life, every rule a SciQL query.
//!
//! Prints a glider travelling across a board whose state lives in a SciQL
//! array, then cross-checks the SciQL evolution against the native engine
//! and against the SQL self-join formulation the paper's structural
//! grouping replaces.
//!
//! Run with: `cargo run --example game_of_life`

use sciql_life::{Board, Pattern, SciqlLife};

fn main() {
    let (w, h) = (20, 12);
    let mut game = SciqlLife::new(w, h).expect("create board array");

    // "initialise the game with living cells"
    let mut seed = Board::new(w, h);
    Pattern::Glider.stamp(&mut seed, 1, 1);
    Pattern::Blinker.stamp(&mut seed, 12, 8);
    game.load(&seed).expect("load");

    println!("generation 0 (population {}):", game.population().unwrap());
    println!("{}", game.board().unwrap().render());

    let mut native = seed.clone();
    for generation in 1..=8 {
        // "compute the next generation" — one structural-grouping query.
        game.step().expect("SciQL step");
        native = native.step();
        let sciql_board = game.board().unwrap();
        assert_eq!(
            sciql_board, native,
            "SciQL and native evolution diverged at generation {generation}"
        );
        println!(
            "generation {generation} (population {}):",
            game.population().unwrap()
        );
        println!("{}", sciql_board.render());
    }

    // The SQL formulation ("such query would require a eight-way
    // self-join") computes the same generation, only slower.
    let mut sql_game = SciqlLife::new(w, h).expect("second board");
    sql_game.load(&native).expect("load");
    let mut tiled_game = SciqlLife::new(w, h).expect("third board");
    tiled_game.load(&native).expect("load");

    let t0 = std::time::Instant::now();
    tiled_game.step().expect("tiling step");
    let tile_time = t0.elapsed();
    let t0 = std::time::Instant::now();
    sql_game.step_sql_join().expect("self-join step");
    let join_time = t0.elapsed();
    assert_eq!(sql_game.board().unwrap(), tiled_game.board().unwrap());

    println!(
        "one generation on a {w}x{h} board: structural grouping {:?} vs SQL self-join {:?} ({}x)",
        tile_time,
        join_time,
        join_time.as_nanos().max(1) / tile_time.as_nanos().max(1)
    );

    // "clear/resize the board" — the remaining demo rules.
    tiled_game.resize(32, 16).expect("resize");
    tiled_game.clear().expect("clear");
    assert_eq!(tiled_game.population().unwrap(), 0);
    println!("board resized to 32x16 and cleared; all rules executed as SciQL.");
}
