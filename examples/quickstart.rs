//! Quickstart: walk through §2 of the paper — Figure 1(a)–(f) — statement
//! by statement through the **unified driver API**, printing the array
//! after each operation, then re-run the paper's tiling query as a bound
//! prepared statement.
//!
//! Run with: `cargo run --example quickstart`

use sciql_repro::driver::{Conn, Sciql};
use sciql_repro::params;

fn show(conn: &mut Conn, caption: &str) {
    println!("== {caption}");
    let rows = conn
        .query("SELECT [x], [y], v FROM matrix")
        .expect("matrix readable");
    let view = rows
        .result_set()
        .to_array_view()
        .expect("dimensional result");
    println!("{}", view.render_grid().expect("2-D"));
}

fn main() {
    // One line replaces Connection::new(); swap the URL for
    // "file:./mydb" (durable vault) or "tcp://host:port" (server) and
    // everything below runs unchanged.
    let mut conn = Sciql::connect("mem:").expect("in-memory connect");

    // Fig 1(a): CREATE ARRAY materialises a 4×4 zero matrix.
    conn.execute(
        "CREATE ARRAY matrix (
           x INT DIMENSION[0:1:4], y INT DIMENSION[0:1:4],
           v INT DEFAULT 0)",
    )
    .unwrap();
    show(
        &mut conn,
        "Fig 1(a): CREATE ARRAY matrix — all cells default 0",
    );

    // Fig 1(b): guarded UPDATE with dimensions as bound variables.
    conn.execute(
        "UPDATE matrix SET v = CASE WHEN x > y THEN x + y \
         WHEN x < y THEN x - y ELSE 0 END",
    )
    .unwrap();
    show(&mut conn, "Fig 1(b): guarded UPDATE");

    // Fig 1(c): INSERT overwrites cells; DELETE punches NULL holes.
    conn.execute("INSERT INTO matrix SELECT [x], [y], x * y FROM matrix WHERE x = y")
        .unwrap();
    conn.execute("DELETE FROM matrix WHERE x > y").unwrap();
    show(
        &mut conn,
        "Fig 1(c): INSERT diagonal x*y, DELETE x > y (holes)",
    );

    // Fig 1(d)/(e): structural grouping — 2×2 tiles, anchors filtered by
    // HAVING, holes ignored by AVG.
    let rows = conn
        .query(
            "SELECT [x], [y], AVG(v) FROM matrix \
             GROUP BY matrix[x:x+2][y:y+2] \
             HAVING x MOD 2 = 1 AND y MOD 2 = 1",
        )
        .unwrap();
    println!("== Fig 1(d)/(e): 2x2 tiling, AVG per anchor");
    println!("{}", rows.result_set().render());
    println!(
        "{}",
        rows.result_set()
            .to_array_view()
            .unwrap()
            .render_grid()
            .unwrap()
    );

    // Fig 1(f): expand both dimensions by one in each direction.
    conn.execute("ALTER ARRAY matrix ALTER DIMENSION x SET RANGE [-1:1:5]")
        .unwrap();
    conn.execute("ALTER ARRAY matrix ALTER DIMENSION y SET RANGE [-1:1:5]")
        .unwrap();
    show(
        &mut conn,
        "Fig 1(f): ALTER ARRAY — expanded with default border",
    );

    // Bound parameters: one prepared statement, three thresholds. The
    // plan compiles once; re-executions fill the `?` slot and reuse it.
    println!("== prepared statement: SELECT COUNT(*) FROM matrix WHERE v >= ?");
    let stmt = conn
        .prepare("SELECT COUNT(*) FROM matrix WHERE v >= ?")
        .unwrap();
    for threshold in [0i64, 2, 4] {
        let mut rows = conn.query_bound(&stmt, params![threshold]).unwrap();
        let n: i64 = rows.next_row().unwrap().get(0).unwrap();
        let hit = conn.last_plan_cache_hits().unwrap();
        println!("  v >= {threshold}: {n} cell(s)   (plan cache hit: {hit})");
    }

    // Bonus: what the engine actually runs (Fig 2 pipeline).
    println!("== EXPLAIN of the tiling query");
    let explain = conn
        .explain(
            "SELECT [x], [y], AVG(v) FROM matrix \
             GROUP BY matrix[x:x+2][y:y+2] \
             HAVING x MOD 2 = 1 AND y MOD 2 = 1",
        )
        .unwrap();
    println!("{explain}");
}
