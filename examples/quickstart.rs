//! Quickstart: walk through §2 of the paper — Figure 1(a)–(f) — statement
//! by statement, printing the array after each operation.
//!
//! Run with: `cargo run --example quickstart`

use sciql::Connection;

fn show(conn: &mut Connection, caption: &str) {
    println!("== {caption}");
    let view = conn
        .query_array("SELECT [x], [y], v FROM matrix")
        .expect("matrix readable");
    println!("{}", view.render_grid().expect("2-D"));
}

fn main() {
    let mut conn = Connection::new();

    // Fig 1(a): CREATE ARRAY materialises a 4×4 zero matrix.
    conn.execute(
        "CREATE ARRAY matrix (
           x INT DIMENSION[0:1:4], y INT DIMENSION[0:1:4],
           v INT DEFAULT 0)",
    )
    .unwrap();
    show(
        &mut conn,
        "Fig 1(a): CREATE ARRAY matrix — all cells default 0",
    );

    // Fig 1(b): guarded UPDATE with dimensions as bound variables.
    conn.execute(
        "UPDATE matrix SET v = CASE WHEN x > y THEN x + y \
         WHEN x < y THEN x - y ELSE 0 END",
    )
    .unwrap();
    show(&mut conn, "Fig 1(b): guarded UPDATE");

    // Fig 1(c): INSERT overwrites cells; DELETE punches NULL holes.
    conn.execute("INSERT INTO matrix SELECT [x], [y], x * y FROM matrix WHERE x = y")
        .unwrap();
    conn.execute("DELETE FROM matrix WHERE x > y").unwrap();
    show(
        &mut conn,
        "Fig 1(c): INSERT diagonal x*y, DELETE x > y (holes)",
    );

    // Fig 1(d)/(e): structural grouping — 2×2 tiles, anchors filtered by
    // HAVING, holes ignored by AVG.
    let rs = conn
        .query(
            "SELECT [x], [y], AVG(v) FROM matrix \
             GROUP BY matrix[x:x+2][y:y+2] \
             HAVING x MOD 2 = 1 AND y MOD 2 = 1",
        )
        .unwrap();
    println!("== Fig 1(d)/(e): 2x2 tiling, AVG per anchor");
    println!("{}", rs.render());
    println!("{}", rs.to_array_view().unwrap().render_grid().unwrap());

    // Fig 1(f): expand both dimensions by one in each direction.
    conn.execute("ALTER ARRAY matrix ALTER DIMENSION x SET RANGE [-1:1:5]")
        .unwrap();
    conn.execute("ALTER ARRAY matrix ALTER DIMENSION y SET RANGE [-1:1:5]")
        .unwrap();
    show(
        &mut conn,
        "Fig 1(f): ALTER ARRAY — expanded with default border",
    );

    // Bonus: what the engine actually runs (Fig 2 pipeline).
    println!("== EXPLAIN of the tiling query");
    let explain = conn
        .explain(
            "SELECT [x], [y], AVG(v) FROM matrix \
             GROUP BY matrix[x:x+2][y:y+2] \
             HAVING x MOD 2 = 1 AND y MOD 2 = 1",
        )
        .unwrap();
    println!("{explain}");
}
