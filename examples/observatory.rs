//! The paper's motivating use case (§1): "a full-fledged scientific
//! information system … should blend measurements with static and derived
//! metadata about the instruments and observations. It therefore calls for
//! a strong symbiosis of the relational paradigm and array paradigm."
//!
//! This example builds a tiny virtual observatory over the **unified
//! driver API**: an `instruments` TABLE (relational metadata), a 2-D
//! measurement ARRAY per scene, and combined queries that join them —
//! metadata-driven slab selection, per-instrument statistics computed
//! with one bound-parameter prepared statement, and a quality report
//! written back through prepared DML. The frame stream itself lands via
//! `COPY … (FORMAT binary)` — tiled bulk ingest instead of an INSERT
//! loop — with a timing printout comparing the two and a zone-map
//! skip-scan over the result.
//!
//! Run with: `cargo run --example observatory`

use sciql_repro::driver::Sciql;
use sciql_repro::gdk::Bat;
use sciql_repro::imaging::synth;
use sciql_repro::params;
use std::time::Instant;

fn main() {
    let mut conn = Sciql::connect("mem:").expect("in-memory connect");

    // --- relational side: instrument & scene metadata ------------------
    for stmt in [
        "CREATE TABLE instruments (iid INT, name VARCHAR, band VARCHAR, noise INT)",
        "INSERT INTO instruments VALUES \
           (1, 'VIS-A', 'visible', 2), \
           (2, 'NIR-B', 'near-infrared', 5)",
        "CREATE TABLE scenes (sid INT, iid INT, day INT, cloud INT)",
        "INSERT INTO scenes VALUES \
           (100, 1, 12, 8), \
           (101, 2, 12, 35), \
           (102, 1, 13, 2)",
    ] {
        conn.execute(stmt).expect("metadata");
    }

    // --- array side: one measurement array per scene (Data Vault) ------
    // Bulk image ingestion bypasses SQL; it needs the embedded
    // connection behind the driver.
    let embedded = conn
        .embedded_connection()
        .expect("mem: transport is embedded");
    for (sid, seed) in [(100u64, 7u64), (101, 8), (102, 9)] {
        let img = synth::terrain(48, 48, seed);
        sciql_repro::imaging::vault::load_image(embedded, &format!("scene_{sid}"), &img)
            .expect("load scene");
    }

    // --- bulk ingest: a night of frames via COPY -----------------------
    // The raw detector stream is one row per pixel event (frame id,
    // pixel offset, intensity). COPY lands it tile-by-tile in a single
    // statement; a per-row INSERT loop is the strawman it replaces.
    conn.execute("CREATE TABLE frames (fid INT, px INT, v INT)")
        .expect("frames table");
    let (mut fid, mut px, mut v) = (Vec::new(), Vec::new(), Vec::new());
    for f in 0..6i32 {
        let img = synth::terrain(64, 64, 20 + f as u64);
        for (i, cell) in img.pixels.iter().enumerate() {
            fid.push(f);
            px.push(i as i32);
            v.push(*cell);
        }
    }
    let nrows = fid.len();
    let sample: Vec<(i32, i32, i32)> = (0..512).map(|i| (fid[i], px[i], v[i])).collect();
    let path = std::env::temp_dir().join(format!("sciql-observatory-{}.scpy", std::process::id()));
    sciql_repro::sciql::write_copy_binary(
        &path,
        &[Bat::from_ints(fid), Bat::from_ints(px), Bat::from_ints(v)],
    )
    .expect("write frame stream");
    let t0 = Instant::now();
    conn.execute(&format!(
        "COPY frames FROM '{}' (FORMAT binary)",
        path.display()
    ))
    .expect("copy frames");
    let copy_s = t0.elapsed().as_secs_f64();
    std::fs::remove_file(&path).ok();
    // The same pixels one INSERT at a time, on a small sample — enough
    // to compare per-row cost without waiting on the full stream.
    conn.execute("CREATE TABLE frames_slow (fid INT, px INT, v INT)")
        .expect("strawman table");
    let t0 = Instant::now();
    for (f, p, val) in &sample {
        conn.execute(&format!("INSERT INTO frames_slow VALUES ({f}, {p}, {val})"))
            .expect("insert row");
    }
    let insert_s = t0.elapsed().as_secs_f64();
    let copy_rate = nrows as f64 / copy_s;
    let insert_rate = sample.len() as f64 / insert_s;
    println!(
        "frame ingest: COPY {nrows} rows in {:.1} ms ({:.0} rows/s)",
        copy_s * 1e3,
        copy_rate
    );
    println!(
        "              INSERT loop {} rows in {:.1} ms ({:.0} rows/s) — COPY is {:.0}x faster",
        sample.len(),
        insert_s * 1e3,
        insert_rate,
        copy_rate / insert_rate
    );
    // Frames arrive in time order, so fid is clustered across tiles and
    // a point probe lets the per-tile zone maps skip most of the table.
    let mut rows = conn
        .query("SELECT COUNT(*) FROM frames WHERE fid = 5")
        .expect("skip scan");
    let hits: i64 = rows.next_row().unwrap().get(0).unwrap();
    let skipped = conn.last_report().map(|r| r.tiles_skipped).unwrap_or(0);
    println!("              probe fid=5: {hits} rows, {skipped} tile(s) skipped via zone maps");

    // --- symbiosis 1: metadata query drives array processing -----------
    // Find the clearest scene, then compute its intensity statistics
    // straight from the array.
    let best: i64 = {
        let mut rows = conn
            .query("SELECT sid FROM scenes ORDER BY cloud LIMIT 1")
            .unwrap();
        rows.next_row().unwrap().get(0).unwrap()
    };
    println!("clearest scene: {best}");
    let stats = conn
        .query(&format!(
            "SELECT MIN(v), MAX(v), CAST(AVG(v) AS INT), COUNT(*) FROM scene_{best}"
        ))
        .unwrap();
    println!("  min/max/avg/cells: {:?}", stats.result_set().row(0));

    // --- symbiosis 2: join table metadata against array cells ----------
    // Per-instrument mean intensity across all of that instrument's
    // scenes (a table↔table join selecting which arrays to aggregate).
    println!("per-instrument mean intensity:");
    let mut per_instrument = conn
        .query(
            "SELECT i.name AS name, s.sid AS sid FROM instruments i, scenes s \
             WHERE i.iid = s.iid ORDER BY sid",
        )
        .unwrap();
    let mut pairs: Vec<(String, i64)> = Vec::new();
    while let Some(row) = per_instrument.next_row() {
        pairs.push((
            row.get_by_name("name").unwrap(),
            row.get_by_name("sid").unwrap(),
        ));
    }
    for (name, sid) in pairs {
        let mut rows = conn
            .query(&format!("SELECT AVG(v) FROM scene_{sid}"))
            .unwrap();
        let mean: f64 = rows.next_row().unwrap().get(0).unwrap();
        println!("  {name:<8} scene {sid}: mean {mean:.1}");
    }

    // --- symbiosis 3: structural grouping for a quality report ---------
    // Local 3×3 variance proxy (max - min per tile) on each scene; count
    // rough cells — written back into a relational table through a
    // prepared INSERT with bound parameters.
    conn.execute("CREATE TABLE quality (sid INT, rough_cells INT)")
        .unwrap();
    let record = conn
        .prepare("INSERT INTO quality VALUES (:sid, :rough)")
        .unwrap();
    for sid in [100i64, 101, 102] {
        let mut rows = conn
            .query(&format!(
                "SELECT [x], [y], MAX(v) - MIN(v) AS spread FROM scene_{sid} \
                 GROUP BY scene_{sid}[x-1:x+2][y-1:y+2]"
            ))
            .unwrap();
        let mut rough_cells = 0i64;
        while let Some(row) = rows.next_row() {
            if row.get::<Option<i64>>(2).unwrap().unwrap_or(0) > 12 {
                rough_cells += 1;
            }
        }
        conn.execute_bound(&record, params![sid, rough_cells])
            .unwrap();
    }
    let report = conn
        .query(
            "SELECT s.sid AS sid, s.cloud AS cloud, q.rough_cells AS rough \
             FROM scenes s, quality q WHERE s.sid = q.sid ORDER BY sid",
        )
        .unwrap();
    println!("scene quality report (metadata ⋈ derived array statistics):");
    println!("{}", report.result_set().render());
}
