//! The paper's motivating use case (§1): "a full-fledged scientific
//! information system … should blend measurements with static and derived
//! metadata about the instruments and observations. It therefore calls for
//! a strong symbiosis of the relational paradigm and array paradigm."
//!
//! This example builds a tiny virtual observatory: an `instruments` TABLE
//! (relational metadata), a 2-D measurement ARRAY per scene, and combined
//! queries that join them — metadata-driven slab selection, per-instrument
//! statistics, and a quality report computed with structural grouping.
//!
//! Run with: `cargo run --example observatory`

use sciql::Connection;
use sciql_imaging::synth;

fn main() {
    let mut conn = Connection::new();

    // --- relational side: instrument & scene metadata ------------------
    conn.execute_script(
        "CREATE TABLE instruments (iid INT, name VARCHAR, band VARCHAR, noise INT); \
         INSERT INTO instruments VALUES \
           (1, 'VIS-A', 'visible', 2), \
           (2, 'NIR-B', 'near-infrared', 5); \
         CREATE TABLE scenes (sid INT, iid INT, day INT, cloud INT); \
         INSERT INTO scenes VALUES \
           (100, 1, 12, 8), \
           (101, 2, 12, 35), \
           (102, 1, 13, 2);",
    )
    .expect("metadata");

    // --- array side: one measurement array per scene (Data Vault) ------
    for (sid, seed) in [(100u64, 7u64), (101, 8), (102, 9)] {
        let img = synth::terrain(48, 48, seed);
        sciql_imaging::vault::load_image(&mut conn, &format!("scene_{sid}"), &img)
            .expect("load scene");
    }

    // --- symbiosis 1: metadata query drives array processing -----------
    // Find the clearest scene, then compute its intensity statistics
    // straight from the array.
    let best = conn
        .query("SELECT sid FROM scenes ORDER BY cloud LIMIT 1")
        .unwrap()
        .scalar()
        .unwrap();
    println!("clearest scene: {best}");
    let stats = conn
        .query(&format!(
            "SELECT MIN(v), MAX(v), CAST(AVG(v) AS INT), COUNT(*) FROM scene_{best}"
        ))
        .unwrap();
    println!("  min/max/avg/cells: {:?}", stats.row(0));

    // --- symbiosis 2: join table metadata against array cells ----------
    // Per-instrument mean intensity across all of that instrument's
    // scenes (a table↔table join selecting which arrays to aggregate).
    println!("per-instrument mean intensity:");
    let per_instrument = conn
        .query(
            "SELECT i.name AS name, s.sid AS sid FROM instruments i, scenes s \
             WHERE i.iid = s.iid ORDER BY sid",
        )
        .unwrap();
    for row in per_instrument.rows() {
        let name = &row[0];
        let sid = row[1].as_i64().unwrap();
        let mean = conn
            .query(&format!("SELECT AVG(v) FROM scene_{sid}"))
            .unwrap()
            .scalar()
            .unwrap();
        println!("  {name:<8} scene {sid}: mean {mean}");
    }

    // --- symbiosis 3: structural grouping for a quality report ---------
    // Local 3×3 variance proxy (max - min per tile) on the best scene;
    // count rough cells — a derived-metadata product written back into a
    // relational table.
    conn.execute("CREATE TABLE quality (sid INT, rough_cells INT)")
        .unwrap();
    for sid in [100, 101, 102] {
        let rs = conn
            .query(&format!(
                "SELECT [x], [y], MAX(v) - MIN(v) AS spread FROM scene_{sid} \
                 GROUP BY scene_{sid}[x-1:x+2][y-1:y+2]"
            ))
            .unwrap();
        let rough_cells = rs
            .rows()
            .filter(|r| r[2].as_i64().unwrap_or(0) > 12)
            .count();
        conn.execute(&format!(
            "INSERT INTO quality VALUES ({sid}, {rough_cells})"
        ))
        .unwrap();
    }
    let report = conn
        .query(
            "SELECT s.sid AS sid, s.cloud AS cloud, q.rough_cells AS rough \
             FROM scenes s, quality q WHERE s.sid = q.sid ORDER BY sid",
        )
        .unwrap();
    println!("scene quality report (metadata ⋈ derived array statistics):");
    println!("{}", report.render());
}
