//! A look under the hood: the Fig 2 pipeline stage by stage.
//!
//! Shows (1) the Fig 3 storage layout produced by `array.series` /
//! `array.filler`, (2) a hand-written MAL program run through the
//! interpreter, and (3) what the optimizer pipeline removes.
//!
//! Run with: `cargo run --example mal_pipeline`

use gdk::{Bat, ScalarType, Value};
use mal::{Arg, EmptyBinder, Interpreter, MalType, OptConfig, Program};

fn main() {
    // --- Fig 3: the matrix stored as three BATs -----------------------
    println!("== Fig 3: CREATE ARRAY matrix → three BATs");
    let x = Bat::series(0, 1, 4, 4, 1).unwrap();
    let y = Bat::series(0, 1, 4, 1, 4).unwrap();
    let v = Bat::filler(16, &Value::Int(0)).unwrap();
    println!("  x: array.series(0,1,4,4,1) = {:?}", x.as_ints().unwrap());
    println!("  y: array.series(0,1,4,1,4) = {:?}", y.as_ints().unwrap());
    println!("  v: array.filler(16,0)      = {:?}", v.as_ints().unwrap());

    // --- A MAL program through the interpreter ------------------------
    println!("\n== a MAL program (sum of v over x > 1)");
    let mut p = Program::new("demo");
    let xv = p.emit(
        "array",
        "series",
        vec![
            Arg::Const(Value::Int(0)),
            Arg::Const(Value::Int(1)),
            Arg::Const(Value::Int(4)),
            Arg::Const(Value::Lng(4)),
            Arg::Const(Value::Lng(1)),
        ],
        MalType::Bat(ScalarType::Int),
    );
    let vv = p.emit(
        "array",
        "filler",
        vec![Arg::Const(Value::Lng(16)), Arg::Const(Value::Int(7))],
        MalType::Bat(ScalarType::Int),
    );
    let cand = p.emit(
        "algebra",
        "thetaselect",
        vec![
            Arg::Var(xv),
            Arg::Const(Value::Int(1)),
            Arg::Const(Value::Str(">".into())),
        ],
        MalType::Cand,
    );
    let vals = p.emit(
        "algebra",
        "projection",
        vec![Arg::Var(cand), Arg::Var(vv)],
        MalType::Bat(ScalarType::Int),
    );
    let sum = p.emit(
        "aggr",
        "sum",
        vec![Arg::Var(vals)],
        MalType::Scalar(ScalarType::Lng),
    );
    // dead code for the optimizer to find:
    let _unused = p.emit(
        "batcalc",
        "add",
        vec![Arg::Const(Value::Int(2)), Arg::Const(Value::Int(2))],
        MalType::Scalar(ScalarType::Int),
    );
    p.add_result("total", sum);
    println!("{}", p.to_text());

    let registry = mal::prims::default_registry();
    let interp = Interpreter::new(&registry, &EmptyBinder);
    let out = interp.run(&p).unwrap();
    println!("  result: total = {:?}", out[0].1.as_scalar().unwrap());

    // --- The optimizer pipeline ---------------------------------------
    println!("== after the optimizer pipeline");
    let report = mal::optimise(&mut p, &registry, OptConfig::default());
    println!("{}", p.to_text());
    println!(
        "  removed {} instructions (folded {}, cse {}, aliases {}, dead {})",
        report.total_removed(),
        report.folded,
        report.cse_hits,
        report.aliases_removed,
        report.dead_removed
    );
    let out = interp.run(&p).unwrap();
    println!("  same result: total = {:?}", out[0].1.as_scalar().unwrap());
}
