//! An interactive SciQL shell — the reproduction's counterpart of the
//! demo GUI ("the audience has full control of the demo through SciQL
//! queries") — built on the **unified driver API**: one
//! `Sciql::connect(url)` call, whatever the backend.
//!
//! Run with: `cargo run --example repl [-- <URL> | --listen <addr> [--db <path>]
//! [--metrics-addr <addr>] [--metrics-text]]`
//!
//! URLs:
//!   mem:                  fresh in-memory session (the default)
//!   file:<path>           durable session over the vault at <path> —
//!                         statements are write-ahead logged, `\checkpoint`
//!                         snapshots the columns, a later run resumes
//!                         where you left off (even after a crash)
//!   tcp://host:port       speak the wire protocol to a serving repl
//!
//! The legacy flags still work and map onto URLs: `--db <path>` ⇒
//! `file:<path>`, `--connect <addr>` ⇒ `tcp://<addr>`.
//!
//! With `--listen <addr>` (optionally plus `--db`) the process becomes a
//! `sciql-net` server instead: N concurrent clients share the engine —
//! reads on `Arc` column snapshots, writes serialized through the vault.
//! It runs until a client sends `\shutdown`.
//!
//! With `--replica-of <addr>` (plus `--db <path>` for the replica's own
//! vault) the process becomes a **read replica** of the server at
//! `<addr>`: it tails the primary's WAL over the wire and replays it
//! into a byte-identical local vault. Add `--listen <addr>` to also
//! serve the replica read-only to clients (writes are refused; reads
//! carrying a newer write token than the replica has applied wait
//! bounded, then fail with `replica lagging`). Without `--listen` it
//! just tails, printing its applied position until killed.
//!
//! With `--metrics-addr <addr>`
//! the server also exposes a plain-HTTP scrape endpoint: `GET /metrics`
//! serves the live Prometheus exposition, `GET /healthz` a health
//! report. The legacy `--metrics-text` flag (dump the same exposition
//! once, on shutdown) still works but is superseded by `--metrics-addr`;
//! clients can always fetch the snapshot live with `\metrics` or query
//! the `sys.metrics` view.
//!
//! Commands:
//!   <SciQL statement>;          execute (multi-line until ';')
//!   \prepare <name> <sql>;      prepare a statement (use ? or :name params)
//!   \exec <name> [v1 v2 …];     execute it with bound parameter values
//!   \explain <SELECT …>;        show plan + MAL (embedded only)
//!   \grid <SELECT …with [dims]>; render a coerced 2-D result as a grid
//!   \copy <target> <path> [csv|binary]  bulk-load a file into an array/table
//!                               (shorthand for COPY … FROM … (FORMAT …))
//!   \demo                       load the Fig 1 matrix and a small board
//!   \checkpoint                 write a vault checkpoint (file: only)
//!   \stats                      storage + vault counters (embedded only)
//!   \timing                     toggle per-statement wall time, thread counts,
//!                               optimizer stats and the plan-cache flag
//!                               (fetched over the wire when remote)
//!   \trace on|off               toggle per-statement span-tree tracing; each
//!                               statement then prints its trace (works over
//!                               tcp:// too — the server records, you fetch)
//!   \metrics                    engine-wide metrics snapshot (the server's
//!                               registry when remote)
//!   \slow <ms>|off              flag statements at least this slow in
//!                               sys.query_log and keep their span trace
//!                               (embedded only; servers set it via config)
//!   \history [n]                the last n (default 10) statements from the
//!                               sys.query_log view — works on any transport
//!   \ping                       round-trip probe
//!   \shutdown                   stop the remote server (tcp:// only)
//!   \q                          quit
//!
//! Pipe a script: `echo 'SELECT 1+1;' | cargo run --example repl`

use sciql_repro::driver::{Conn, Outcome, Sciql, Statement};
use sciql_repro::gdk::Value;
use sciql_repro::net::{MetricsEndpoint, Server, ServerConfig};
use sciql_repro::repl::Replica;
use sciql_repro::sciql::SharedEngine;
use std::collections::HashMap;
use std::io::{self, BufRead, Write};
use std::time::Instant;

fn main() {
    let mut db: Option<String> = None;
    let mut listen: Option<String> = None;
    let mut connect: Option<String> = None;
    let mut url: Option<String> = None;
    let mut metrics_addr: Option<String> = None;
    let mut metrics_text = false;
    let mut max_sessions: Option<String> = None;
    let mut max_result_bytes: Option<String> = None;
    let mut max_queued_writes: Option<String> = None;
    let mut no_group_commit = false;
    let mut replica_of: Option<String> = None;
    let usage = "usage: repl [<URL> | --listen <addr> [--db <path>] \
                 [--metrics-addr <addr>] [--metrics-text] \
                 [--max-sessions <n>] [--max-result-bytes <n>] \
                 [--max-queued-writes <n>] [--no-group-commit] \
                 | --replica-of <addr> --db <path> [--listen <addr>]]  \
                 (URL = mem: | file:<path> | tcp://host:port \
                 | tcp://primary,replica1,…)";
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let target = match a.as_str() {
            "--db" => &mut db,
            "--listen" => &mut listen,
            "--connect" => &mut connect,
            "--replica-of" => &mut replica_of,
            "--metrics-addr" => &mut metrics_addr,
            "--max-sessions" => &mut max_sessions,
            "--max-result-bytes" => &mut max_result_bytes,
            "--max-queued-writes" => &mut max_queued_writes,
            "--metrics-text" => {
                metrics_text = true;
                continue;
            }
            "--no-group-commit" => {
                no_group_commit = true;
                continue;
            }
            other if !other.starts_with('-') && url.is_none() => {
                url = Some(other.to_owned());
                continue;
            }
            other => {
                eprintln!("unknown argument {other:?} ({usage})");
                std::process::exit(2);
            }
        };
        *target = args.next();
        if target.is_none() {
            eprintln!("{a} needs a value ({usage})");
            std::process::exit(2);
        }
    }
    if (listen.is_some() || replica_of.is_some()) && (connect.is_some() || url.is_some()) {
        eprintln!("--listen/--replica-of start a server; they take no client URL ({usage})");
        std::process::exit(2);
    }

    if listen.is_some() || replica_of.is_some() {
        let parse_limit = |flag: &str, v: Option<String>| {
            v.map(|s| {
                s.parse::<usize>().unwrap_or_else(|_| {
                    eprintln!("{flag} needs an unsigned integer, got {s:?} ({usage})");
                    std::process::exit(2);
                })
            })
        };
        let mut config = ServerConfig::default();
        if let Some(n) = parse_limit("--max-sessions", max_sessions) {
            config.max_sessions = n;
        }
        if let Some(n) = parse_limit("--max-result-bytes", max_result_bytes) {
            config.max_result_bytes_per_session = n;
        }
        if let Some(n) = parse_limit("--max-queued-writes", max_queued_writes) {
            config.max_queued_writes = n;
        }
        config.group_commit = !no_group_commit;
        if let Some(primary) = replica_of {
            let Some(dir) = db else {
                eprintln!("--replica-of needs --db <path> for the replica's own vault ({usage})");
                std::process::exit(2);
            };
            serve_replica(
                &primary,
                &dir,
                listen.as_deref(),
                metrics_addr.as_deref(),
                metrics_text,
                config,
            );
        } else {
            serve(
                listen.as_deref().unwrap(),
                db.as_deref(),
                metrics_addr.as_deref(),
                metrics_text,
                config,
            );
        }
        return;
    }
    if metrics_text
        || metrics_addr.is_some()
        || max_sessions.is_some()
        || max_result_bytes.is_some()
        || max_queued_writes.is_some()
        || no_group_commit
    {
        eprintln!("server flags only apply to --listen servers ({usage})");
        std::process::exit(2);
    }

    // Everything below is one driver connection: the legacy flags just
    // pick the URL. Conflicting selections are an error, not a silent
    // preference — a user naming a vault must not land elsewhere.
    let url = match (url, connect, db) {
        (Some(_), Some(_), _) | (Some(_), _, Some(_)) => {
            eprintln!("give either a URL or the legacy --db/--connect flags, not both ({usage})");
            std::process::exit(2);
        }
        (None, Some(_), Some(_)) => {
            eprintln!(
                "--db opens a local vault; with --connect the database lives on the server ({usage})"
            );
            std::process::exit(2);
        }
        (Some(u), None, None) => u,
        (None, Some(addr), None) => format!("tcp://{addr}"),
        (None, None, Some(path)) => format!("file:{path}"),
        (None, None, None) => "mem:".to_owned(),
    };
    let conn = match Sciql::connect(&url) {
        Ok(c) => {
            println!("connected: {url} ({} transport)", c.transport_kind());
            c
        }
        Err(e) => {
            eprintln!("cannot connect to {url}: {e}");
            std::process::exit(1);
        }
    };
    repl_loop(conn);
}

/// `--listen`: serve the (optionally durable) engine until a client asks
/// for shutdown.
fn serve(
    addr: &str,
    db: Option<&str>,
    metrics_addr: Option<&str>,
    metrics_text: bool,
    config: ServerConfig,
) {
    let engine = match db {
        Some(path) => match SharedEngine::open(path) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("cannot open vault {path:?}: {e}");
                std::process::exit(1);
            }
        },
        None => SharedEngine::in_memory(),
    };
    let scrape = metrics_addr.map(|ma| {
        let endpoint = MetricsEndpoint::bind(std::sync::Arc::clone(&engine), ma)
            .and_then(|ep| ep.serve())
            .unwrap_or_else(|e| {
                eprintln!("cannot serve metrics on {ma}: {e}");
                std::process::exit(1);
            });
        println!(
            "metrics http on {} (GET /metrics, GET /healthz)",
            endpoint.addr()
        );
        endpoint
    });
    let server = match Server::bind_with_config(engine, addr, config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    let handle = match server.serve() {
        Ok(h) => h,
        Err(e) => {
            eprintln!("cannot serve: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "sciql-net serving on {} ({}); stop with \\shutdown from a client",
        handle.addr(),
        match db {
            Some(p) => format!("vault {p:?}"),
            None => "in-memory".into(),
        }
    );
    let engine = handle.wait();
    if let Some(scrape) = scrape {
        scrape.stop();
    }
    let stats = engine.stats();
    if engine.is_persistent() {
        match engine.checkpoint() {
            Ok(()) => println!("final checkpoint written"),
            Err(e) => eprintln!("final checkpoint failed: {e}"),
        }
    }
    println!(
        "server stopped: {} session(s), {} statement(s), {} snapshot read(s), {} row(s) served",
        stats.sessions_opened, stats.statements, stats.snapshot_reads, stats.rows_returned
    );
    if metrics_text {
        print!(
            "{}",
            sciql_repro::obs::global().snapshot().to_prometheus_text()
        );
    }
}

/// `--replica-of`: tail the primary into the vault at `dir`, optionally
/// serving it read-only on `listen`.
fn serve_replica(
    primary: &str,
    dir: &str,
    listen: Option<&str>,
    metrics_addr: Option<&str>,
    metrics_text: bool,
    config: ServerConfig,
) {
    let replica = match Replica::connect(dir, primary) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot start replica of {primary}: {e}");
            std::process::exit(1);
        }
    };
    let (generation, pos) = replica.applied();
    println!(
        "replica of {primary} over vault {dir:?} (resuming at generation {generation}, \
         {pos} WAL bytes)"
    );
    let scrape = metrics_addr.map(|ma| {
        let endpoint = MetricsEndpoint::bind(std::sync::Arc::clone(replica.engine()), ma)
            .and_then(|ep| ep.serve())
            .unwrap_or_else(|e| {
                eprintln!("cannot serve metrics on {ma}: {e}");
                std::process::exit(1);
            });
        println!(
            "metrics http on {} (GET /metrics, GET /healthz)",
            endpoint.addr()
        );
        endpoint
    });
    if let Some(addr) = listen {
        let engine = std::sync::Arc::clone(replica.engine());
        let server = match Server::bind_with_config(engine, addr, config) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot bind {addr}: {e}");
                std::process::exit(1);
            }
        };
        let handle = match server.serve() {
            Ok(h) => h,
            Err(e) => {
                eprintln!("cannot serve: {e}");
                std::process::exit(1);
            }
        };
        println!(
            "serving replica reads on {} (writes are refused); stop with \\shutdown from a client",
            handle.addr()
        );
        handle.wait();
    } else {
        // No listener: just keep the vault in sync, reporting progress,
        // until the process is killed.
        loop {
            std::thread::sleep(std::time::Duration::from_secs(2));
            let (generation, pos) = replica.applied();
            println!("replica applied: generation {generation}, {pos} WAL bytes");
        }
    }
    if let Some(scrape) = scrape {
        scrape.stop();
    }
    // Clean stop: detach the vault so the data dir's LOCK is released.
    replica.stop();
    println!("replica stopped");
    if metrics_text {
        print!(
            "{}",
            sciql_repro::obs::global().snapshot().to_prometheus_text()
        );
    }
}

fn repl_loop(mut conn: Conn) {
    let stdin = io::stdin();
    let mut buffer = String::new();
    let mut timing = false;
    let mut tracing = false;
    let mut prepared: HashMap<String, Statement> = HashMap::new();
    print!("SciQL> ");
    io::stdout().flush().ok();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let trimmed = line.trim();
        if buffer.is_empty() {
            match trimmed {
                "\\q" | "\\quit" | "exit" => {
                    conn.close().ok();
                    println!();
                    return;
                }
                "\\timing" => {
                    timing = !timing;
                    println!("timing is {}", if timing { "on" } else { "off" });
                    prompt();
                    continue;
                }
                "\\ping" => {
                    let t0 = Instant::now();
                    match conn.ping() {
                        Ok(()) => println!("pong ({:.3} ms)", ms_since(t0)),
                        Err(e) => println!("error: {e}"),
                    }
                    prompt();
                    continue;
                }
                "\\shutdown" => {
                    // Only exit on an actual remote shutdown; an
                    // embedded session refuses and keeps running.
                    match conn.shutdown_server() {
                        Ok(()) => {
                            println!("server is shutting down");
                            println!();
                            return;
                        }
                        Err(e) => println!("error: {e}"),
                    }
                    prompt();
                    continue;
                }
                "\\demo" => {
                    load_demo(&mut conn);
                    prompt();
                    continue;
                }
                "\\checkpoint" => {
                    match conn.checkpoint() {
                        Ok(()) => println!("checkpoint written"),
                        Err(e) => println!("error: {e}"),
                    }
                    prompt();
                    continue;
                }
                "\\stats" => {
                    match conn.storage_report() {
                        Ok(text) => print!("{text}"),
                        Err(e) => println!("error: {e}"),
                    }
                    prompt();
                    continue;
                }
                "\\metrics" => {
                    match conn.metrics() {
                        Ok(snap) => print!("{}", snap.render_table()),
                        Err(e) => println!("error: {e}"),
                    }
                    prompt();
                    continue;
                }
                "\\trace on" | "\\trace off" => {
                    let on = trimmed.ends_with("on");
                    match conn.set_tracing(on) {
                        Ok(()) => {
                            tracing = on;
                            println!("tracing is {}", if on { "on" } else { "off" });
                        }
                        Err(e) => println!("error: {e}"),
                    }
                    prompt();
                    continue;
                }
                "\\trace" => {
                    println!("usage: \\trace on|off");
                    prompt();
                    continue;
                }
                "\\slow" => {
                    println!("usage: \\slow <ms>|off");
                    prompt();
                    continue;
                }
                _ if trimmed.starts_with("\\slow ") => {
                    let arg = trimmed.trim_start_matches("\\slow ").trim();
                    let ns = if arg.eq_ignore_ascii_case("off") {
                        Some(0u64)
                    } else {
                        arg.parse::<u64>()
                            .ok()
                            .map(|ms| ms.saturating_mul(1_000_000))
                    };
                    match (ns, conn.embedded_connection()) {
                        (None, _) => println!("usage: \\slow <ms>|off"),
                        (Some(ns), Some(emb)) => {
                            emb.set_slow_query_ns(ns);
                            if ns == 0 {
                                println!("slow-query log is off");
                            } else {
                                println!(
                                    "statements >= {} ms are flagged slow in sys.query_log \
                                     (traces kept)",
                                    ns / 1_000_000
                                );
                            }
                        }
                        (Some(_), None) => println!(
                            "\\slow is embedded-only; a server sets slow_query_ns in its \
                             SessionConfig (query sys.query_log here to read the log)"
                        ),
                    }
                    prompt();
                    continue;
                }
                _ if trimmed == "\\history" || trimmed.starts_with("\\history ") => {
                    let n = trimmed
                        .trim_start_matches("\\history")
                        .trim()
                        .trim_end_matches(';');
                    let n: u64 = if n.is_empty() {
                        10
                    } else {
                        match n.parse() {
                            Ok(v) => v,
                            Err(_) => {
                                println!("usage: \\history [n]");
                                prompt();
                                continue;
                            }
                        }
                    };
                    // Plain SQL over the sys.query_log view, so the same
                    // command works embedded and over tcp://.
                    let sql = format!(
                        "SELECT id, session, kind, wall_ns, rows, slow, text \
                         FROM sys.query_log ORDER BY id DESC LIMIT {n}"
                    );
                    match conn.query(&sql) {
                        Ok(rows) => {
                            println!("{}", rows.result_set().render());
                            println!("{} row(s)", rows.row_count());
                        }
                        Err(e) => println!("error: {e}"),
                    }
                    prompt();
                    continue;
                }
                _ if trimmed.starts_with("\\explain ") => {
                    let sql = trimmed
                        .trim_start_matches("\\explain ")
                        .trim_end_matches(';');
                    match conn.explain(sql) {
                        Ok(text) => println!("{text}"),
                        Err(e) => println!("error: {e}"),
                    }
                    prompt();
                    continue;
                }
                _ if trimmed.starts_with("\\grid ") => {
                    let sql = trimmed.trim_start_matches("\\grid ").trim_end_matches(';');
                    let view = conn
                        .query(sql)
                        .and_then(|rows| Ok(rows.result_set().to_array_view()?));
                    match view.and_then(|v| Ok(v.render_grid()?)) {
                        Ok(grid) => println!("{grid}"),
                        Err(e) => println!("error: {e}"),
                    }
                    prompt();
                    continue;
                }
                _ if trimmed.starts_with("\\copy ") => {
                    let rest = trimmed.trim_start_matches("\\copy ").trim_end_matches(';');
                    let mut parts = rest.split_whitespace();
                    match (parts.next(), parts.next()) {
                        (Some(target), Some(path)) => {
                            let fmt = parts.next().unwrap_or("csv").to_ascii_lowercase();
                            if fmt != "csv" && fmt != "binary" {
                                println!("usage: \\copy <target> <path> [csv|binary]");
                                prompt();
                                continue;
                            }
                            let sql = format!(
                                "COPY {target} FROM '{}' (FORMAT {fmt})",
                                path.replace('\'', "''")
                            );
                            let t0 = Instant::now();
                            match conn.run(&sql) {
                                Ok(outcome) => {
                                    print_outcome(outcome);
                                    println!("copy took {:.3} ms", ms_since(t0));
                                }
                                Err(e) => println!("error: {e}"),
                            }
                        }
                        _ => println!("usage: \\copy <target> <path> [csv|binary]"),
                    }
                    prompt();
                    continue;
                }
                _ if trimmed.starts_with("\\prepare ") => {
                    let rest = trimmed
                        .trim_start_matches("\\prepare ")
                        .trim_end_matches(';');
                    match rest.split_once(' ') {
                        Some((name, sql)) => match conn.prepare(sql.trim()) {
                            Ok(stmt) => {
                                println!(
                                    "prepared {name:?} with {} parameter slot(s)",
                                    stmt.param_count()
                                );
                                prepared.insert(name.to_owned(), stmt);
                            }
                            Err(e) => println!("error: {e}"),
                        },
                        None => println!("usage: \\prepare <name> <sql>"),
                    }
                    prompt();
                    continue;
                }
                _ if trimmed.starts_with("\\exec ") => {
                    let rest = trimmed.trim_start_matches("\\exec ").trim_end_matches(';');
                    let mut parts = rest.split_whitespace();
                    match parts.next().and_then(|n| prepared.get(n).cloned()) {
                        Some(stmt) => {
                            let params: Vec<Value> = parts.map(parse_param).collect();
                            let t0 = Instant::now();
                            match conn.run_bound(&stmt, &params) {
                                Ok(outcome) => {
                                    print_outcome(outcome);
                                    if timing {
                                        print_timing(&mut conn, t0);
                                    }
                                    if tracing {
                                        print_trace(&mut conn);
                                    }
                                }
                                Err(e) => println!("error: {e}"),
                            }
                        }
                        None => println!("usage: \\exec <prepared-name> [value …]"),
                    }
                    prompt();
                    continue;
                }
                "" => {
                    prompt();
                    continue;
                }
                _ => {}
            }
        }
        buffer.push_str(&line);
        buffer.push('\n');
        if !line.contains(';') {
            print!("  ...> ");
            io::stdout().flush().ok();
            continue;
        }
        let script = std::mem::take(&mut buffer);
        run_script(&mut conn, &script, timing, tracing);
        prompt();
    }
    conn.close().ok();
    println!();
}

fn ms_since(t0: Instant) -> f64 {
    t0.elapsed().as_secs_f64() * 1e3
}

/// A `\exec` literal: integer, float, quoted or bare string, `null`.
fn parse_param(tok: &str) -> Value {
    if tok.eq_ignore_ascii_case("null") {
        return Value::Null;
    }
    if let Ok(i) = tok.parse::<i64>() {
        return Value::Lng(i);
    }
    if let Ok(f) = tok.parse::<f64>() {
        return Value::Dbl(f);
    }
    Value::Str(tok.trim_matches('\'').to_owned())
}

/// Execute a script and print results; with `timing`, print wall time
/// plus the transport-independent execution report; with `tracing`, the
/// span tree of the last statement.
fn run_script(conn: &mut Conn, script: &str, timing: bool, tracing: bool) {
    let t0 = Instant::now();
    for stmt in split_statements(script) {
        match conn.run(&stmt) {
            Ok(outcome) => print_outcome(outcome),
            Err(e) => println!("error: {e}"),
        }
    }
    if timing {
        print_timing(conn, t0);
    }
    if tracing {
        print_trace(conn);
    }
}

fn print_timing(conn: &mut Conn, t0: Instant) {
    let wall = ms_since(t0);
    // One renderer for every transport (see sciql_obs::report): an
    // embedded session and a tcp:// one print identical reports.
    match conn.last_report() {
        Ok(s) => print!(
            "{}",
            sciql_repro::obs::render_exec_summary(&s.summary(Some(wall)))
        ),
        Err(e) => println!("Time: {wall:.3} ms (report unavailable: {e})"),
    }
}

fn print_trace(conn: &mut Conn) {
    match conn.last_trace_text() {
        Ok(Some(text)) => println!("{text}"),
        Ok(None) => println!("no trace recorded"),
        Err(e) => println!("error: {e}"),
    }
}

fn print_outcome(outcome: Outcome) {
    match outcome {
        Outcome::Rows(rs) => {
            println!("{}", rs.render());
            println!("{} row(s)", rs.row_count());
        }
        Outcome::Affected(n) => println!("ok, {n} cell(s)/row(s)"),
    }
}

/// Split a script on top-level semicolons (quote-aware — the driver
/// executes one statement at a time, like the wire protocol).
fn split_statements(script: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for ch in script.chars() {
        match ch {
            '\'' => {
                in_str = !in_str;
                cur.push(ch);
            }
            ';' if !in_str => {
                if !cur.trim().is_empty() {
                    out.push(cur.trim().to_owned());
                }
                cur.clear();
            }
            _ => cur.push(ch),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_owned());
    }
    out
}

fn prompt() {
    print!("SciQL> ");
    io::stdout().flush().ok();
}

fn load_demo(conn: &mut Conn) {
    let script = "CREATE ARRAY matrix (x INT DIMENSION[0:1:4], y INT DIMENSION[0:1:4], \
                  v INT DEFAULT 0); \
                  UPDATE matrix SET v = CASE WHEN x > y THEN x + y \
                  WHEN x < y THEN x - y ELSE 0 END; \
                  CREATE ARRAY life (x INT DIMENSION[0:1:8], y INT DIMENSION[0:1:8], \
                  v INT DEFAULT 0); \
                  INSERT INTO life VALUES (2,1,1), (2,2,1), (2,3,1);";
    let loaded = split_statements(script)
        .iter()
        .try_for_each(|s| conn.run(s).map(|_| ()));
    match loaded {
        Ok(()) => println!(
            "loaded: matrix (Fig 1(b)) and life (8x8 board with a blinker).\n\
             try:  SELECT [x], [y], AVG(v) FROM matrix GROUP BY matrix[x:x+2][y:y+2];\n\
             or :  \\grid SELECT [x], [y], v FROM life\n\
             or :  \\prepare q SELECT COUNT(*) FROM matrix WHERE v >= ?; then \\exec q 2"
        ),
        Err(e) => println!("demo load failed: {e}"),
    }
}
