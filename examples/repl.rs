//! An interactive SciQL shell — the reproduction's counterpart of the
//! demo GUI ("the audience has full control of the demo through SciQL
//! queries").
//!
//! Run with: `cargo run --example repl [-- --db <path> | --listen <addr> | --connect <addr>]`
//!
//! With `--db <path>` the session is durable: statements are write-ahead
//! logged to the vault directory and `\checkpoint` snapshots the columns,
//! so a later `--db` run (even after a crash) resumes where you left off.
//!
//! With `--listen <addr>` (optionally plus `--db`) the process becomes a
//! `sciql-net` server: N concurrent clients share the engine — reads on
//! `Arc` column snapshots, writes serialized through the vault. It runs
//! until a client sends `\shutdown`.
//!
//! With `--connect <addr>` the shell speaks the wire protocol to such a
//! server instead of embedding the engine.
//!
//! Commands:
//!   <SciQL statement>;          execute (multi-line until ';')
//!   \explain <SELECT …>;        show plan + MAL (embedded only)
//!   \grid <SELECT …with [dims]>; render a coerced 2-D result as a grid
//!   \demo                       load the Fig 1 matrix and a small board
//!   \checkpoint                 write a vault checkpoint (needs --db)
//!   \stats                      storage + vault counters
//!   \timing                     toggle per-statement wall time, thread counts
//!                               and optimizer stats (eliminated/fused instrs,
//!                               bytes not materialized; fetched over the wire
//!                               with the Stats frame when connected)
//!   \ping                       round-trip probe (--connect only)
//!   \shutdown                   stop the remote server (--connect only)
//!   \q                          quit
//!
//! Pipe a script: `echo 'SELECT 1+1;' | cargo run --example repl`

use sciql::{Connection, QueryResult, SharedEngine};
use sciql_catalog::SchemaObject;
use sciql_net::{Client, NetReply, Server};
use std::io::{self, BufRead, Write};
use std::time::Instant;

/// Where statements go: an embedded engine or a remote server.
enum Backend {
    Embedded(Box<Connection>),
    Remote(Client),
}

fn main() {
    let mut db: Option<String> = None;
    let mut listen: Option<String> = None;
    let mut connect: Option<String> = None;
    let usage = "usage: repl [--db <path>] [--listen <addr> | --connect <addr>]";
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let target = match a.as_str() {
            "--db" => &mut db,
            "--listen" => &mut listen,
            "--connect" => &mut connect,
            other => {
                eprintln!("unknown argument {other:?} ({usage})");
                std::process::exit(2);
            }
        };
        *target = args.next();
        if target.is_none() {
            eprintln!("{a} needs a value ({usage})");
            std::process::exit(2);
        }
    }
    if listen.is_some() && connect.is_some() {
        eprintln!("--listen and --connect are mutually exclusive ({usage})");
        std::process::exit(2);
    }
    if db.is_some() && connect.is_some() {
        eprintln!(
            "--db opens a local vault; with --connect the database lives on the server ({usage})"
        );
        std::process::exit(2);
    }

    if let Some(addr) = listen {
        serve(&addr, db.as_deref());
        return;
    }

    let backend = match connect {
        Some(addr) => match Client::connect_named(&addr, "sciql-repl") {
            Ok(c) => {
                println!(
                    "connected to {} at {addr} (session {})",
                    c.server_name(),
                    c.session_id()
                );
                Backend::Remote(c)
            }
            Err(e) => {
                eprintln!("cannot connect to {addr}: {e}");
                std::process::exit(1);
            }
        },
        None => Backend::Embedded(Box::new(open_embedded(db.as_deref()))),
    };
    repl_loop(backend);
}

/// `--listen`: serve the (optionally durable) engine until a client asks
/// for shutdown.
fn serve(addr: &str, db: Option<&str>) {
    let engine = match db {
        Some(path) => match SharedEngine::open(path) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("cannot open vault {path:?}: {e}");
                std::process::exit(1);
            }
        },
        None => SharedEngine::in_memory(),
    };
    let server = match Server::bind(engine, addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    let handle = match server.serve() {
        Ok(h) => h,
        Err(e) => {
            eprintln!("cannot serve: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "sciql-net serving on {} ({}); stop with \\shutdown from a client",
        handle.addr(),
        match db {
            Some(p) => format!("vault {p:?}"),
            None => "in-memory".into(),
        }
    );
    let engine = handle.wait();
    let stats = engine.stats();
    if engine.is_persistent() {
        match engine.checkpoint() {
            Ok(()) => println!("final checkpoint written"),
            Err(e) => eprintln!("final checkpoint failed: {e}"),
        }
    }
    println!(
        "server stopped: {} session(s), {} statement(s), {} snapshot read(s), {} row(s) served",
        stats.sessions_opened, stats.statements, stats.snapshot_reads, stats.rows_returned
    );
}

fn open_embedded(db: Option<&str>) -> Connection {
    match db {
        Some(path) => match Connection::open(path) {
            Ok(c) => {
                println!(
                    "opened vault {path:?} ({} objects recovered)",
                    c.catalog().len()
                );
                c
            }
            Err(e) => {
                eprintln!("cannot open vault {path:?}: {e}");
                std::process::exit(1);
            }
        },
        None => Connection::new(),
    }
}

fn repl_loop(mut backend: Backend) {
    let stdin = io::stdin();
    let mut buffer = String::new();
    let mut timing = false;
    print!("SciQL> ");
    io::stdout().flush().ok();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let trimmed = line.trim();
        if buffer.is_empty() {
            match trimmed {
                "\\q" | "\\quit" | "exit" => {
                    if let Backend::Remote(c) = backend {
                        c.close().ok();
                    }
                    println!();
                    return;
                }
                "\\timing" => {
                    timing = !timing;
                    println!("timing is {}", if timing { "on" } else { "off" });
                    prompt();
                    continue;
                }
                "\\ping" => {
                    match &mut backend {
                        Backend::Remote(c) => {
                            let t0 = Instant::now();
                            match c.ping() {
                                Ok(()) => println!("pong ({:.3} ms)", ms_since(t0)),
                                Err(e) => println!("error: {e}"),
                            }
                        }
                        Backend::Embedded(_) => println!("\\ping needs --connect"),
                    }
                    prompt();
                    continue;
                }
                "\\shutdown" => {
                    match backend {
                        Backend::Remote(c) => {
                            match c.shutdown_server() {
                                Ok(()) => println!("server is shutting down"),
                                Err(e) => println!("error: {e}"),
                            }
                            println!();
                            return;
                        }
                        Backend::Embedded(_) => {
                            println!("\\shutdown needs --connect");
                            prompt();
                            continue;
                        }
                    };
                }
                "\\demo" => {
                    load_demo(&mut backend);
                    prompt();
                    continue;
                }
                "\\checkpoint" => {
                    match &mut backend {
                        Backend::Embedded(conn) => match conn.checkpoint() {
                            Ok(()) => {
                                let s = conn.vault_stats().expect("persistent after checkpoint");
                                println!("checkpoint written (generation {})", s.generation);
                            }
                            Err(e) => println!("error: {e}"),
                        },
                        Backend::Remote(_) => println!("\\checkpoint runs on the server side"),
                    }
                    prompt();
                    continue;
                }
                "\\stats" => {
                    match &backend {
                        Backend::Embedded(conn) => print_stats(conn),
                        Backend::Remote(_) => println!("\\stats needs an embedded session"),
                    }
                    prompt();
                    continue;
                }
                _ if trimmed.starts_with("\\explain ") => {
                    let sql = trimmed
                        .trim_start_matches("\\explain ")
                        .trim_end_matches(';');
                    match &backend {
                        Backend::Embedded(conn) => match conn.explain(sql) {
                            Ok(text) => println!("{text}"),
                            Err(e) => println!("error: {e}"),
                        },
                        Backend::Remote(_) => println!("\\explain needs an embedded session"),
                    }
                    prompt();
                    continue;
                }
                _ if trimmed.starts_with("\\grid ") => {
                    let sql = trimmed.trim_start_matches("\\grid ").trim_end_matches(';');
                    let view = match &mut backend {
                        Backend::Embedded(conn) => conn.query_array(sql),
                        Backend::Remote(c) => c
                            .query(sql)
                            .map_err(|e| sciql::EngineError::msg(e.to_string()))
                            .and_then(|rs| rs.to_array_view()),
                    };
                    match view.and_then(|v| v.render_grid()) {
                        Ok(grid) => println!("{grid}"),
                        Err(e) => println!("error: {e}"),
                    }
                    prompt();
                    continue;
                }
                "" => {
                    prompt();
                    continue;
                }
                _ => {}
            }
        }
        buffer.push_str(&line);
        buffer.push('\n');
        if !line.contains(';') {
            print!("  ...> ");
            io::stdout().flush().ok();
            continue;
        }
        let script = std::mem::take(&mut buffer);
        run_script(&mut backend, &script, timing);
        prompt();
    }
    if let Backend::Remote(c) = backend {
        c.close().ok();
    }
    println!();
}

fn ms_since(t0: Instant) -> f64 {
    t0.elapsed().as_secs_f64() * 1e3
}

/// Execute a script and print results; with `timing`, print per-script
/// wall time plus the engine's per-instruction thread counters
/// (embedded) or the round-trip time (remote).
fn run_script(backend: &mut Backend, script: &str, timing: bool) {
    let t0 = Instant::now();
    match backend {
        Backend::Embedded(conn) => match conn.execute_script(script) {
            Ok(results) => {
                let wall = ms_since(t0);
                for r in results {
                    print_result(r);
                }
                if timing {
                    let le = conn.last_exec();
                    let e = &le.exec;
                    println!(
                        "Time: {wall:.3} ms ({} instr, {} parallel, max {} thread(s))",
                        e.instructions, e.par_instructions, e.max_threads
                    );
                    println!(
                        "Opt:  {} -> {} instr ({} eliminated, {} fused); \
                         {} intermediate(s) not materialized ({} bytes)",
                        le.instrs_before_opt,
                        le.instrs_after_opt,
                        le.opt.total_removed(),
                        le.opt.fusions(),
                        e.intermediates_avoided,
                        e.bytes_not_materialized
                    );
                }
            }
            Err(e) => println!("error: {e}"),
        },
        Backend::Remote(client) => {
            // The wire protocol is one statement per Query frame.
            for stmt in split_statements(script) {
                match client.execute(&stmt) {
                    Ok(NetReply::Rows(rs)) => {
                        println!("{}", rs.render());
                        println!("{} row(s)", rs.row_count());
                    }
                    Ok(NetReply::Affected(n)) => println!("ok, {n} cell(s)/row(s)"),
                    Err(e) => println!("error: {e}"),
                }
            }
            if timing {
                println!("Time: {:.3} ms (round trip)", ms_since(t0));
                // The server keeps the last statement's execution report;
                // fetch it so remote \timing matches embedded \timing.
                if let Ok(s) = client.last_stats() {
                    println!(
                        "Opt:  {} -> {} instr ({} eliminated, {} fused); \
                         {} intermediate(s) not materialized ({} bytes); \
                         {} instr executed, {} parallel, max {} thread(s)",
                        s.instrs_before_opt,
                        s.instrs_after_opt,
                        s.eliminated,
                        s.fused,
                        s.intermediates_avoided,
                        s.bytes_not_materialized,
                        s.instructions,
                        s.par_instructions,
                        s.max_threads
                    );
                }
            }
        }
    }
}

fn print_result(r: QueryResult) {
    match r {
        QueryResult::Rows(rs) => {
            println!("{}", rs.render());
            println!("{} row(s)", rs.row_count());
        }
        QueryResult::Affected(n) => println!("ok, {n} cell(s)/row(s)"),
    }
}

/// Split a script on top-level semicolons (quote-aware, like the server
/// expects single statements per frame).
fn split_statements(script: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for ch in script.chars() {
        match ch {
            '\'' => {
                in_str = !in_str;
                cur.push(ch);
            }
            ';' if !in_str => {
                if !cur.trim().is_empty() {
                    out.push(cur.trim().to_owned());
                }
                cur.clear();
            }
            _ => cur.push(ch),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_owned());
    }
    out
}

fn prompt() {
    print!("SciQL> ");
    io::stdout().flush().ok();
}

fn print_stats(conn: &Connection) {
    if conn.catalog().is_empty() {
        println!("no schema objects");
    }
    for obj in conn.catalog().iter() {
        match obj {
            SchemaObject::Array(a) => match conn.array_store(&a.name) {
                Ok(s) => println!(
                    "array {:<12} {} dims, {} attrs, {} cells, {} dirty column(s)",
                    a.name,
                    a.dims.len(),
                    a.attrs.len(),
                    s.cell_count(),
                    s.dirty_columns()
                ),
                Err(_) => println!("array {:<12} (unbounded, not materialised)", a.name),
            },
            SchemaObject::Table(t) => {
                let s = conn.table_store(&t.name).expect("tables always stored");
                println!(
                    "table {:<12} {} columns, {} rows, {} dirty column(s)",
                    t.name,
                    t.columns.len(),
                    s.row_count(),
                    s.dirty_columns()
                );
            }
        }
    }
    match conn.vault_stats() {
        Some(v) => println!(
            "vault: generation {}, {} WAL record(s) ({} bytes), {} column file(s)",
            v.generation, v.wal_records, v.wal_bytes, v.column_files
        ),
        None => println!("vault: none (in-memory session; restart with --db <path>)"),
    }
}

fn load_demo(backend: &mut Backend) {
    let script = "CREATE ARRAY matrix (x INT DIMENSION[0:1:4], y INT DIMENSION[0:1:4], \
                  v INT DEFAULT 0); \
                  UPDATE matrix SET v = CASE WHEN x > y THEN x + y \
                  WHEN x < y THEN x - y ELSE 0 END; \
                  CREATE ARRAY life (x INT DIMENSION[0:1:8], y INT DIMENSION[0:1:8], \
                  v INT DEFAULT 0); \
                  INSERT INTO life VALUES (2,1,1), (2,2,1), (2,3,1);";
    let loaded = match backend {
        Backend::Embedded(conn) => conn
            .execute_script(script)
            .map(|_| ())
            .map_err(|e| e.to_string()),
        Backend::Remote(c) => split_statements(script)
            .iter()
            .try_for_each(|s| c.execute(s).map(|_| ()))
            .map_err(|e| e.to_string()),
    };
    match loaded {
        Ok(()) => println!(
            "loaded: matrix (Fig 1(b)) and life (8x8 board with a blinker).\n\
             try:  SELECT [x], [y], AVG(v) FROM matrix GROUP BY matrix[x:x+2][y:y+2];\n\
             or :  \\grid SELECT [x], [y], v FROM life"
        ),
        Err(e) => println!("demo load failed: {e}"),
    }
}
