//! An interactive SciQL shell — the reproduction's counterpart of the
//! demo GUI ("the audience has full control of the demo through SciQL
//! queries").
//!
//! Run with: `cargo run --example repl [-- --db <path>]`
//!
//! With `--db <path>` the session is durable: statements are write-ahead
//! logged to the vault directory and `\checkpoint` snapshots the columns,
//! so a later `--db` run (even after a crash) resumes where you left off.
//!
//! Commands:
//!   <SciQL statement>;          execute (multi-line until ';')
//!   \explain <SELECT …>;        show plan + MAL (no trailing ';' needed)
//!   \grid <SELECT …with [dims]>; render a coerced 2-D result as a grid
//!   \demo                       load the Fig 1 matrix and a small board
//!   \checkpoint                 write a vault checkpoint (needs --db)
//!   \stats                      storage + vault counters
//!   \q                          quit
//!
//! Pipe a script: `echo 'SELECT 1+1;' | cargo run --example repl`

use sciql::{Connection, QueryResult};
use sciql_catalog::SchemaObject;
use std::io::{self, BufRead, Write};

fn main() {
    let mut db: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--db" => {
                db = args.next();
                if db.is_none() {
                    eprintln!("--db needs a path (usage: repl [--db <path>])");
                    std::process::exit(2);
                }
            }
            other => {
                eprintln!("unknown argument {other:?} (usage: repl [--db <path>])");
                std::process::exit(2);
            }
        }
    }
    let mut conn = match &db {
        Some(path) => match Connection::open(path) {
            Ok(c) => {
                println!(
                    "opened vault {path:?} ({} objects recovered)",
                    c.catalog().len()
                );
                c
            }
            Err(e) => {
                eprintln!("cannot open vault {path:?}: {e}");
                std::process::exit(1);
            }
        },
        None => Connection::new(),
    };
    let stdin = io::stdin();
    let mut buffer = String::new();
    print!("SciQL> ");
    io::stdout().flush().ok();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let trimmed = line.trim();
        if buffer.is_empty() {
            match trimmed {
                "\\q" | "\\quit" | "exit" => break,
                "\\demo" => {
                    load_demo(&mut conn);
                    prompt();
                    continue;
                }
                "\\checkpoint" => {
                    match conn.checkpoint() {
                        Ok(()) => {
                            let s = conn.vault_stats().expect("persistent after checkpoint");
                            println!("checkpoint written (generation {})", s.generation);
                        }
                        Err(e) => println!("error: {e}"),
                    }
                    prompt();
                    continue;
                }
                "\\stats" => {
                    print_stats(&conn);
                    prompt();
                    continue;
                }
                _ if trimmed.starts_with("\\explain ") => {
                    let sql = trimmed
                        .trim_start_matches("\\explain ")
                        .trim_end_matches(';');
                    match conn.explain(sql) {
                        Ok(text) => println!("{text}"),
                        Err(e) => println!("error: {e}"),
                    }
                    prompt();
                    continue;
                }
                _ if trimmed.starts_with("\\grid ") => {
                    let sql = trimmed.trim_start_matches("\\grid ").trim_end_matches(';');
                    match conn.query_array(sql).and_then(|v| v.render_grid()) {
                        Ok(grid) => println!("{grid}"),
                        Err(e) => println!("error: {e}"),
                    }
                    prompt();
                    continue;
                }
                "" => {
                    prompt();
                    continue;
                }
                _ => {}
            }
        }
        buffer.push_str(&line);
        buffer.push('\n');
        if !line.contains(';') {
            print!("  ...> ");
            io::stdout().flush().ok();
            continue;
        }
        let script = std::mem::take(&mut buffer);
        match conn.execute_script(&script) {
            Ok(results) => {
                for r in results {
                    match r {
                        QueryResult::Rows(rs) => {
                            println!("{}", rs.render());
                            println!("{} row(s)", rs.row_count());
                        }
                        QueryResult::Affected(n) => println!("ok, {n} cell(s)/row(s)"),
                    }
                }
            }
            Err(e) => println!("error: {e}"),
        }
        prompt();
    }
    println!();
}

fn prompt() {
    print!("SciQL> ");
    io::stdout().flush().ok();
}

fn print_stats(conn: &Connection) {
    if conn.catalog().is_empty() {
        println!("no schema objects");
    }
    for obj in conn.catalog().iter() {
        match obj {
            SchemaObject::Array(a) => match conn.array_store(&a.name) {
                Ok(s) => println!(
                    "array {:<12} {} dims, {} attrs, {} cells, {} dirty column(s)",
                    a.name,
                    a.dims.len(),
                    a.attrs.len(),
                    s.cell_count(),
                    s.dirty_columns()
                ),
                Err(_) => println!("array {:<12} (unbounded, not materialised)", a.name),
            },
            SchemaObject::Table(t) => {
                let s = conn.table_store(&t.name).expect("tables always stored");
                println!(
                    "table {:<12} {} columns, {} rows, {} dirty column(s)",
                    t.name,
                    t.columns.len(),
                    s.row_count(),
                    s.dirty_columns()
                );
            }
        }
    }
    match conn.vault_stats() {
        Some(v) => println!(
            "vault: generation {}, {} WAL record(s) ({} bytes), {} column file(s)",
            v.generation, v.wal_records, v.wal_bytes, v.column_files
        ),
        None => println!("vault: none (in-memory session; restart with --db <path>)"),
    }
}

fn load_demo(conn: &mut Connection) {
    let script = "CREATE ARRAY matrix (x INT DIMENSION[0:1:4], y INT DIMENSION[0:1:4], \
                  v INT DEFAULT 0); \
                  UPDATE matrix SET v = CASE WHEN x > y THEN x + y \
                  WHEN x < y THEN x - y ELSE 0 END; \
                  CREATE ARRAY life (x INT DIMENSION[0:1:8], y INT DIMENSION[0:1:8], \
                  v INT DEFAULT 0); \
                  INSERT INTO life VALUES (2,1,1), (2,2,1), (2,3,1);";
    match conn.execute_script(script) {
        Ok(_) => println!(
            "loaded: matrix (Fig 1(b)) and life (8x8 board with a blinker).\n\
             try:  SELECT [x], [y], AVG(v) FROM matrix GROUP BY matrix[x:x+2][y:y+2];\n\
             or :  \\grid SELECT [x], [y], v FROM life"
        ),
        Err(e) => println!("demo load failed: {e}"),
    }
}
