//! Demo Scenario II: in-database image processing with SciQL.
//!
//! Loads two synthetic images (a building facade and a remote-sensing
//! terrain — stand-ins for the demo's TELEIOS GeoTIFFs), runs all twelve
//! demo operations as SciQL queries, verifies them against native
//! baselines, and writes the results as PGM files under `target/demo/`.
//!
//! Run with: `cargo run --example image_processing`

use sciql_imaging::{ops, pgm, synth, GreyImage, SciqlImages};
use std::path::PathBuf;

fn save(dir: &std::path::Path, name: &str, img: &GreyImage) {
    let mut img = img.clone();
    img.clamp_u8();
    let path = dir.join(format!("{name}.pgm"));
    pgm::save_pgm(&img, &path).expect("write PGM");
    println!(
        "  {name:<12} {}x{} mean={:6.1}  → {}",
        img.width,
        img.height,
        img.mean(),
        path.display()
    );
}

fn main() {
    let dir = PathBuf::from("target/demo");
    std::fs::create_dir_all(&dir).expect("mkdir");

    let building = synth::building(96, 72, 42);
    let terrain = synth::terrain(96, 72, 43);
    let mask = synth::ellipse_mask(96, 72);

    let mut s = SciqlImages::new();
    s.load("grey", &building).expect("vault load grey");
    s.load("rs", &terrain).expect("vault load remote-sensing");
    s.load("mask", &mask).expect("vault load mask");

    println!("grey-scale image pipeline (building):");
    save(&dir, "grey", &building);
    let inv = s.invert("grey").unwrap();
    assert_eq!(inv, ops::invert(&building));
    save(&dir, "invert", &inv);
    let edge = s.edges("grey").unwrap();
    assert_eq!(edge, ops::edges(&building));
    save(&dir, "edges", &edge);
    let smooth = s.smooth("grey").unwrap();
    assert_eq!(smooth, ops::smooth(&building));
    save(&dir, "smooth", &smooth);
    let reduced = s.reduce("grey").unwrap();
    assert_eq!(reduced, ops::reduce(&building));
    save(&dir, "reduce", &reduced);
    let rotated = s.rotate90("grey").unwrap();
    assert_eq!(rotated, ops::rotate90(&building));
    save(&dir, "rotate", &rotated);

    println!("remote-sensing image pipeline (terrain):");
    save(&dir, "rs", &terrain);
    let water = s.filter_water("rs", synth::WATER_LEVEL).unwrap();
    assert_eq!(water, ops::filter_water(&terrain, synth::WATER_LEVEL));
    save(&dir, "water", &water);
    let hist = s.histogram("rs", 32).unwrap();
    assert_eq!(hist, ops::histogram(&terrain, 32));
    println!("  histogram (bin width 32): {hist:?}");
    let zoomed = s.zoom("rs", 24, 72, 18, 54).unwrap();
    assert_eq!(zoomed, ops::zoom(&terrain, 24, 72, 18, 54));
    save(&dir, "zoom", &zoomed);
    let bright = s.brighten("rs", 40).unwrap();
    assert_eq!(bright, ops::brighten(&terrain, 40));
    save(&dir, "brighten", &bright);

    // AreasOfInterest, both ways.
    let by_mask = s.mask_select("rs", "mask").unwrap();
    println!(
        "  areas-of-interest by bit mask: {} of {} pixels selected",
        by_mask.len(),
        terrain.pixels.len()
    );
    let boxes = [(10usize, 40usize, 10usize, 40usize), (60, 90, 30, 60)];
    let by_boxes = s.bbox_select("rs", &boxes).unwrap();
    println!(
        "  areas-of-interest by bounding-box table: {} pixels from {} boxes",
        by_boxes.len(),
        boxes.len()
    );
    assert_eq!(by_boxes.len(), ops::bbox_select(&terrain, &boxes).len());

    println!("all 12 operations ran as SciQL queries and matched the native baselines.");
}
