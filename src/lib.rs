//! Umbrella crate for the SciQL reproduction workspace: the unified
//! [`driver`] API (one `connect(url)` surface with bound-parameter
//! prepared statements over embedded and network transports), plus
//! re-exports of every layer for examples and integration tests.

#![warn(missing_docs)]

pub mod driver;

pub use gdk;
pub use mal;
pub use sciql;
pub use sciql_algebra as algebra;
pub use sciql_catalog as catalog;
pub use sciql_imaging as imaging;
pub use sciql_life as life;
pub use sciql_net as net;
pub use sciql_obs as obs;
pub use sciql_parser as parser;
pub use sciql_repl as repl;
pub use sciql_store as store;
