//! The unified SciQL driver: **one** connection surface over every
//! transport the workspace offers.
//!
//! [`Sciql::connect`] takes a URL and returns a [`Conn`] backed by a
//! [`Transport`] trait object:
//!
//! | URL | backend |
//! |-----|---------|
//! | `mem:` | embedded in-memory [`sciql::Connection`] |
//! | `file:<path>` | embedded durable connection over the vault at `<path>` (WAL + checkpoints + crash recovery) |
//! | `tcp://host:port` | remote [`sciql_net::Client`] speaking protocol v6 |
//! | `tcp://primary,replica1,…` | routed: writes to the primary, SELECTs round-robin over the replicas with monotonic-read tokens |
//!
//! A fourth backend, [`Sciql::attach`], opens a session on an in-process
//! [`sciql::SharedEngine`] (many concurrent driver connections over one
//! shared database).
//!
//! Whatever the transport, the API is the same: `execute` for DDL/DML,
//! `query` for SELECTs returning a [`Rows`] cursor with typed
//! [`Row::get`] accessors, and **bound-parameter prepared statements** —
//! [`Conn::prepare`] compiles a statement with `?` / `:name`
//! placeholders once, and each [`Conn::query_bound`] /
//! [`Conn::execute_bound`] fills the parameter slots without re-parsing
//! or re-optimising (embedded: an in-process plan cache; remote:
//! `Bind`/`ExecBound` frames against the server's cache). Errors from
//! every layer unify into [`SciqlError`] with stable [`ErrorCode`]s, so
//! a parse error looks the same whether it happened in-process or on a
//! server.
//!
//! ```
//! use sciql_repro::driver::Sciql;
//! use sciql_repro::params;
//!
//! let mut conn = Sciql::connect("mem:").unwrap();
//! conn.execute("CREATE ARRAY m (x INT DIMENSION[0:1:4], y INT DIMENSION[0:1:4], \
//!               v INT DEFAULT 0)").unwrap();
//! conn.execute("UPDATE m SET v = x + y").unwrap();
//! let stmt = conn.prepare("SELECT COUNT(*) FROM m WHERE v < ?").unwrap();
//! let mut rows = conn.query_bound(&stmt, params![3]).unwrap();
//! let n: i64 = rows.next_row().unwrap().get(0).unwrap();
//! assert_eq!(n, 6); // cells with x + y < 3
//! ```

use gdk::Value;
use sciql::{
    Connection, EngineSession, ErrorCode, QueryResult, ResultSet, SessionConfig, SharedEngine,
};
use sciql_net::{Client, NetError, NetReply};
use sciql_parser::ast::ParamRef;
use std::fmt;
use std::sync::Arc;

/// Driver result type.
pub type Result<T> = std::result::Result<T, SciqlError>;

// ---------------------------------------------------------------------
// errors
// ---------------------------------------------------------------------

/// The unified driver error: every failure from every layer — parser,
/// binder, catalog, interpreter, kernels, durable store, wire protocol —
/// maps into one of these variants, and each variant corresponds to
/// exactly one stable [`ErrorCode`]. The mapping is
/// transport-independent: a server-side parse error surfaces as the same
/// [`SciqlError::Parse`] an embedded session produces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SciqlError {
    /// Lexical or syntax error ([`ErrorCode::Parse`]).
    Parse(String),
    /// Name resolution / type-check error ([`ErrorCode::Bind`]).
    Bind(String),
    /// Unknown or duplicate schema object ([`ErrorCode::Catalog`]).
    Catalog(String),
    /// Runtime execution error ([`ErrorCode::Exec`]).
    Exec(String),
    /// BAT kernel error ([`ErrorCode::Kernel`]).
    Kernel(String),
    /// Durable-store error ([`ErrorCode::Storage`]).
    Storage(String),
    /// Bind-parameter error: unbound slot, uncoercible value, unknown
    /// `:name` ([`ErrorCode::Param`]).
    Param(String),
    /// Statement-level misuse ([`ErrorCode::Statement`]).
    Statement(String),
    /// Network I/O failure ([`ErrorCode::Io`]).
    Io(String),
    /// Wire-protocol violation ([`ErrorCode::Protocol`]).
    Protocol(String),
    /// Protocol version mismatch ([`ErrorCode::Version`]).
    Version(String),
    /// Driver misuse: bad URL, wrong result shape, closed connection
    /// ([`ErrorCode::Connection`]).
    Connection(String),
    /// Admission control refused the request — session limit or full
    /// write queue; safe to retry ([`ErrorCode::ServerBusy`]).
    ServerBusy(String),
    /// A per-session resource quota was exceeded
    /// ([`ErrorCode::QuotaExceeded`]).
    QuotaExceeded(String),
    /// A replica could not satisfy a monotonic-read token within its
    /// bounded wait — retry, or read from the primary
    /// ([`ErrorCode::ReplicaLagging`]).
    ReplicaLagging(String),
    /// Anything that should not happen ([`ErrorCode::Internal`]).
    Internal(String),
}

impl SciqlError {
    /// The stable error code of this variant.
    pub fn code(&self) -> ErrorCode {
        match self {
            SciqlError::Parse(_) => ErrorCode::Parse,
            SciqlError::Bind(_) => ErrorCode::Bind,
            SciqlError::Catalog(_) => ErrorCode::Catalog,
            SciqlError::Exec(_) => ErrorCode::Exec,
            SciqlError::Kernel(_) => ErrorCode::Kernel,
            SciqlError::Storage(_) => ErrorCode::Storage,
            SciqlError::Param(_) => ErrorCode::Param,
            SciqlError::Statement(_) => ErrorCode::Statement,
            SciqlError::Io(_) => ErrorCode::Io,
            SciqlError::Protocol(_) => ErrorCode::Protocol,
            SciqlError::Version(_) => ErrorCode::Version,
            SciqlError::Connection(_) => ErrorCode::Connection,
            SciqlError::ServerBusy(_) => ErrorCode::ServerBusy,
            SciqlError::QuotaExceeded(_) => ErrorCode::QuotaExceeded,
            SciqlError::ReplicaLagging(_) => ErrorCode::ReplicaLagging,
            SciqlError::Internal(_) => ErrorCode::Internal,
        }
    }

    /// The error message without the code prefix.
    pub fn message(&self) -> &str {
        match self {
            SciqlError::Parse(m)
            | SciqlError::Bind(m)
            | SciqlError::Catalog(m)
            | SciqlError::Exec(m)
            | SciqlError::Kernel(m)
            | SciqlError::Storage(m)
            | SciqlError::Param(m)
            | SciqlError::Statement(m)
            | SciqlError::Io(m)
            | SciqlError::Protocol(m)
            | SciqlError::Version(m)
            | SciqlError::Connection(m)
            | SciqlError::ServerBusy(m)
            | SciqlError::QuotaExceeded(m)
            | SciqlError::ReplicaLagging(m)
            | SciqlError::Internal(m) => m,
        }
    }

    /// Build the variant matching a stable code (the wire → driver
    /// direction).
    pub fn from_code(code: ErrorCode, message: impl Into<String>) -> SciqlError {
        let m = message.into();
        match code {
            ErrorCode::Parse => SciqlError::Parse(m),
            ErrorCode::Bind => SciqlError::Bind(m),
            ErrorCode::Catalog => SciqlError::Catalog(m),
            ErrorCode::Exec => SciqlError::Exec(m),
            ErrorCode::Kernel => SciqlError::Kernel(m),
            ErrorCode::Storage => SciqlError::Storage(m),
            ErrorCode::Param => SciqlError::Param(m),
            ErrorCode::Statement => SciqlError::Statement(m),
            ErrorCode::Io => SciqlError::Io(m),
            ErrorCode::Protocol => SciqlError::Protocol(m),
            ErrorCode::Version => SciqlError::Version(m),
            ErrorCode::Connection => SciqlError::Connection(m),
            ErrorCode::ServerBusy => SciqlError::ServerBusy(m),
            ErrorCode::QuotaExceeded => SciqlError::QuotaExceeded(m),
            ErrorCode::ReplicaLagging => SciqlError::ReplicaLagging(m),
            ErrorCode::Internal => SciqlError::Internal(m),
        }
    }
}

impl fmt::Display for SciqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.code(), self.message())
    }
}

impl std::error::Error for SciqlError {}

impl From<sciql::EngineError> for SciqlError {
    fn from(e: sciql::EngineError) -> Self {
        SciqlError::from_code(e.code(), e.to_string())
    }
}

impl From<NetError> for SciqlError {
    fn from(e: NetError) -> Self {
        SciqlError::from_code(e.code(), e.to_string())
    }
}

// ---------------------------------------------------------------------
// transports
// ---------------------------------------------------------------------

/// A statement's outcome, transport-independent.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// DDL/DML: affected cells/rows.
    Affected(u64),
    /// SELECT: a result set.
    Rows(ResultSet),
}

impl Outcome {
    fn from_query_result(r: QueryResult) -> Outcome {
        match r {
            QueryResult::Affected(n) => Outcome::Affected(n as u64),
            QueryResult::Rows(rs) => Outcome::Rows(rs),
        }
    }

    fn from_net_reply(r: NetReply) -> Outcome {
        match r {
            NetReply::Affected(n) => Outcome::Affected(n),
            NetReply::Rows(rs) => Outcome::Rows(rs),
        }
    }
}

/// What a [`Conn`] needs from a backend. Implemented by the embedded
/// connection, shared-engine sessions, and the TCP client; implement it
/// yourself to put the driver API over a new transport.
pub trait Transport {
    /// Execute one statement.
    fn execute(&mut self, sql: &str) -> Result<Outcome>;
    /// Execute a batch of statements; replies are positional
    /// (`result[i]` answers `sqls[i]`) and a refused statement lands as
    /// the `Err` in its own slot without aborting the batch. The
    /// default runs statements one at a time; pipelining transports
    /// (TCP) override it to ship the whole batch in one round trip.
    fn execute_batch(&mut self, sqls: &[&str]) -> Result<Vec<Result<Outcome>>> {
        Ok(sqls.iter().map(|sql| self.execute(sql)).collect())
    }
    /// Prepare a named statement; returns its bind-slot count.
    fn prepare(&mut self, name: &str, sql: &str) -> Result<usize>;
    /// Execute a prepared statement with slot-ordered bound values.
    fn execute_prepared(&mut self, name: &str, params: &[Value]) -> Result<Outcome>;
    /// Drop a prepared statement; `true` if it existed.
    fn deallocate(&mut self, name: &str) -> Result<bool>;
    /// Plan-cache hits of the most recent statement (1 = the execution
    /// reused a compiled plan and skipped parse/bind/optimise).
    fn last_plan_cache_hits(&mut self) -> Result<u64>;
    /// Short backend tag for diagnostics (`"mem"`, `"file"`, `"tcp"`,
    /// `"engine"`).
    fn kind(&self) -> &'static str;
    /// Orderly shutdown of the backend.
    fn close(&mut self) -> Result<()>;

    /// EXPLAIN a SELECT: logical plan + generated and optimised MAL.
    /// Embedded transports implement this; the default refuses.
    fn explain(&mut self, _sql: &str) -> Result<String> {
        Err(SciqlError::Connection(format!(
            "EXPLAIN is not supported by the {} transport",
            self.kind()
        )))
    }

    /// Write a durability checkpoint (vault-backed embedded transports).
    fn checkpoint(&mut self) -> Result<()> {
        Err(SciqlError::Connection(format!(
            "checkpoint is not supported by the {} transport",
            self.kind()
        )))
    }

    /// A human-readable report of stored objects and vault health.
    fn storage_report(&mut self) -> Result<String> {
        Err(SciqlError::Connection(format!(
            "storage reports are not supported by the {} transport",
            self.kind()
        )))
    }

    /// The underlying embedded [`Connection`], if this transport has one
    /// in-process (bulk loads, imaging vault ingestion).
    fn connection(&mut self) -> Option<&mut Connection> {
        None
    }

    /// Liveness probe. Embedded transports answer trivially; the TCP
    /// transport does a real `Ping`/`Pong` round trip.
    fn ping(&mut self) -> Result<()> {
        Ok(())
    }

    /// Execution report of the most recent statement (the same numbers
    /// whether they were measured in-process or fetched over the wire
    /// with a `Stats` frame).
    fn last_report(&mut self) -> Result<sciql_net::ExecReport>;

    /// Ask a remote server to shut down gracefully (TCP only).
    fn shutdown_server(&mut self) -> Result<()> {
        Err(SciqlError::Connection(format!(
            "shutdown_server is not supported by the {} transport",
            self.kind()
        )))
    }

    /// Engine-wide metrics snapshot: the in-process global registry for
    /// embedded transports, a `Metrics` frame round trip for TCP.
    fn metrics(&mut self) -> Result<sciql_obs::MetricsSnapshot> {
        Ok(sciql_obs::global().snapshot())
    }

    /// Switch per-statement query tracing on or off for this connection.
    fn set_tracing(&mut self, on: bool) -> Result<()>;

    /// Rendered span tree of the most recent traced statement, or
    /// `None` when tracing is off / nothing ran yet.
    fn last_trace_text(&mut self) -> Result<Option<String>>;
}

/// Render the repl-style storage report for an embedded connection.
fn storage_report_of(conn: &Connection) -> String {
    use sciql_catalog::SchemaObject;
    use std::fmt::Write as _;
    let mut out = String::new();
    if conn.catalog().is_empty() {
        out.push_str("no schema objects\n");
    }
    for obj in conn.catalog().iter() {
        match obj {
            SchemaObject::Array(a) => match conn.array_store(&a.name) {
                Ok(s) => {
                    let (tiles, dirty) = s.tile_stats();
                    let _ = writeln!(
                        out,
                        "array {:<12} {} dims, {} attrs, {} cells, {} tile(s) ({} dirty)",
                        a.name,
                        a.dims.len(),
                        a.attrs.len(),
                        s.cell_count(),
                        tiles,
                        dirty
                    );
                }
                Err(_) => {
                    let _ = writeln!(out, "array {:<12} (unbounded, not materialised)", a.name);
                }
            },
            SchemaObject::Table(t) => {
                if let Ok(s) = conn.table_store(&t.name) {
                    let (tiles, dirty) = s.tile_stats();
                    let _ = writeln!(
                        out,
                        "table {:<12} {} columns, {} rows, {} tile(s) ({} dirty)",
                        t.name,
                        t.columns.len(),
                        s.row_count(),
                        tiles,
                        dirty
                    );
                }
            }
        }
    }
    match conn.vault_stats() {
        Some(v) => {
            let _ = writeln!(
                out,
                "vault: generation {}, {} WAL record(s) ({} bytes), {} column(s) in {} tile file(s)",
                v.generation, v.wal_records, v.wal_bytes, v.columns, v.tile_files
            );
            let _ = writeln!(
                out,
                "vault: last checkpoint rewrote {} tile(s), reused {}",
                v.tiles_rewritten, v.tiles_reused
            );
        }
        None => out.push_str("vault: none (in-memory session)\n"),
    }
    let _ = writeln!(
        out,
        "scan:  last query skipped {} tile(s) via zone maps",
        conn.last_exec().exec.tiles_skipped
    );
    out
}

/// Embedded transport: a [`Connection`] (in-memory or vault-backed).
struct Embedded {
    conn: Connection,
    kind: &'static str,
}

impl Transport for Embedded {
    fn execute(&mut self, sql: &str) -> Result<Outcome> {
        Ok(Outcome::from_query_result(self.conn.execute(sql)?))
    }
    fn prepare(&mut self, name: &str, sql: &str) -> Result<usize> {
        Ok(self.conn.prepare(name, sql)?)
    }
    fn execute_prepared(&mut self, name: &str, params: &[Value]) -> Result<Outcome> {
        Ok(Outcome::from_query_result(
            self.conn.execute_prepared(name, params)?,
        ))
    }
    fn deallocate(&mut self, name: &str) -> Result<bool> {
        Ok(self.conn.deallocate(name))
    }
    fn last_plan_cache_hits(&mut self) -> Result<u64> {
        Ok(self.conn.last_exec().exec.plan_cache_hits as u64)
    }
    fn kind(&self) -> &'static str {
        self.kind
    }
    fn close(&mut self) -> Result<()> {
        if self.conn.is_persistent() {
            self.conn.checkpoint()?;
        }
        Ok(())
    }
    fn explain(&mut self, sql: &str) -> Result<String> {
        Ok(self.conn.explain(sql)?)
    }
    fn checkpoint(&mut self) -> Result<()> {
        Ok(self.conn.checkpoint()?)
    }
    fn storage_report(&mut self) -> Result<String> {
        Ok(storage_report_of(&self.conn))
    }
    fn connection(&mut self) -> Option<&mut Connection> {
        Some(&mut self.conn)
    }
    fn last_report(&mut self) -> Result<sciql_net::ExecReport> {
        Ok(sciql_net::ExecReport::from_last_exec(
            &self.conn.last_exec(),
        ))
    }
    fn set_tracing(&mut self, on: bool) -> Result<()> {
        self.conn.set_tracing(on);
        Ok(())
    }
    fn last_trace_text(&mut self) -> Result<Option<String>> {
        Ok(self.conn.last_trace().map(|t| t.render()))
    }
}

/// Shared-engine transport: one [`EngineSession`] over an in-process
/// [`SharedEngine`] (snapshot reads, serialized writes).
struct Session {
    session: EngineSession,
}

impl Transport for Session {
    fn execute(&mut self, sql: &str) -> Result<Outcome> {
        Ok(Outcome::from_query_result(self.session.execute(sql)?))
    }
    fn prepare(&mut self, name: &str, sql: &str) -> Result<usize> {
        Ok(self.session.prepare(name, sql)?)
    }
    fn execute_prepared(&mut self, name: &str, params: &[Value]) -> Result<Outcome> {
        Ok(Outcome::from_query_result(
            self.session.execute_prepared(name, params)?,
        ))
    }
    fn deallocate(&mut self, name: &str) -> Result<bool> {
        Ok(self.session.deallocate(name))
    }
    fn last_plan_cache_hits(&mut self) -> Result<u64> {
        Ok(self.session.last_exec().exec.plan_cache_hits as u64)
    }
    fn kind(&self) -> &'static str {
        "engine"
    }
    fn close(&mut self) -> Result<()> {
        Ok(())
    }
    fn explain(&mut self, sql: &str) -> Result<String> {
        Ok(self.session.engine().connection().explain(sql)?)
    }
    fn checkpoint(&mut self) -> Result<()> {
        Ok(self.session.engine().checkpoint()?)
    }
    fn storage_report(&mut self) -> Result<String> {
        Ok(storage_report_of(&self.session.engine().connection()))
    }
    fn last_report(&mut self) -> Result<sciql_net::ExecReport> {
        Ok(sciql_net::ExecReport::from_last_exec(
            &self.session.last_exec(),
        ))
    }
    fn set_tracing(&mut self, on: bool) -> Result<()> {
        self.session.set_tracing(on);
        Ok(())
    }
    fn last_trace_text(&mut self) -> Result<Option<String>> {
        Ok(self.session.last_trace().map(|t| t.render()))
    }
}

/// Network transport: a protocol-v5 [`Client`].
struct Tcp {
    client: Option<Client>,
}

impl Tcp {
    fn client(&mut self) -> Result<&mut Client> {
        self.client
            .as_mut()
            .ok_or_else(|| SciqlError::Connection("connection is closed".into()))
    }
}

impl Transport for Tcp {
    fn execute(&mut self, sql: &str) -> Result<Outcome> {
        Ok(Outcome::from_net_reply(self.client()?.execute(sql)?))
    }
    fn execute_batch(&mut self, sqls: &[&str]) -> Result<Vec<Result<Outcome>>> {
        let replies = self.client()?.execute_pipelined(sqls)?;
        Ok(replies
            .into_iter()
            .map(|r| r.map(Outcome::from_net_reply).map_err(SciqlError::from))
            .collect())
    }
    fn prepare(&mut self, name: &str, sql: &str) -> Result<usize> {
        Ok(self.client()?.prepare(name, sql)? as usize)
    }
    fn execute_prepared(&mut self, name: &str, params: &[Value]) -> Result<Outcome> {
        Ok(Outcome::from_net_reply(
            self.client()?.execute_bound(name, params)?,
        ))
    }
    fn deallocate(&mut self, name: &str) -> Result<bool> {
        Ok(self.client()?.deallocate(name)?)
    }
    fn last_plan_cache_hits(&mut self) -> Result<u64> {
        Ok(self.client()?.last_stats()?.plan_cache_hits)
    }
    fn kind(&self) -> &'static str {
        "tcp"
    }
    fn close(&mut self) -> Result<()> {
        if let Some(c) = self.client.take() {
            c.close()?;
        }
        Ok(())
    }
    fn ping(&mut self) -> Result<()> {
        Ok(self.client()?.ping()?)
    }
    fn last_report(&mut self) -> Result<sciql_net::ExecReport> {
        Ok(self.client()?.last_stats()?)
    }
    fn shutdown_server(&mut self) -> Result<()> {
        let c = self
            .client
            .take()
            .ok_or_else(|| SciqlError::Connection("connection is closed".into()))?;
        Ok(c.shutdown_server()?)
    }
    fn metrics(&mut self) -> Result<sciql_obs::MetricsSnapshot> {
        Ok(self.client()?.metrics()?)
    }
    fn set_tracing(&mut self, on: bool) -> Result<()> {
        Ok(self.client()?.set_tracing(on)?)
    }
    fn last_trace_text(&mut self) -> Result<Option<String>> {
        Ok(self.client()?.fetch_trace()?)
    }
}

/// Should this statement run on a replica? Reads are `SELECT`s and
/// `EXPLAIN`s; everything else (DDL, DML, COPY) must see the primary.
fn is_read_sql(sql: &str) -> bool {
    let head: String = sql
        .trim_start()
        .chars()
        .take(8)
        .collect::<String>()
        .to_ascii_uppercase();
    head.starts_with("SELECT") || head.starts_with("EXPLAIN")
}

/// Multi-endpoint network transport (`tcp://primary,replica1,...`):
/// writes, prepared statements and diagnostics go to the primary;
/// SELECTs round-robin across the replica endpoints, each carrying the
/// monotonic-read token from the primary's most recent write
/// acknowledgement — so a read that follows a write never observes a
/// replica state older than that write. All-read batches fan out across
/// every replica concurrently.
struct Routed {
    primary: Tcp,
    replicas: Vec<Tcp>,
    next: usize,
}

impl Routed {
    /// Pick the next read endpoint (round-robin) with the write token
    /// staged on it.
    fn read_client(&mut self) -> Result<&mut Client> {
        let token = self.primary.client()?.last_token();
        let idx = self.next % self.replicas.len();
        self.next = self.next.wrapping_add(1);
        let c = self.replicas[idx].client()?;
        c.set_read_token(token);
        Ok(c)
    }
}

impl Transport for Routed {
    fn execute(&mut self, sql: &str) -> Result<Outcome> {
        if is_read_sql(sql) && !self.replicas.is_empty() {
            Ok(Outcome::from_net_reply(self.read_client()?.execute(sql)?))
        } else {
            self.primary.execute(sql)
        }
    }
    fn execute_batch(&mut self, sqls: &[&str]) -> Result<Vec<Result<Outcome>>> {
        // Mixed batches keep their statement order observable only on
        // one session — route them whole to the primary.
        if self.replicas.is_empty() || !sqls.iter().all(|s| is_read_sql(s)) {
            return self.primary.execute_batch(sqls);
        }
        let token = self.primary.client()?.last_token();
        // Stride the batch across every endpoint — the primary serves
        // reads too (it trivially satisfies any token it issued): each
        // slice pipelines on its own connection, so the batch costs the
        // slowest slice, not the sum of all round trips.
        let mut targets: Vec<&mut Tcp> = std::iter::once(&mut self.primary)
            .chain(self.replicas.iter_mut())
            .collect();
        let n = targets.len();
        let mut assigned: Vec<Vec<usize>> = vec![Vec::new(); n];
        for i in 0..sqls.len() {
            assigned[i % n].push(i);
        }
        let mut slots: Vec<Option<Result<Outcome>>> = sqls.iter().map(|_| None).collect();
        let mut fanout_err = None;
        std::thread::scope(|scope| {
            let handles: Vec<_> =
                targets
                    .iter_mut()
                    .zip(&assigned)
                    .filter(|(_, idxs)| !idxs.is_empty())
                    .map(|(t, idxs)| {
                        scope.spawn(move || -> Result<Vec<(usize, Result<Outcome>)>> {
                            let c = t.client()?;
                            c.set_read_token(token);
                            let subset: Vec<&str> = idxs.iter().map(|&i| sqls[i]).collect();
                            let replies = c.execute_pipelined(&subset)?;
                            Ok(idxs
                                .iter()
                                .copied()
                                .zip(replies.into_iter().map(|r| {
                                    r.map(Outcome::from_net_reply).map_err(SciqlError::from)
                                }))
                                .collect())
                        })
                    })
                    .collect();
            for h in handles {
                match h.join() {
                    Ok(Ok(pairs)) => {
                        for (i, r) in pairs {
                            slots[i] = Some(r);
                        }
                    }
                    Ok(Err(e)) => fanout_err = Some(e),
                    Err(_) => {
                        fanout_err =
                            Some(SciqlError::Internal("read fan-out thread panicked".into()))
                    }
                }
            }
        });
        if let Some(e) = fanout_err {
            return Err(e);
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("every read slice reported back"))
            .collect())
    }
    fn prepare(&mut self, name: &str, sql: &str) -> Result<usize> {
        self.primary.prepare(name, sql)
    }
    fn execute_prepared(&mut self, name: &str, params: &[Value]) -> Result<Outcome> {
        self.primary.execute_prepared(name, params)
    }
    fn deallocate(&mut self, name: &str) -> Result<bool> {
        self.primary.deallocate(name)
    }
    fn last_plan_cache_hits(&mut self) -> Result<u64> {
        self.primary.last_plan_cache_hits()
    }
    fn kind(&self) -> &'static str {
        "tcp-routed"
    }
    fn close(&mut self) -> Result<()> {
        for r in &mut self.replicas {
            r.close().ok();
        }
        self.primary.close()
    }
    fn ping(&mut self) -> Result<()> {
        self.primary.ping()?;
        for r in &mut self.replicas {
            r.ping()?;
        }
        Ok(())
    }
    fn last_report(&mut self) -> Result<sciql_net::ExecReport> {
        self.primary.last_report()
    }
    fn shutdown_server(&mut self) -> Result<()> {
        self.primary.shutdown_server()
    }
    fn metrics(&mut self) -> Result<sciql_obs::MetricsSnapshot> {
        self.primary.metrics()
    }
    fn set_tracing(&mut self, on: bool) -> Result<()> {
        self.primary.set_tracing(on)
    }
    fn last_trace_text(&mut self) -> Result<Option<String>> {
        self.primary.last_trace_text()
    }
}

// ---------------------------------------------------------------------
// connect
// ---------------------------------------------------------------------

/// The driver entry point: [`Sciql::connect`] and [`Sciql::attach`].
pub struct Sciql;

impl Sciql {
    /// Open a connection from a URL — `mem:`, `file:<path>`, or
    /// `tcp://host:port` — with the default execution configuration.
    pub fn connect(url: &str) -> Result<Conn> {
        Self::connect_with_config(url, SessionConfig::default())
    }

    /// [`Sciql::connect`] with an explicit embedded execution
    /// configuration (thread count, parallel threshold, optimizer
    /// level). For `tcp://` URLs the configuration lives server-side and
    /// `cfg` is ignored.
    pub fn connect_with_config(url: &str, cfg: SessionConfig) -> Result<Conn> {
        let transport: Box<dyn Transport + Send> = if url == "mem:" || url == "mem" {
            Box::new(Embedded {
                conn: Connection::with_config(cfg),
                kind: "mem",
            })
        } else if let Some(path) = url.strip_prefix("file:") {
            if path.is_empty() {
                return Err(SciqlError::Connection(
                    "file: URL needs a vault directory path, e.g. file:./mydb".into(),
                ));
            }
            Box::new(Embedded {
                conn: Connection::open_with_config(path, cfg)?,
                kind: "file",
            })
        } else if let Some(addr) = url.strip_prefix("tcp://") {
            let endpoints: Vec<&str> = addr
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .collect();
            match endpoints.split_first() {
                None => {
                    return Err(SciqlError::Connection(
                        "tcp:// URL needs host:port, e.g. tcp://127.0.0.1:5000 \
                         (add replicas comma-separated: tcp://primary,replica1,replica2)"
                            .into(),
                    ));
                }
                Some((primary, [])) => Box::new(Tcp {
                    client: Some(Client::connect_named(primary, "sciql-driver")?),
                }),
                Some((primary, replicas)) => {
                    let primary = Tcp {
                        client: Some(Client::connect_named(primary, "sciql-driver")?),
                    };
                    let replicas = replicas
                        .iter()
                        .map(|a| {
                            Ok(Tcp {
                                client: Some(Client::connect_named(a, "sciql-driver-read")?),
                            })
                        })
                        .collect::<Result<Vec<Tcp>>>()?;
                    Box::new(Routed {
                        primary,
                        replicas,
                        next: 0,
                    })
                }
            }
        } else {
            return Err(SciqlError::Connection(format!(
                "unsupported URL {url:?}: expected mem:, file:<path> or tcp://host:port"
            )));
        };
        Ok(Conn {
            transport,
            id: fresh_conn_id(),
            next_stmt: 0,
        })
    }

    /// Open a driver connection as a new session on an in-process
    /// [`SharedEngine`] — N such connections share one database with
    /// snapshot-isolated reads.
    pub fn attach(engine: &Arc<SharedEngine>) -> Conn {
        Conn {
            transport: Box::new(Session {
                session: engine.session(),
            }),
            id: fresh_conn_id(),
            next_stmt: 0,
        }
    }
}

// ---------------------------------------------------------------------
// the connection
// ---------------------------------------------------------------------

/// Process-unique connection ids, used to pin [`Statement`] handles to
/// the connection that prepared them.
static NEXT_CONN_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

fn fresh_conn_id() -> u64 {
    NEXT_CONN_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

/// One open driver connection, backed by a boxed [`Transport`].
pub struct Conn {
    transport: Box<dyn Transport + Send>,
    id: u64,
    next_stmt: u64,
}

impl Conn {
    /// Wrap a custom [`Transport`] in the driver API.
    pub fn from_transport(transport: Box<dyn Transport + Send>) -> Conn {
        Conn {
            transport,
            id: fresh_conn_id(),
            next_stmt: 0,
        }
    }

    /// Short backend tag (`"mem"`, `"file"`, `"tcp"`, `"engine"`).
    pub fn transport_kind(&self) -> &'static str {
        self.transport.kind()
    }

    /// Execute a statement and return either rows or an affected count.
    pub fn run(&mut self, sql: &str) -> Result<Outcome> {
        self.transport.execute(sql)
    }

    /// Execute a batch of statements — pipelined into one round trip on
    /// the TCP transport, one at a time elsewhere. Replies are
    /// positional: `result[i]` answers `sqls[i]`, and a statement the
    /// backend refuses (parse error, [`SciqlError::ServerBusy`],
    /// [`SciqlError::QuotaExceeded`]) fills its own slot without
    /// aborting the rest of the batch.
    pub fn run_batch(&mut self, sqls: &[&str]) -> Result<Vec<Result<Outcome>>> {
        self.transport.execute_batch(sqls)
    }

    /// Execute DDL/DML; returns the affected cell/row count. Fails with
    /// [`SciqlError::Statement`] if the statement produced rows — use
    /// [`Conn::query`] for SELECTs.
    pub fn execute(&mut self, sql: &str) -> Result<u64> {
        match self.run(sql)? {
            Outcome::Affected(n) => Ok(n),
            Outcome::Rows(_) => Err(SciqlError::Statement(
                "statement produced rows; use query()".into(),
            )),
        }
    }

    /// Execute a SELECT; returns a [`Rows`] cursor. Fails with
    /// [`SciqlError::Statement`] if the statement did not produce rows.
    pub fn query(&mut self, sql: &str) -> Result<Rows> {
        match self.run(sql)? {
            Outcome::Rows(rs) => Ok(Rows::new(rs)),
            Outcome::Affected(_) => Err(SciqlError::Statement(
                "statement did not produce rows; use execute()".into(),
            )),
        }
    }

    /// Prepare a statement with `?` / `:name` placeholders. The
    /// statement is parsed (and validated) immediately; SELECT plans
    /// compile once on first execution and re-executions reuse the
    /// cached plan with fresh parameter values.
    pub fn prepare(&mut self, sql: &str) -> Result<Statement> {
        // Parse locally to learn the slot layout (works identically for
        // every transport — the same parser assigns the same slots).
        let stmt =
            sciql_parser::parse_statement(sql).map_err(|e| SciqlError::Parse(e.to_string()))?;
        let params = stmt.params();
        let name = format!("__driver_stmt_{}", self.next_stmt);
        self.next_stmt += 1;
        let nparams = self.transport.prepare(&name, sql)?;
        if nparams != params.len() {
            return Err(SciqlError::Internal(format!(
                "transport reports {nparams} bind slots, parser found {}",
                params.len()
            )));
        }
        Ok(Statement {
            conn_id: self.id,
            name,
            sql: sql.to_owned(),
            params,
        })
    }

    /// Execute a prepared statement with slot-ordered values; rows or
    /// affected count.
    pub fn run_bound(&mut self, stmt: &Statement, params: &[Value]) -> Result<Outcome> {
        self.check_owned(stmt)?;
        if params.len() < stmt.param_count() {
            return Err(SciqlError::Param(format!(
                "statement has {} parameter(s), {} bound",
                stmt.param_count(),
                params.len()
            )));
        }
        self.transport.execute_prepared(&stmt.name, params)
    }

    /// Execute prepared DDL/DML with bound values; the affected count.
    pub fn execute_bound(&mut self, stmt: &Statement, params: &[Value]) -> Result<u64> {
        match self.run_bound(stmt, params)? {
            Outcome::Affected(n) => Ok(n),
            Outcome::Rows(_) => Err(SciqlError::Statement(
                "statement produced rows; use query_bound()".into(),
            )),
        }
    }

    /// Execute a prepared SELECT with bound values; a [`Rows`] cursor.
    pub fn query_bound(&mut self, stmt: &Statement, params: &[Value]) -> Result<Rows> {
        match self.run_bound(stmt, params)? {
            Outcome::Rows(rs) => Ok(Rows::new(rs)),
            Outcome::Affected(_) => Err(SciqlError::Statement(
                "statement did not produce rows; use execute_bound()".into(),
            )),
        }
    }

    /// Execute a prepared statement binding parameters **by name**:
    /// `[(":lo", v1), ("hi", v2)]` (the leading `:` is optional,
    /// matching is case-insensitive). Positional `?` slots cannot be
    /// bound by name.
    pub fn run_named(&mut self, stmt: &Statement, params: &[(&str, Value)]) -> Result<Outcome> {
        self.check_owned(stmt)?;
        let values = stmt.resolve_named(params)?;
        self.transport.execute_prepared(&stmt.name, &values)
    }

    /// Drop a prepared statement, freeing its cached plan on the
    /// backend (embedded registry or server session). The handle is
    /// consumed; long-lived connections that prepare many statements
    /// should deallocate the ones they are done with.
    pub fn deallocate(&mut self, stmt: Statement) -> Result<bool> {
        self.check_owned(&stmt)?;
        self.transport.deallocate(&stmt.name)
    }

    /// A [`Statement`] only works on the connection that prepared it —
    /// generated names are connection-local, so a foreign handle would
    /// silently address an unrelated statement.
    fn check_owned(&self, stmt: &Statement) -> Result<()> {
        if stmt.conn_id != self.id {
            return Err(SciqlError::Statement(
                "statement was prepared on a different connection".into(),
            ));
        }
        Ok(())
    }

    /// Plan-cache hits of the most recent statement on this connection
    /// (1 = the execution reused a compiled plan).
    pub fn last_plan_cache_hits(&mut self) -> Result<u64> {
        self.transport.last_plan_cache_hits()
    }

    /// EXPLAIN a SELECT: logical plan plus generated and optimised MAL
    /// (embedded transports only).
    pub fn explain(&mut self, sql: &str) -> Result<String> {
        self.transport.explain(sql)
    }

    /// Write a durability checkpoint (vault-backed transports only).
    pub fn checkpoint(&mut self) -> Result<()> {
        self.transport.checkpoint()
    }

    /// Human-readable report of stored objects and vault health
    /// (embedded transports only).
    pub fn storage_report(&mut self) -> Result<String> {
        self.transport.storage_report()
    }

    /// Escape hatch to the in-process [`Connection`] behind a `mem:` or
    /// `file:` transport (`None` for remote and shared-engine backends).
    /// Needed by bulk ingestion paths that bypass SQL, e.g. the imaging
    /// data vault.
    pub fn embedded_connection(&mut self) -> Option<&mut Connection> {
        self.transport.connection()
    }

    /// Liveness round trip (a real `Ping` frame over TCP; trivial for
    /// in-process transports).
    pub fn ping(&mut self) -> Result<()> {
        self.transport.ping()
    }

    /// Execution report of this connection's most recent statement —
    /// interpreter counters, optimizer pass summary and the plan-cache
    /// flag, identical in shape across transports.
    pub fn last_report(&mut self) -> Result<sciql_net::ExecReport> {
        self.transport.last_report()
    }

    /// Ask the remote server to shut down gracefully (TCP transports
    /// only; in-process transports refuse and the connection stays
    /// usable). After a successful shutdown the connection is spent.
    pub fn shutdown_server(&mut self) -> Result<()> {
        self.transport.shutdown_server()
    }

    /// Engine-wide metrics snapshot: query counters by kind, latency
    /// histograms (query, WAL fsync, checkpoint), plan-cache hit/miss,
    /// tile churn, live sessions and wire byte counts. For `tcp://`
    /// connections the numbers come from the *server's* registry over a
    /// `Metrics` frame; for embedded transports from this process.
    pub fn metrics(&mut self) -> Result<sciql_obs::MetricsSnapshot> {
        self.transport.metrics()
    }

    /// Switch per-statement query tracing on or off. While on, every
    /// statement records a span tree readable with
    /// [`Conn::last_trace_text`] (the repl's `\trace on`).
    pub fn set_tracing(&mut self, on: bool) -> Result<()> {
        self.transport.set_tracing(on)
    }

    /// Rendered span tree of this connection's most recent traced
    /// statement, or `None` when tracing is off / nothing ran yet.
    pub fn last_trace_text(&mut self) -> Result<Option<String>> {
        self.transport.last_trace_text()
    }

    /// Orderly shutdown: checkpoints a `file:` vault, closes a `tcp://`
    /// socket. Dropping a [`Conn`] without calling this is safe (the
    /// vault recovers from its WAL), just less tidy.
    pub fn close(mut self) -> Result<()> {
        self.transport.close()
    }
}

impl fmt::Debug for Conn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Conn")
            .field("transport", &self.transport.kind())
            .finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------
// prepared statement handles
// ---------------------------------------------------------------------

/// A prepared statement handle returned by [`Conn::prepare`]. Cheap to
/// keep around; execute it any number of times with
/// [`Conn::query_bound`] / [`Conn::execute_bound`].
#[derive(Debug, Clone)]
pub struct Statement {
    /// Id of the [`Conn`] that prepared this statement (handles are not
    /// transferable between connections).
    conn_id: u64,
    name: String,
    sql: String,
    params: Vec<ParamRef>,
}

impl Statement {
    /// The statement text this handle was prepared from.
    pub fn sql(&self) -> &str {
        &self.sql
    }

    /// Number of bind slots (`?` and distinct `:name`s).
    pub fn param_count(&self) -> usize {
        self.params.len()
    }

    /// The slot of a named parameter (leading `:` optional,
    /// case-insensitive).
    pub fn param_slot(&self, name: &str) -> Option<usize> {
        sciql_parser::ast::named_param_slot(&self.params, name)
    }

    /// Resolve a name→value list into a slot-ordered value vector.
    fn resolve_named(&self, params: &[(&str, Value)]) -> Result<Vec<Value>> {
        let mut values = vec![Value::Null; self.params.len()];
        let mut bound = vec![false; self.params.len()];
        for (name, v) in params {
            let slot = self.param_slot(name).ok_or_else(|| {
                SciqlError::Param(format!("statement has no parameter named {name:?}"))
            })?;
            values[slot] = v.clone();
            bound[slot] = true;
        }
        if let Some(k) = bound.iter().position(|b| !b) {
            let p = &self.params[k];
            return Err(SciqlError::Param(match &p.name {
                Some(n) => format!("parameter :{n} is not bound"),
                None => format!(
                    "positional parameter {} cannot be bound by name; use query_bound",
                    k + 1
                ),
            }));
        }
        Ok(values)
    }
}

// ---------------------------------------------------------------------
// rows + typed accessors
// ---------------------------------------------------------------------

/// A cursor over a query result, shared by every transport (the remote
/// side reassembles the same [`ResultSet`] from wire pages that the
/// embedded side returns directly — byte-identical, by test).
#[derive(Debug, Clone)]
pub struct Rows {
    rs: ResultSet,
    cursor: usize,
}

impl Rows {
    fn new(rs: ResultSet) -> Rows {
        Rows { rs, cursor: 0 }
    }

    /// Total row count.
    pub fn row_count(&self) -> usize {
        self.rs.row_count()
    }

    /// Column count.
    pub fn column_count(&self) -> usize {
        self.rs.column_count()
    }

    /// Column names in output order.
    pub fn column_names(&self) -> Vec<&str> {
        self.rs.columns.iter().map(|c| c.name.as_str()).collect()
    }

    /// Advance the cursor and return the next row, or `None` at the end.
    pub fn next_row(&mut self) -> Option<Row<'_>> {
        if self.cursor >= self.rs.row_count() {
            return None;
        }
        let idx = self.cursor;
        self.cursor += 1;
        Some(Row { rs: &self.rs, idx })
    }

    /// Random access to a row without moving the cursor.
    pub fn row(&self, idx: usize) -> Option<Row<'_>> {
        (idx < self.rs.row_count()).then_some(Row { rs: &self.rs, idx })
    }

    /// The underlying result set (column-oriented access, rendering,
    /// wire encoding).
    pub fn result_set(&self) -> &ResultSet {
        &self.rs
    }

    /// Unwrap into the underlying result set.
    pub fn into_result_set(self) -> ResultSet {
        self.rs
    }
}

/// One row of a [`Rows`] cursor.
#[derive(Debug, Clone, Copy)]
pub struct Row<'a> {
    rs: &'a ResultSet,
    idx: usize,
}

impl Row<'_> {
    /// The raw value at column `col`.
    pub fn value(&self, col: usize) -> Value {
        self.rs.get(self.idx, col)
    }

    /// Typed access: `row.get::<i64>(0)?`. NULL converts only into
    /// `Option<T>` (and [`Value`] itself).
    pub fn get<T: FromSql>(&self, col: usize) -> Result<T> {
        if col >= self.rs.column_count() {
            return Err(SciqlError::Statement(format!(
                "column {col} out of range ({} columns)",
                self.rs.column_count()
            )));
        }
        T::from_sql(&self.rs.get(self.idx, col))
    }

    /// Typed access by column name (case-insensitive).
    pub fn get_by_name<T: FromSql>(&self, name: &str) -> Result<T> {
        let col = self.rs.column_index(name).ok_or_else(|| {
            SciqlError::Statement(format!("no column named {name:?} in the result"))
        })?;
        self.get(col)
    }
}

/// Conversion from a SQL scalar into a Rust type (the typed side of
/// [`Row::get`]).
pub trait FromSql: Sized {
    /// Convert, failing with [`SciqlError::Statement`] on a type or NULL
    /// mismatch.
    fn from_sql(v: &Value) -> Result<Self>;
}

fn from_sql_err<T>(v: &Value, what: &str) -> Result<T> {
    Err(SciqlError::Statement(format!(
        "cannot read {} as {what}",
        if v.is_null() {
            "NULL".to_owned()
        } else {
            format!("{v:?}")
        }
    )))
}

impl FromSql for i64 {
    fn from_sql(v: &Value) -> Result<i64> {
        v.as_i64().map_or_else(|| from_sql_err(v, "i64"), Ok)
    }
}

impl FromSql for i32 {
    fn from_sql(v: &Value) -> Result<i32> {
        let wide = i64::from_sql(v)?;
        i32::try_from(wide).map_err(|_| SciqlError::Statement(format!("{wide} overflows i32")))
    }
}

impl FromSql for f64 {
    fn from_sql(v: &Value) -> Result<f64> {
        v.as_f64().map_or_else(|| from_sql_err(v, "f64"), Ok)
    }
}

impl FromSql for bool {
    fn from_sql(v: &Value) -> Result<bool> {
        v.as_bool().map_or_else(|| from_sql_err(v, "bool"), Ok)
    }
}

impl FromSql for String {
    fn from_sql(v: &Value) -> Result<String> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => from_sql_err(other, "String"),
        }
    }
}

impl FromSql for Value {
    fn from_sql(v: &Value) -> Result<Value> {
        Ok(v.clone())
    }
}

impl<T: FromSql> FromSql for Option<T> {
    fn from_sql(v: &Value) -> Result<Option<T>> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_sql(v).map(Some)
        }
    }
}

/// Build a slot-ordered parameter slice from mixed Rust values:
/// `params![3, "name", 2.5]`. Each element goes through
/// [`gdk::Value::from`]; use `Option<T>` (or `gdk::Value::Null`) for SQL
/// NULL.
#[macro_export]
macro_rules! params {
    () => {
        &[] as &[$crate::gdk::Value]
    };
    ($($v:expr),+ $(,)?) => {
        &[$($crate::gdk::Value::from($v)),+][..]
    };
}
