//! Minimal in-tree stand-in for the `rand` crate.
//!
//! The build container has no crates.io access, so this vendored shim
//! implements exactly the surface the workspace uses: [`SeedableRng`],
//! [`rngs::StdRng`], and the [`Rng`] extension methods `gen_range`
//! (half-open and inclusive integer/float ranges) and `gen_bool`.
//! The generator is splitmix64 — deterministic and fast, which is all the
//! tests and benchmarks need. It is NOT a drop-in statistical replacement
//! for the real `rand`.

use std::ops::{Range, RangeInclusive};

/// Core RNG trait (subset of `rand::RngCore`).
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A type that can be sampled from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience extension methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let x = a.gen_range(-3..=3);
            assert_eq!(x, b.gen_range(-3..=3));
            assert!((-3..=3).contains(&x));
            let f = a.gen_range(0.0..10.0);
            assert!((0.0..10.0).contains(&f));
            assert_eq!(b.gen_range(0.0..10.0), f);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let hits = (0..1000).filter(|_| r.gen_bool(0.5)).count();
        assert!((300..700).contains(&hits), "roughly balanced: {hits}");
    }
}
