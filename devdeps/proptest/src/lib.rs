//! Minimal in-tree stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so this vendored shim
//! implements the subset of proptest used by the workspace: the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `prop_recursive` / `boxed`, range and tuple strategies, a tiny
//! regex-subset string strategy, `Just`, `any::<bool>()`, the
//! [`collection`], [`option`] and [`bool`](mod@crate::bool) modules, and the
//! `proptest!`, `prop_oneof!`, `prop_assert!`, `prop_assert_eq!`,
//! `prop_assume!` macros.
//!
//! Differences from real proptest: generation is purely random (seeded
//! deterministically per test name) and failures are **not shrunk** —
//! the failing input is reported as generated.

pub mod test_runner {
    use std::fmt;

    /// Why a single generated test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case was vetoed by `prop_assume!` — generate another.
        Reject(String),
        /// The property failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Construct a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
        /// Construct a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
                TestCaseError::Fail(m) => write!(f, "failed: {m}"),
            }
        }
    }

    /// Result of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Per-`proptest!` block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic splitmix64 generator driving all strategies.
    #[derive(Debug, Clone)]
    pub struct Rng {
        state: u64,
    }

    impl Rng {
        /// Seed deterministically from a test name.
        pub fn from_name(name: &str) -> Self {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            name.hash(&mut h);
            Rng {
                state: h.finish() ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: usize) -> usize {
            (self.next_u64() % n as u64) as usize
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    use super::test_runner::Rng;
    use std::ops::Range;
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn gen(&self, rng: &mut Rng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { s: self, f }
        }

        /// Generate a value, then generate from the strategy `f` builds
        /// from it.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { s: self, f }
        }

        /// Build recursive structures: `self` is the leaf strategy and
        /// `recurse` wraps an inner strategy into one more level.
        /// `depth` bounds recursion; the size hints are accepted for
        /// API compatibility and ignored.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let leaf = self.boxed();
            let mut cur = leaf.clone();
            for _ in 0..depth {
                let next = recurse(cur).boxed();
                // Mix in leaves so trees terminate at every level.
                cur = Union::new(vec![leaf.clone(), next]).boxed();
            }
            cur
        }

        /// Type-erase the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng: &mut Rng| self.gen(rng)))
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut Rng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn gen(&self, rng: &mut Rng) -> T {
            (self.0)(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        s: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn gen(&self, rng: &mut Rng) -> O {
            (self.f)(self.s.gen(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        s: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn gen(&self, rng: &mut Rng) -> S2::Value {
            (self.f)(self.s.gen(rng)).gen(rng)
        }
    }

    /// Uniform choice between alternative strategies (`prop_oneof!`).
    pub struct Union<T> {
        alts: Vec<BoxedStrategy<T>>,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                alts: self.alts.clone(),
            }
        }
    }

    impl<T> Union<T> {
        /// Build from boxed alternatives; must be non-empty.
        pub fn new(alts: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!alts.is_empty(), "prop_oneof! needs at least one arm");
            Union { alts }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn gen(&self, rng: &mut Rng) -> T {
            let i = rng.below(self.alts.len());
            self.alts[i].gen(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen(&self, _rng: &mut Rng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn gen(&self, rng: &mut Rng) -> $t {
                    assert!(self.start < self.end, "strategy on empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = ((rng.next_u64() as u128) % span) as i128;
                    (self.start as i128 + v) as $t
                }
            }
        )*};
    }
    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn gen(&self, rng: &mut Rng) -> f64 {
            assert!(self.start < self.end, "strategy on empty range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    /// String strategy from a regex subset: alternation of sequences of
    /// literal characters and `[...]` classes, each optionally followed
    /// by `{n}` or `{m,n}` repetition. Covers the patterns used in this
    /// workspace (e.g. `"[a-z][a-z0-9_]{0,6}"`, `"SUM|AVG|MIN|MAX"`).
    impl Strategy for &'static str {
        type Value = String;
        fn gen(&self, rng: &mut Rng) -> String {
            gen_from_pattern(self, rng)
        }
    }

    fn gen_from_pattern(pat: &str, rng: &mut Rng) -> String {
        let alts: Vec<&str> = pat.split('|').collect();
        let alt = alts[rng.below(alts.len())];
        let chars: Vec<char> = alt.chars().collect();
        let mut out = String::new();
        let mut i = 0usize;
        while i < chars.len() {
            // Parse one atom.
            let atom: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .expect("unclosed [ in pattern")
                    + i;
                let class = expand_class(&chars[i + 1..close]);
                i = close + 1;
                class
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            // Optional repetition.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unclosed { in pattern")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse::<usize>().expect("bad repeat bound"),
                        b.trim().parse::<usize>().expect("bad repeat bound"),
                    ),
                    None => {
                        let n = body.trim().parse::<usize>().expect("bad repeat count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let n = if hi > lo {
                lo + rng.below(hi - lo + 1)
            } else {
                lo
            };
            for _ in 0..n {
                out.push(atom[rng.below(atom.len().max(1))]);
            }
        }
        out
    }

    fn expand_class(body: &[char]) -> Vec<char> {
        let mut out = Vec::new();
        let mut i = 0usize;
        while i < body.len() {
            if i + 2 < body.len() && body[i + 1] == '-' {
                let (a, b) = (body[i], body[i + 2]);
                for c in a..=b {
                    out.push(c);
                }
                i += 3;
            } else {
                out.push(body[i]);
                i += 1;
            }
        }
        assert!(!out.is_empty(), "empty character class");
        out
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn gen(&self, rng: &mut Rng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.gen(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// Types with a canonical default strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Generate one arbitrary value.
        fn arbitrary(rng: &mut Rng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut Rng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut Rng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

    /// Strategy wrapper for [`Arbitrary`] types.
    pub struct ArbitraryStrategy<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for ArbitraryStrategy<T> {
        type Value = T;
        fn gen(&self, rng: &mut Rng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
        ArbitraryStrategy(std::marker::PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::Rng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Size specification for collection strategies: a fixed size or a
    /// half-open range.
    pub trait SizeRange {
        /// Draw a concrete size.
        fn pick(&self, rng: &mut Rng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut Rng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut Rng) -> usize {
            assert!(self.start < self.end, "empty collection size range");
            self.start + rng.below(self.end - self.start)
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn gen(&self, rng: &mut Rng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.gen(rng)).collect()
        }
    }

    /// `Vec` of `size` elements drawn from `element`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// Strategy producing `BTreeSet`s. May generate fewer elements than
    /// requested when duplicates collide (matching real proptest).
    pub struct BTreeSetStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for BTreeSetStrategy<S, R>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn gen(&self, rng: &mut Rng) -> BTreeSet<S::Value> {
            let n = self.size.pick(rng);
            let mut out = BTreeSet::new();
            for _ in 0..n.saturating_mul(4) {
                if out.len() >= n {
                    break;
                }
                out.insert(self.element.gen(rng));
            }
            out
        }
    }

    /// `BTreeSet` of up to `size` elements drawn from `element`.
    pub fn btree_set<S: Strategy, R: SizeRange>(element: S, size: R) -> BTreeSetStrategy<S, R>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::Rng;

    /// Strategy producing `Option`s with a given `Some` probability.
    pub struct OptionStrategy<S> {
        some_probability: f64,
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn gen(&self, rng: &mut Rng) -> Option<S::Value> {
            if rng.unit_f64() < self.some_probability {
                Some(self.inner.gen(rng))
            } else {
                None
            }
        }
    }

    /// `Some` with probability `some_probability`, else `None`.
    pub fn weighted<S: Strategy>(some_probability: f64, inner: S) -> OptionStrategy<S> {
        OptionStrategy {
            some_probability,
            inner,
        }
    }

    /// `Some`/`None` with equal probability.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        weighted(0.5, inner)
    }
}

pub mod bool {
    use super::strategy::Strategy;
    use super::test_runner::Rng;

    /// Strategy producing `true` with a fixed probability.
    pub struct WeightedBool(f64);

    impl Strategy for WeightedBool {
        type Value = bool;
        fn gen(&self, rng: &mut Rng) -> bool {
            rng.unit_f64() < self.0
        }
    }

    /// `true` with probability `probability`.
    pub fn weighted(probability: f64) -> WeightedBool {
        WeightedBool(probability)
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Run property tests: each `#[test] fn name(pat in strategy, …) { body }`
/// becomes a normal test generating and checking `cases` inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); ) => {};
    (($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::Rng::from_name(concat!(module_path!(), "::", stringify!($name)));
            let mut __accepted: u32 = 0;
            let mut __rejected: u32 = 0;
            while __accepted < __config.cases {
                $(let $pat = $crate::strategy::Strategy::gen(&($strat), &mut __rng);)+
                let __outcome: $crate::test_runner::TestCaseResult =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match __outcome {
                    ::std::result::Result::Ok(()) => __accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        __rejected += 1;
                        if __rejected > __config.cases.saturating_mul(64).saturating_add(1024) {
                            panic!(
                                "proptest {}: too many prop_assume! rejections ({} accepted, {} rejected)",
                                stringify!($name), __accepted, __rejected
                            );
                        }
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                        panic!("proptest {} failed after {} cases: {}", stringify!($name), __accepted, __msg);
                    }
                }
            }
        }
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Assert within a proptest body; failure reports the condition.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+))
            );
        }
    };
}

/// Assert equality within a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)+));
    }};
}

/// Assert inequality within a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Skip this generated case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in -50i32..50, y in 0usize..10) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!(y < 10);
        }

        #[test]
        fn tuples_and_vecs((a, b) in (0i64..5, 0i64..5), v in crate::collection::vec(0u8..4, 0..6)) {
            prop_assert!(a < 5 && b < 5);
            prop_assert!(v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 4));
        }

        #[test]
        fn assume_rejects_cleanly(x in 0i32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn string_patterns(s in "[a-z]{1,4}", kw in "SUM|AVG|MIN|MAX") {
            prop_assert!(!s.is_empty() && s.len() <= 4);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            prop_assert!(["SUM", "AVG", "MIN", "MAX"].contains(&kw.as_str()));
        }
    }

    #[test]
    fn oneof_and_recursive_terminate() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(i32),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(l, r) => 1 + depth(l).max(depth(r)),
            }
        }
        let leaf = prop_oneof![(0i32..10).prop_map(Tree::Leaf), Just(Tree::Leaf(-1))];
        let strat = leaf.prop_recursive(4, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(l, r)| Tree::Node(Box::new(l), Box::new(r)))
        });
        let mut rng = crate::test_runner::Rng::from_name("recursive");
        for _ in 0..200 {
            let t = strat.gen(&mut rng);
            assert!(depth(&t) <= 5, "depth bound respected: {t:?}");
        }
    }

    #[test]
    fn option_and_btree_set() {
        let mut rng = crate::test_runner::Rng::from_name("opts");
        let s = crate::option::weighted(0.85, 0i32..10);
        let somes = (0..1000).filter(|_| s.gen(&mut rng).is_some()).count();
        assert!((700..1000).contains(&somes), "≈85% Some: {somes}");
        let set = crate::collection::btree_set(0u64..100, 0..40);
        let v = set.gen(&mut rng);
        assert!(v.len() < 40);
    }
}
