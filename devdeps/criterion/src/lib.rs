//! Minimal in-tree stand-in for the `criterion` benchmark harness.
//!
//! The build container has no crates.io access, so this shim implements
//! the subset of criterion's API the workspace benches use: `Criterion`
//! with `benchmark_group` / `bench_function`, `BenchmarkGroup` with
//! `throughput` / `sample_size` / `bench_with_input`, `Bencher::iter` /
//! `iter_with_setup`, `BenchmarkId`, `Throughput` and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! It really measures: per benchmark it warms up, then takes
//! `sample_size` wall-clock samples and reports min/median/mean ns per
//! iteration on stdout. When the `CRITERION_JSON_OUT` environment
//! variable names a file, one JSON line per benchmark is appended to it
//! (used to record `BENCH_parallel.json` baselines).

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Top-level harness configuration and entry point.
pub struct Criterion {
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Set the target measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }
    /// Set the warm-up time per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }
    /// Set the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }
    /// Benchmark a single function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let cfg = (self.measurement_time, self.warm_up_time, self.sample_size);
        run_one(id, None, cfg, &mut f);
        self
    }
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    function_name: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Function name plus parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function_name: Some(function_name.into()),
            parameter: Some(parameter.to_string()),
        }
    }
    /// Parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function_name: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self, group: &str) -> String {
        match (&self.function_name, &self.parameter) {
            (Some(f), Some(p)) => format!("{group}/{f}/{p}"),
            (Some(f), None) => format!("{group}/{f}"),
            (None, Some(p)) => format!("{group}/{p}"),
            (None, None) => group.to_owned(),
        }
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }
    /// Declare per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }
    /// Benchmark a closure over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let cfg = (
            self.c.measurement_time,
            self.c.warm_up_time,
            self.sample_size.unwrap_or(self.c.sample_size),
        );
        let label = id.render(&self.name);
        run_one(&label, self.throughput, cfg, &mut |b: &mut Bencher| {
            f(b, input)
        });
        self
    }
    /// Benchmark a closure with no input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: BenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let cfg = (
            self.c.measurement_time,
            self.c.warm_up_time,
            self.sample_size.unwrap_or(self.c.sample_size),
        );
        run_one(&id.render(&self.name), self.throughput, cfg, &mut f);
        self
    }
    /// End the group.
    pub fn finish(self) {}
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<f64>, // ns per iteration, one entry per sample
    mode: BenchMode,
}

enum BenchMode {
    Calibrate(Duration),
    Measure(usize),
}

impl Bencher {
    /// Time `routine`, repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            BenchMode::Calibrate(target) => {
                // Estimate iterations per sample so one sample ≈ target.
                let start = Instant::now();
                let mut n = 0u64;
                while start.elapsed() < target || n == 0 {
                    std::hint::black_box(routine());
                    n += 1;
                    if n >= 1_000_000 {
                        break;
                    }
                }
                self.iters_per_sample = n.max(1);
            }
            BenchMode::Measure(samples) => {
                for _ in 0..samples {
                    let start = Instant::now();
                    for _ in 0..self.iters_per_sample {
                        std::hint::black_box(routine());
                    }
                    let ns = start.elapsed().as_nanos() as f64 / self.iters_per_sample as f64;
                    self.samples.push(ns);
                }
            }
        }
    }

    /// Time `routine` on a fresh value from `setup` each iteration; only
    /// `routine` is timed.
    pub fn iter_with_setup<S, O, Setup: FnMut() -> S, R: FnMut(S) -> O>(
        &mut self,
        mut setup: Setup,
        mut routine: R,
    ) {
        match self.mode {
            BenchMode::Calibrate(_) => {
                let v = setup();
                let start = Instant::now();
                std::hint::black_box(routine(v));
                let _ = start.elapsed();
                self.iters_per_sample = 1;
            }
            BenchMode::Measure(samples) => {
                for _ in 0..samples {
                    let v = setup();
                    let start = Instant::now();
                    std::hint::black_box(routine(v));
                    self.samples.push(start.elapsed().as_nanos() as f64);
                }
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    throughput: Option<Throughput>,
    (measurement_time, warm_up_time, sample_size): (Duration, Duration, usize),
    f: &mut F,
) {
    // Warm-up + calibration pass.
    let mut b = Bencher {
        iters_per_sample: 1,
        samples: Vec::new(),
        mode: BenchMode::Calibrate(warm_up_time),
    };
    f(&mut b);
    let per_sample = measurement_time
        .as_nanos()
        .checked_div(sample_size as u128)
        .unwrap_or(0) as f64;
    let warm_ns = warm_up_time.as_nanos() as f64 / b.iters_per_sample as f64;
    let iters = if warm_ns > 0.0 {
        ((per_sample / warm_ns).ceil() as u64).clamp(1, 1_000_000)
    } else {
        1
    };
    // Measurement pass.
    let mut b = Bencher {
        iters_per_sample: iters,
        samples: Vec::new(),
        mode: BenchMode::Measure(sample_size),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<60} (no samples)");
        return;
    }
    let mut sorted = b.samples.clone();
    sorted.sort_by(|a, c| a.partial_cmp(c).unwrap());
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    let thr = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>10.1} Melem/s", n as f64 / median * 1000.0)
        }
        Some(Throughput::Bytes(n)) => format!("  {:>10.1} MB/s", n as f64 / median * 1000.0),
        None => String::new(),
    };
    println!(
        "{label:<60} time: [{} {} {}]{}",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean),
        thr
    );
    if let Ok(path) = std::env::var("CRITERION_JSON_OUT") {
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(
                file,
                "{{\"id\":\"{label}\",\"min_ns\":{min:.1},\"median_ns\":{median:.1},\"mean_ns\":{mean:.1},\"samples\":{},\"iters_per_sample\":{}}}",
                sorted.len(),
                iters
            );
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Define a benchmark group function, optionally with a custom config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

/// Define the benchmark binary's `main`, running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default()
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5))
            .sample_size(3);
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(100));
        g.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
        c.bench_function("setup", |b| {
            b.iter_with_setup(|| vec![1u8; 64], |v| v.len())
        });
    }

    #[test]
    fn id_rendering() {
        assert_eq!(BenchmarkId::new("f", 3).render("g"), "g/f/3");
        assert_eq!(BenchmarkId::from_parameter(7).render("g"), "g/7");
    }
}
